#include "http/cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

namespace {

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::metrics().counter("http.cache.hits_total");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c = obs::metrics().counter("http.cache.misses_total");
  return c;
}

obs::Counter& stale_served_counter() {
  static obs::Counter& c = obs::metrics().counter("http.cache.stale_served_total");
  return c;
}

obs::Counter& revalidations_counter() {
  static obs::Counter& c = obs::metrics().counter("http.cache.revalidations_total");
  return c;
}

obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::metrics().counter("http.cache.evictions_total");
  return c;
}

obs::Counter& admission_rejected_counter() {
  static obs::Counter& c =
      obs::metrics().counter("http.cache.admission_rejected_total");
  return c;
}

obs::Counter& prefetch_wasted_counter() {
  static obs::Counter& c =
      obs::metrics().counter("http.cache.prefetch_wasted_bytes_total");
  return c;
}

}  // namespace

void CacheGhosts::bump(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[url];
  // TinyLFU-style aging: every so many touches, halve every count and drop
  // the ones that reach zero, so stale popularity decays instead of pinning
  // admission decisions forever. The sweep runs only on the epoch boundary
  // — never per-bump on map size — so steady-state bumps stay O(1) even
  // with one ghost list shared by every shard under this mutex; a sweep
  // re-halves until the map is back under its bound, and between epochs it
  // can grow by at most one epoch of new URLs.
  if (++ops_ % 1024 == 0) {
    do {
      for (auto it = counts_.begin(); it != counts_.end();) {
        it->second /= 2;
        it = it->second == 0 ? counts_.erase(it) : std::next(it);
      }
    } while (counts_.size() > 4096);
  }
}

void CacheGhosts::credit(const std::string& url, std::uint64_t hits) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[url] +=
      static_cast<std::uint32_t>(std::min<std::uint64_t>(hits, 1024));
}

double CacheGhosts::frequency(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(url);
  return it == counts_.end() ? 0.0 : static_cast<double>(it->second);
}

std::size_t CacheGhosts::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_.size();
}

void CacheGhosts::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  ops_ = 0;
}

HttpCache::HttpCache(CacheParams params)
    : params_(params),
      ghosts_(params.shared_ghosts ? params.shared_ghosts
                                   : std::make_shared<CacheGhosts>()) {
  MFHTTP_CHECK(params_.capacity_bytes >= 0);
  MFHTTP_CHECK(params_.max_object_fraction > 0 && params_.max_object_fraction <= 1.0);
}

bool HttpCache::fresh_locked(const Entry& e, TimeMs now_ms) const {
  return e.object.ttl_ms <= 0 || now_ms < e.stored_ms + e.object.ttl_ms;
}

std::optional<HttpCache::Lookup> HttpCache::lookup(const std::string& url,
                                                   TimeMs now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(url);
  if (it == index_.end()) {
    ++stats_.misses;
    misses_counter().inc();
    ghosts_->bump(url);
    return std::nullopt;
  }
  Entry& e = *it->second;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++e.hits;

  Lookup out;
  out.object = e.object;
  if (fresh_locked(e, now_ms)) {
    out.freshness = Freshness::kFresh;
    ++stats_.hits;
    hits_counter().inc();
    if (e.prefetched) {
      e.prefetched = false;
      ++stats_.prefetch_useful;
    }
    return out;
  }

  out.freshness = Freshness::kStale;
  out.revalidatable = !e.object.etag.empty();
  const TimeMs expired_at = e.stored_ms + e.object.ttl_ms;
  out.within_swr = params_.stale_while_revalidate_ms > 0 &&
                   now_ms < expired_at + params_.stale_while_revalidate_ms;
  ++stats_.expired;
  if (out.within_swr) {
    // A stale-but-served entry is a hit from the client's point of view.
    ++stats_.hits;
    ++stats_.stale_served;
    hits_counter().inc();
    stale_served_counter().inc();
    if (e.prefetched) {
      e.prefetched = false;
      ++stats_.prefetch_useful;
    }
  }
  return out;
}

std::optional<CachedObject> HttpCache::get(const std::string& url) {
  auto hit = lookup(url, 0);
  if (!hit.has_value() || hit->freshness != Freshness::kFresh) return std::nullopt;
  return hit->object;
}

bool HttpCache::contains(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.contains(url);
}

bool HttpCache::has_fresh(const std::string& url, TimeMs now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(url);
  return it != index_.end() && fresh_locked(*it->second, now_ms);
}

std::optional<CachedObject> HttpCache::peek(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(url);
  if (it == index_.end()) return std::nullopt;
  return it->second->object;
}

bool HttpCache::admit_locked(const std::string& url, Bytes size) {
  if (!params_.cost_aware_admission) return true;
  if (used_ + size <= params_.capacity_bytes) return true;  // fits, no victims

  // Hit-per-byte density of the candidate vs. the densest entry eviction
  // would claim. Ghost frequency gives a re-fetched hot object its history
  // back; +1 smooths never-seen entries so equal-cold candidates still
  // replace equal-cold victims (plain LRU behavior).
  const double candidate_density =
      (ghosts_->frequency(url) + 1.0) / static_cast<double>(std::max<Bytes>(size, 1));
  Bytes reclaimed = 0;
  double best_victim_density = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend() && used_ - reclaimed + size >
                                                        params_.capacity_bytes;
       ++it) {
    const double density = (static_cast<double>(it->hits) + 1.0) /
                           static_cast<double>(std::max<Bytes>(it->object.size, 1));
    best_victim_density = std::max(best_victim_density, density);
    reclaimed += it->object.size;
  }
  if (candidate_density >= best_victim_density) return true;
  ++stats_.admission_rejected;
  admission_rejected_counter().inc();
  return false;
}

bool HttpCache::put(const std::string& url, CachedObject object, TimeMs now_ms,
                    bool prefetched) {
  std::lock_guard<std::mutex> lock(mu_);
  MFHTTP_CHECK(object.size >= 0);
  if (object.ttl_ms <= 0) object.ttl_ms = params_.default_ttl_ms;
  const auto max_object = static_cast<Bytes>(
      params_.max_object_fraction * static_cast<double>(params_.capacity_bytes));
  if (object.size > max_object) return false;
  if (!admit_locked(url, object.size)) return false;
  erase_locked(url);
  while (used_ + object.size > params_.capacity_bytes) evict_one_locked();
  used_ += object.size;
  Entry e;
  e.url = url;
  e.object = std::move(object);
  e.stored_ms = now_ms;
  e.prefetched = prefetched;
  lru_.push_front(std::move(e));
  index_[url] = lru_.begin();
  ++stats_.insertions;
  if (prefetched) ++stats_.prefetch_insertions;
  return true;
}

bool HttpCache::revalidated(const std::string& url, TimeMs now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(url);
  if (it == index_.end()) return false;
  it->second->stored_ms = now_ms;
  ++stats_.revalidations;
  revalidations_counter().inc();
  return true;
}

void HttpCache::retire_prefetch_locked(const Entry& e) {
  if (!e.prefetched) return;
  stats_.prefetch_wasted_bytes += e.object.size;
  prefetch_wasted_counter().inc(static_cast<std::uint64_t>(e.object.size));
}

bool HttpCache::erase(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  return erase_locked(url);
}

bool HttpCache::erase_locked(const std::string& url) {
  auto it = index_.find(url);
  if (it == index_.end()) return false;
  retire_prefetch_locked(*it->second);
  used_ -= it->second->object.size;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void HttpCache::evict_one_locked() {
  MFHTTP_CHECK(!lru_.empty());
  const Entry& victim = lru_.back();
  retire_prefetch_locked(victim);
  // An evicted entry keeps its earned frequency as a ghost so re-admission
  // of a genuinely hot object is immediate.
  ghosts_->credit(victim.url, victim.hits);
  used_ -= victim.object.size;
  index_.erase(victim.url);
  lru_.pop_back();
  ++stats_.evictions;
  evictions_counter().inc();
}

void HttpCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  ghosts_->clear();
  used_ = 0;
}

Bytes HttpCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

std::size_t HttpCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

HttpCache::Stats HttpCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Bytes HttpCache::prefetched_unused_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes total = 0;
  for (const Entry& e : lru_)
    if (e.prefetched) total += e.object.size;
  return total;
}

}  // namespace mfhttp
