#include "http/cache.h"

#include "util/check.h"

namespace mfhttp {

LruCache::LruCache(Bytes capacity_bytes) : capacity_(capacity_bytes) {
  MFHTTP_CHECK(capacity_ >= 0);
}

std::optional<CachedObject> LruCache::get(const std::string& url) {
  auto it = index_.find(url);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->object;
}

bool LruCache::put(const std::string& url, CachedObject object) {
  MFHTTP_CHECK(object.size >= 0);
  if (object.size > capacity_) return false;
  erase(url);
  while (used_ + object.size > capacity_) evict_one();
  used_ += object.size;
  lru_.push_front(Entry{url, std::move(object)});
  index_[url] = lru_.begin();
  ++stats_.insertions;
  return true;
}

bool LruCache::erase(const std::string& url) {
  auto it = index_.find(url);
  if (it == index_.end()) return false;
  used_ -= it->second->object.size;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::evict_one() {
  MFHTTP_CHECK(!lru_.empty());
  const Entry& victim = lru_.back();
  used_ -= victim.object.size;
  index_.erase(victim.url);
  lru_.pop_back();
  ++stats_.evictions;
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

}  // namespace mfhttp
