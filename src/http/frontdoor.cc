#include "http/frontdoor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "http/fetch_pipeline.h"
#include "http/object_store.h"
#include "http/sim_http.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/json.h"
#include "util/mpsc_queue.h"
#include "util/stats.h"

namespace mfhttp {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Forwards the request's priority hint into the intercept decision so the
// proxy's dispatch queue orders admitted-but-waiting work by class (the
// multi-session overload driver does the same).
class HintInterceptor : public Interceptor {
 public:
  InterceptDecision on_request(const HttpRequest& request) override {
    return InterceptDecision::allow(
        request.priority_hint(overload::kPriorityViewport));
  }
};

// A touch event travelling through a shard's dispatch queue, stamped at
// enqueue so the consumer can measure queue wait + service as one
// touch-to-policy latency. kRebudget entries are control messages from the
// supervisor: they ride the same queue so the worker applies admission
// re-slices in-order with the traffic, never racing its own controller.
struct QueuedEvent {
  enum Kind : std::uint8_t { kTouch = 0, kRebudget = 1 };

  sim::TouchEvent event;
  std::uint64_t enqueue_ns = 0;
  std::uint32_t healthy = 0;  // kRebudget payload: healthy cohort size
  std::uint8_t kind = kTouch;
};

// One shard: a complete single-box serving stack (own Simulator, origin,
// pipeline) plus the dispatch queue feeding it. Owned by exactly one worker
// thread once the run starts; the only cross-shard state it touches is the
// shared CacheGhosts (through its cache segment), the lock-free queue, and
// the obs registry via batched flushes.
class Shard {
 public:
  Shard(std::size_t index, const FrontDoorParams& params,
        const ObjectStore* store, const std::vector<std::string>* urls,
        const std::shared_ptr<CacheGhosts>& ghosts,
        FrontDoorSessionStats* slots)
      : queue(params.queue_capacity),
        index_(index),
        shards_total_(params.shards),
        box_admission_(params.admission),
        deadline_budget_ns_(static_cast<std::uint64_t>(
                                std::max<TimeMs>(params.enqueue_deadline_ms,
                                                 0)) *
                            1'000'000ULL),
        urls_(urls),
        slots_(slots),
        server_link_(sim_,
                     {BandwidthTrace::constant(params.server_bytes_per_s_total /
                                              static_cast<double>(params.shards)),
                      params.server_latency_ms, 5, Link::Sharing::kFifo}),
        origin_(sim_, store, &server_link_,
                {origin_delay_under(params, index)}),
        events_counter_(obs::metrics().counter("http.frontdoor.events_total"),
                        params.counter_flush_batch),
        requests_counter_(
            obs::metrics().counter("http.frontdoor.requests_total"),
            params.counter_flush_batch) {
    CacheParams cache_params;
    cache_params.capacity_bytes = static_cast<Bytes>(
        params.cache_capacity_total / static_cast<Bytes>(params.shards));
    cache_params.default_ttl_ms = params.cache_ttl_ms;
    cache_params.cost_aware_admission = true;
    cache_params.shared_ghosts = ghosts;

    FetchPipelineBuilder builder(sim_, &origin_);
    builder
        .client_link(Link::Params{
            BandwidthTrace::constant(params.client_bytes_per_s_total /
                                     static_cast<double>(params.shards)),
            params.client_latency_ms, 5, Link::Sharing::kFairShare})
        .with_cache(cache_params)
        .with_admission(
            overload::shard_slice(params.admission, index_, params.shards))
        .interceptor(&interceptor_);
    if (params.fault_plan && !params.fault_plan->pipeline_empty()) {
      // Per-shard remix: shards draw decorrelated fault streams from one
      // plan, the same derivation shard_slice uses for guard jitter.
      fault::FaultPlan shard_plan = *params.fault_plan;
      shard_plan.seed =
          splitmix64(params.fault_plan->seed ^ splitmix64(index_ + 1));
      builder.with_faults(&shard_plan);
    }
    if (params.resilience) {
      ResilientFetcherParams resilience = *params.resilience;
      resilience.seed = splitmix64(resilience.seed ^ splitmix64(index_ + 1));
      builder.with_resilience(resilience);
    }
    pipeline_ = builder.build();

    if (params.fault_plan) {
      for (const fault::ShardFault& f : params.fault_plan->frontdoor) {
        if (!f.applies_to(index_)) continue;
        switch (f.kind) {
          case fault::ShardFault::Kind::kStall:
            stall_at_ = f.at_event;
            stall_ms_ = f.stall_ms;
            break;
          case fault::ShardFault::Kind::kCrash:
            crash_at_ = f.at_event;
            break;
          case fault::ShardFault::Kind::kSaturate:
            saturate_begin_ = f.at_event;
            saturate_end_ = f.at_event + f.count;
            saturate_ms_ = f.stall_ms;
            break;
          case fault::ShardFault::Kind::kOriginSlow:
            break;  // consumed in origin_delay_under
        }
      }
    }
  }

  // The run-finished flag (threaded mode): a chaos sleep outliving the run
  // aborts its remainder so joins never wait out dead air.
  void set_run_over_flag(const std::atomic<bool>* flag) { run_over_ = flag; }

  void process(const QueuedEvent& qe) {
    if (qe.kind == QueuedEvent::kRebudget) {
      // Applied on the worker thread, in queue order: the controller is
      // externally synchronized and this worker is its only owner.
      if (overload::AdmissionController* admission = pipeline_->admission())
        admission->apply_budget(overload::failover_slice(
            box_admission_, index_, shards_total_, qe.healthy));
      note_progress();
      return;
    }
    if (!serving_ || events_ >= crash_at_) {
      if (serving_) crash_now();
      shed(qe);
      return;
    }
    heartbeat.busy.store(true, std::memory_order_relaxed);
    if (events_ == stall_at_) {
      mark_fault_onset();
      chaos_sleep(stall_ms_);
    }
    if (events_ >= saturate_begin_ && events_ < saturate_end_) {
      mark_fault_onset();
      chaos_sleep(saturate_ms_);
    }
    // Deadline-aware serve: an event already past its freshness budget is
    // shed, not served — the viewport it described has scrolled away, and
    // burning origin/link budget on it only lengthens the backlog.
    if (deadline_budget_ns_ > 0 &&
        wall_ns() > qe.enqueue_ns + deadline_budget_ns_) {
      heartbeat.busy.store(false, std::memory_order_relaxed);
      ++deadline_sheds_;
      shed(qe);
      return;
    }
    const sim::TouchEvent& e = qe.event;
    if (static_cast<TimeMs>(e.ts_ms) > sim_.now())
      sim_.run_until(static_cast<TimeMs>(e.ts_ms));
    FrontDoorSessionStats& slot = slots_[e.session];
    for (std::size_t u = 0; u < e.n_urls; ++u) {
      HttpRequest req = HttpRequest::get((*urls_)[e.urls[u]]);
      req.set_session("s" + std::to_string(e.session));
      req.set_priority_hint(e.priority);
      ++slot.requests;
      ++requests_;
      requests_counter_.inc();
      FetchCallbacks callbacks;
      callbacks.on_complete = [&slot](const FetchResult& r) {
        if (r.rejected) {
          ++slot.rejected;
        } else if (r.status == 200 && !r.blocked) {
          ++slot.completed;
          slot.bytes_to_client += static_cast<std::uint64_t>(r.body_size);
        } else {
          ++slot.failed;
        }
        fnv_fold(slot.fingerprint,
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.status))
                  << 32) |
                     (r.rejected ? 2u : 0u) | (r.blocked ? 1u : 0u));
        fnv_fold(slot.fingerprint, static_cast<std::uint64_t>(r.body_size));
        fnv_fold(slot.fingerprint, static_cast<std::uint64_t>(r.complete_ms));
      };
      pipeline_->proxy().fetch(req, std::move(callbacks));
    }
    ++events_;
    events_counter_.inc();
    // Touch-to-policy: event production to every policy verdict issued
    // (admission decided, upstream dispatched or bounce scheduled).
    latencies_us_.push_back(static_cast<double>(wall_ns() - qe.enqueue_ns) /
                            1000.0);
    heartbeat.busy.store(false, std::memory_order_relaxed);
    heartbeat.progress.fetch_add(1, std::memory_order_release);
  }

  // Run the shard's world dry (deferred completions, queued dispatch) and
  // push the batched counters out. Call after the last event.
  void drain() {
    sim_.run();
    events_counter_.flush();
    requests_counter_.flush();
  }

  FrontDoorShardReport report() const {
    FrontDoorShardReport r;
    r.shard = index_;
    r.events = events_;
    r.requests = requests_;
    r.worker_sheds = worker_sheds_;
    r.proxy = pipeline_->proxy().stats();
    r.cache = pipeline_->cache()->stats();
    if (ResilientFetcher* resilient = pipeline_->resilient())
      r.breaker = CircuitBreaker::state_name(
          resilient->breaker().state("origin.example"));
    return r;
  }

  const std::vector<double>& latencies_us() const { return latencies_us_; }
  std::size_t worker_sheds() const { return worker_sheds_; }
  std::size_t deadline_sheds() const { return deadline_sheds_; }

  // Single-consumer dispatch queue; producers push, the owning worker pops.
  MpscQueue<QueuedEvent> queue;
  // Published by this shard's worker, sampled by the supervisor.
  ShardHeartbeat heartbeat;

 private:
  static TimeMs origin_delay_under(const FrontDoorParams& params,
                                   std::size_t index) {
    double delay = static_cast<double>(params.origin_delay_ms);
    if (params.fault_plan) {
      for (const fault::ShardFault& f : params.fault_plan->frontdoor)
        if (f.kind == fault::ShardFault::Kind::kOriginSlow &&
            f.applies_to(index))
          delay *= f.factor;
    }
    return static_cast<TimeMs>(delay);
  }

  void note_progress() {
    heartbeat.progress.fetch_add(1, std::memory_order_release);
  }

  void mark_fault_onset() {
    std::uint64_t expected = 0;
    heartbeat.fault_onset_ns.compare_exchange_strong(
        expected, wall_ns(), std::memory_order_relaxed);
  }

  void crash_now() {
    serving_ = false;
    mark_fault_onset();
    heartbeat.serving.store(false, std::memory_order_relaxed);
  }

  // Wall-clock worker sleep in small slices: a stall that outlives the run
  // stops sleeping once the producer is done (the backlog then drains as
  // past-deadline sheds), so nothing ever waits out a stall against an
  // already-finished timeline.
  void chaos_sleep(TimeMs ms) {
    constexpr TimeMs kSliceMs = 5;
    for (TimeMs slept = 0; slept < ms;) {
      const TimeMs slice = std::min<TimeMs>(kSliceMs, ms - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
      if (run_over_ != nullptr &&
          run_over_->load(std::memory_order_acquire))
        return;
    }
  }

  // Drain one event as an explicit 503 shed: counted per session (the
  // requests land in `rejected`), never folded into the fingerprint — the
  // fingerprint witnesses the *served* stream, and sheds only occur in
  // fault runs where bytes are not compared anyway.
  void shed(const QueuedEvent& qe) {
    const sim::TouchEvent& e = qe.event;
    FrontDoorSessionStats& slot = slots_[e.session];
    slot.requests += e.n_urls;
    slot.rejected += e.n_urls;
    ++events_;
    ++worker_sheds_;
    events_counter_.inc();
    latencies_us_.push_back(static_cast<double>(wall_ns() - qe.enqueue_ns) /
                            1000.0);
    note_progress();
  }

  std::size_t index_;
  std::size_t shards_total_;
  overload::AdmissionParams box_admission_;
  std::uint64_t deadline_budget_ns_;
  const std::vector<std::string>* urls_;
  FrontDoorSessionStats* slots_;
  Simulator sim_;
  Link server_link_;
  SimHttpOrigin origin_;
  HintInterceptor interceptor_;
  std::unique_ptr<FetchPipeline> pipeline_;
  std::size_t events_ = 0;
  std::size_t requests_ = 0;
  std::size_t worker_sheds_ = 0;
  std::size_t deadline_sheds_ = 0;
  bool serving_ = true;
  std::size_t crash_at_ = SIZE_MAX;
  std::size_t stall_at_ = SIZE_MAX;
  TimeMs stall_ms_ = 0;
  std::size_t saturate_begin_ = SIZE_MAX;
  std::size_t saturate_end_ = 0;
  TimeMs saturate_ms_ = 0;
  const std::atomic<bool>* run_over_ = nullptr;
  std::vector<double> latencies_us_;
  obs::BatchedCounter events_counter_;
  obs::BatchedCounter requests_counter_;
};

}  // namespace

std::uint64_t routing_fingerprint(std::size_t sessions, std::size_t shards) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t s = 0; s < sessions; ++s)
    fnv_fold(h, static_cast<std::uint64_t>(shard_of(s, shards)));
  return h;
}

std::size_t failover_shard_of(std::uint64_t session, std::size_t shards,
                              std::uint64_t healthy_mask) {
  // Highest-random-weight: every (session, shard) pair gets a stable
  // pseudo-random weight; the healthy shard with the largest weight wins.
  // When a shard recovers, sessions it would have won revert to it and
  // nobody else moves — the minimal-disruption property rendezvous hashing
  // exists for.
  std::size_t best = shard_of(session, shards);
  std::uint64_t best_weight = 0;
  bool found = false;
  const std::uint64_t mixed = splitmix64(session + 0x517cc1b727220a95ULL);
  for (std::size_t i = 0; i < shards && i < 64; ++i) {
    if (((healthy_mask >> i) & 1ULL) == 0) continue;
    const std::uint64_t weight =
        splitmix64(mixed ^ splitmix64(0xb5026f5aa96619e9ULL + i));
    if (!found || weight > best_weight) {
      best = i;
      best_weight = weight;
      found = true;
    }
  }
  return best;
}

void FrontDoorParams::apply_scaled_admission() {
  // Expected steady-state request rate: every arriving session eventually
  // issues touches x mean-URLs requests, so the long-run rate is the
  // arrival rate times requests per session. Fresh cache hits bypass
  // admission entirely (proxy front door, PR 4), so the token budget only
  // meets the *miss* stream — provision at half the gross rate and a
  // saturating sweep sheds its overflow deterministically instead of
  // queueing it without bound.
  const double mean_urls =
      (1.0 + static_cast<double>(load.max_urls_per_touch)) / 2.0;
  const double expected_rps =
      load.session_arrival_per_s *
      static_cast<double>(load.touches_per_session) * mean_urls;
  admission.global_rate_per_s = expected_rps * 0.50;
  admission.global_burst = expected_rps * 0.25;
  admission.session_rate_per_s = 0;  // a million lazy buckets help nobody
  admission.session_burst = 0;
  admission.max_inflight_upstream = 4096;
  admission.max_dispatch_queue = 16384;
  admission.seed = load.seed;
}

std::string FrontDoorResult::deterministic_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("frontdoor");
  w.key("shards").value(shards);
  w.key("sessions").value(load.sessions);
  w.key("touches_per_session").value(load.touches_per_session);
  w.key("url_universe").value(load.url_universe);
  w.key("skew_exponent").value(load.skew_exponent);
  w.key("touch_rate_per_s").value(load.touch_rate_per_s);
  w.key("session_arrival_per_s").value(load.session_arrival_per_s);
  w.key("seed").value(static_cast<unsigned long long>(load.seed));
  w.key("events").value(events);
  w.key("requests").value(requests);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("failed").value(failed);
  w.key("cache_hits").value(cache_hits);
  w.key("bytes_to_client").value(static_cast<unsigned long long>(bytes_to_client));
  w.key("upstream_bytes_saved")
      .value(static_cast<unsigned long long>(upstream_bytes_saved));
  w.key("cache_hit_ratio").value(cache_hit_ratio);
  w.key("shed_rate").value(shed_rate);
  w.key("fingerprint").value(static_cast<unsigned long long>(fingerprint));
  w.key("routing_fingerprint").value(static_cast<unsigned long long>(routing_fp));
  // §14 fields: all zero ("off"/healthy) in fault-free runs, so including
  // them keeps the kInline/kThreaded byte-identity gate meaningful.
  w.key("supervised").value(supervised);
  w.key("failover_sessions").value(failover_sessions);
  w.key("shed_events").value(shed_events);
  w.key("deadline_shed_events").value(deadline_shed_events);
  w.key("per_shard").begin_array();
  for (const FrontDoorShardReport& s : per_shard) {
    w.begin_object();
    w.key("shard").value(s.shard);
    w.key("sessions").value(s.sessions);
    w.key("events").value(s.events);
    w.key("requests").value(s.requests);
    w.key("cache_hits").value(s.proxy.cache_hits);
    w.key("rejected").value(s.proxy.rejected);
    w.key("shed").value(s.proxy.shed);
    w.key("cache_insertions").value(s.cache.insertions);
    w.key("cache_evictions").value(s.cache.evictions);
    w.key("worker_sheds").value(s.worker_sheds);
    w.key("breaker").value(s.breaker);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FrontDoorResult run_front_door(const FrontDoorParams& params,
                               FrontDoorMode mode) {
  MFHTTP_CHECK(params.shards >= 1);
  MFHTTP_CHECK(params.load.sessions <= 0xffffffffULL);

  // Shared, read-only URL universe: one ObjectStore every shard's origin
  // serves from, plus the absolute URL strings requests are built with.
  ObjectStore store;
  std::vector<std::string> urls;
  urls.reserve(params.load.url_universe);
  for (std::size_t i = 0; i < params.load.url_universe; ++i) {
    const std::string path = "/obj/" + std::to_string(i);
    store.put(path, sim::frontdoor_object_bytes(params.load, i), "image/jpeg");
    urls.push_back("http://origin.example" + path);
  }

  const std::vector<sim::TouchEvent> timeline =
      generate_frontdoor_load(params.load);

  std::vector<FrontDoorSessionStats> slots(params.load.sessions);
  auto ghosts = std::make_shared<CacheGhosts>();
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(params.shards);
  for (std::size_t i = 0; i < params.shards; ++i)
    shards.push_back(std::make_unique<Shard>(i, params, &store, &urls, ghosts,
                                             slots.data()));

  std::vector<std::size_t> max_depth(params.shards, 0);
  // Producer-owned shed accounting: a shed decided before an event reaches
  // a worker must not write the worker-owned stats slot (two writers, one
  // cache line). Merged with the worker slots, in session-id order, after
  // join. All-zero in fault-free runs.
  std::vector<FrontDoorSessionStats> producer_slots(params.load.sessions);
  std::vector<double> producer_latencies_us;
  std::uint64_t blocked_pushes = 0;
  std::uint64_t push_blocked_ns = 0;
  std::size_t producer_shed_events = 0;
  std::size_t producer_deadline_sheds = 0;
  std::size_t failover_sessions = 0;
  std::unique_ptr<FrontDoorSupervisor> supervisor;
  const bool supervised =
      mode == FrontDoorMode::kThreaded && params.supervisor.enabled;
  const std::uint64_t deadline_budget_ns =
      static_cast<std::uint64_t>(
          std::max<TimeMs>(params.enqueue_deadline_ms, 0)) *
      1'000'000ULL;
  const auto wall_start = std::chrono::steady_clock::now();

  if (mode == FrontDoorMode::kInline) {
    // The historical single-box path: every event served on this thread in
    // global order. With shards == 1 this is the byte-identity reference.
    // Supervision and deadlines are no-ops here: there is no worker to
    // watch and no queue for an event to grow stale in.
    for (const sim::TouchEvent& e : timeline) {
      QueuedEvent qe{e, wall_ns()};
      shards[shard_of(e.session, params.shards)]->process(qe);
    }
    for (auto& shard : shards) shard->drain();
  } else {
    std::atomic<bool> producers_done{false};
    for (auto& shard : shards) shard->set_run_over_flag(&producers_done);

    if (supervised) {
      supervisor = std::make_unique<FrontDoorSupervisor>(params.supervisor,
                                                         params.shards);
      for (std::size_t i = 0; i < params.shards; ++i) {
        Shard* shard = shards[i].get();
        supervisor->attach(i, &shard->heartbeat,
                           [shard] { return shard->queue.approx_size(); });
      }
      // Budget re-distribution rides the shards' own control queues: each
      // healthy worker applies its failover_slice in-order with traffic,
      // so the supervisor never touches a controller it does not own.
      std::vector<Shard*> shard_ptrs;
      shard_ptrs.reserve(shards.size());
      for (auto& shard : shards) shard_ptrs.push_back(shard.get());
      supervisor->set_on_mask_change(
          [shard_ptrs](std::uint64_t mask, std::size_t healthy) {
            QueuedEvent control;
            control.kind = QueuedEvent::kRebudget;
            control.healthy = static_cast<std::uint32_t>(healthy);
            control.enqueue_ns = wall_ns();
            for (std::size_t i = 0; i < shard_ptrs.size(); ++i) {
              if (((mask >> i) & 1ULL) == 0) continue;
              // Best-effort: a full queue skips the re-slice; the next
              // mask change (or recovery) re-issues it.
              shard_ptrs[i]->queue.try_push(control);
            }
          });
      supervisor->start();
    }

    std::vector<std::thread> workers;
    workers.reserve(params.shards);
    for (auto& shard_ptr : shards) {
      Shard* shard = shard_ptr.get();
      workers.emplace_back([shard, &producers_done] {
        QueuedEvent qe;
        for (;;) {
          if (shard->queue.try_pop(qe)) {
            shard->process(qe);
            continue;
          }
          if (producers_done.load(std::memory_order_acquire)) {
            // One more look: the flag may have been raised between our
            // failed pop and the producer's final push landing.
            if (shard->queue.try_pop(qe)) {
              shard->process(qe);
              continue;
            }
            break;
          }
          std::this_thread::yield();
        }
        shard->drain();
      });
    }

    // This thread is the single in-order producer: pushing the globally
    // sorted timeline means every shard consumes its sessions' events in
    // timestamp order, which is what makes any shard count reproducible.
    // A session's shard is pinned at its FIRST event — primary routing
    // when that shard is healthy, rendezvous failover when it is wedged —
    // and never migrates afterwards: determinism is per-session, and a
    // mid-stream move would split one session's state across two worlds.
    const std::uint64_t all_healthy =
        params.shards >= 64 ? ~0ULL : (1ULL << params.shards) - 1;
    std::vector<std::int32_t> assigned(params.load.sessions, -1);
    auto producer_shed = [&](const sim::TouchEvent& e,
                             std::uint64_t enqueue_ns) {
      FrontDoorSessionStats& slot = producer_slots[e.session];
      slot.requests += e.n_urls;
      slot.rejected += e.n_urls;
      ++producer_shed_events;
      producer_latencies_us.push_back(
          static_cast<double>(wall_ns() - enqueue_ns) / 1000.0);
    };
    for (const sim::TouchEvent& e : timeline) {
      const std::uint64_t mask =
          supervised ? supervisor->healthy_mask() : all_healthy;
      std::int32_t s = assigned[e.session];
      if (s < 0) {
        const std::size_t primary = shard_of(e.session, params.shards);
        if (!supervised || !params.supervisor.failover || mask == 0 ||
            ((mask >> primary) & 1ULL) != 0) {
          s = static_cast<std::int32_t>(primary);
        } else {
          s = static_cast<std::int32_t>(
              failover_shard_of(e.session, params.shards, mask));
          ++failover_sessions;
        }
        assigned[e.session] = s;
      }
      const std::uint64_t enqueue_ns = wall_ns();
      if (supervised && ((mask >> s) & 1ULL) == 0) {
        // The session's pinned shard is wedged: shed instantly rather than
        // feeding a queue nobody is draining.
        producer_shed(e, enqueue_ns);
        continue;
      }
      Shard& shard = *shards[static_cast<std::size_t>(s)];
      QueuedEvent qe{e, enqueue_ns};
      const std::uint64_t deadline =
          deadline_budget_ns > 0 ? enqueue_ns + deadline_budget_ns : 0;
      const std::uint64_t blocked_before = push_blocked_ns;
      if (!shard.queue.push_until(qe, deadline, wall_ns, &push_blocked_ns)) {
        ++producer_deadline_sheds;
        producer_shed(e, enqueue_ns);
        continue;
      }
      if (push_blocked_ns != blocked_before) ++blocked_pushes;
      max_depth[static_cast<std::size_t>(s)] =
          std::max(max_depth[static_cast<std::size_t>(s)],
                   shard.queue.approx_size());
    }
    producers_done.store(true, std::memory_order_release);
    for (std::thread& t : workers) t.join();
    if (supervisor) supervisor->stop();
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();

  FrontDoorResult result;
  result.shards = params.shards;
  result.threaded = mode == FrontDoorMode::kThreaded;
  result.load = params.load;
  result.wall_ms = wall_ms;
  result.supervised = params.supervisor.enabled;
  result.failover_sessions = failover_sessions;
  result.deadline_shed_events = producer_deadline_sheds;

  // Merge strictly in session-id order: completion interleavings already
  // collapsed into per-slot state, so these totals (and the fingerprint
  // fold) are pure functions of per-shard processing order. Producer-side
  // shed slots merge alongside; the fingerprint folds worker slots only —
  // it witnesses the served stream, and producer sheds happen exclusively
  // in fault runs where bytes are never compared.
  result.fingerprint = 1469598103934665603ULL;
  for (std::size_t s = 0; s < params.load.sessions; ++s) {
    const FrontDoorSessionStats& slot = slots[s];
    const FrontDoorSessionStats& shed_slot = producer_slots[s];
    result.requests += slot.requests + shed_slot.requests;
    result.completed += slot.completed;
    result.rejected += slot.rejected + shed_slot.rejected;
    result.failed += slot.failed;
    result.bytes_to_client += static_cast<Bytes>(slot.bytes_to_client);
    fnv_fold(result.fingerprint, slot.fingerprint);
  }
  result.routing_fp = routing_fingerprint(params.load.sessions, params.shards);

  result.events = producer_shed_events;
  result.shed_events = producer_shed_events;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    FrontDoorShardReport report = shards[i]->report();
    report.max_queue_depth = max_depth[i];
    if (supervisor) {
      const FrontDoorSupervisor::ShardStats stats = supervisor->shard_stats(i);
      report.final_health = stats.final_health;
      report.wedged_spells = stats.wedged_spells;
      report.time_to_detect_ms = stats.time_to_detect_ms;
      report.time_to_recover_ms = stats.time_to_recover_ms;
      if (stats.time_to_detect_ms > 0 &&
          (result.first_detect_ms == 0 ||
           stats.time_to_detect_ms < result.first_detect_ms))
        result.first_detect_ms = stats.time_to_detect_ms;
      if (stats.time_to_recover_ms > 0 &&
          (result.first_recover_ms == 0 ||
           stats.time_to_recover_ms < result.first_recover_ms))
        result.first_recover_ms = stats.time_to_recover_ms;
    }
    result.events += report.events;
    result.shed_events += report.worker_sheds;
    result.deadline_shed_events += shards[i]->deadline_sheds();
    result.cache_hits += report.proxy.cache_hits;
    result.upstream_bytes_saved += report.proxy.bytes_from_upstream_saved;
    result.per_shard.push_back(std::move(report));
  }
  if (supervisor) result.wedged_declared = supervisor->wedged_declared_total();
  for (std::size_t s = 0; s < params.load.sessions; ++s)
    ++result.per_shard[shard_of(s, params.shards)].sessions;

  result.cache_hit_ratio =
      result.requests > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.requests)
          : 0;
  result.shed_rate = result.requests > 0
                         ? static_cast<double>(result.rejected) /
                               static_cast<double>(result.requests)
                         : 0;

  // Touch-to-policy spans every event verdict, sheds included: a shed IS
  // the policy answer the touch got, and excluding it would make a
  // collapsing run look fast.
  Samples latencies;
  for (const auto& shard : shards)
    for (double us : shard->latencies_us()) latencies.add(us);
  for (double us : producer_latencies_us) latencies.add(us);
  result.p50_touch_to_policy_us =
      latencies.count() ? latencies.percentile(50) : 0;
  result.p99_touch_to_policy_us =
      latencies.count() ? latencies.percentile(99) : 0;
  if (wall_ms > 0) {
    result.sessions_per_sec =
        static_cast<double>(params.load.sessions) * 1000.0 / wall_ms;
    result.events_per_sec =
        static_cast<double>(result.events) * 1000.0 / wall_ms;
  }

  // Saturation + shedding observability (satellite: the old silent spin is
  // now a counted, bounded wait).
  obs::Registry& registry = obs::metrics();
  registry.counter("http.frontdoor.backpressure_retries_total")
      .inc(blocked_pushes);
  registry.counter("http.frontdoor.blocked_pushes_total").inc(blocked_pushes);
  registry.counter("http.frontdoor.push_blocked_ns_total").inc(push_blocked_ns);
  registry.counter("http.frontdoor.shed.deadline_total")
      .inc(result.deadline_shed_events);
  registry.counter("http.frontdoor.shed.wedged_total")
      .inc(producer_shed_events - producer_deadline_sheds);
  std::size_t worker_shed_total = 0;
  for (const auto& shard : shards) worker_shed_total += shard->worker_sheds();
  registry.counter("http.frontdoor.shed.worker_total").inc(worker_shed_total);
  registry.counter("http.frontdoor.failover_sessions_total")
      .inc(failover_sessions);

  return result;
}

}  // namespace mfhttp
