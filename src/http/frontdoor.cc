#include "http/frontdoor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "http/fetch_pipeline.h"
#include "http/object_store.h"
#include "http/sim_http.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/json.h"
#include "util/mpsc_queue.h"
#include "util/stats.h"

namespace mfhttp {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Forwards the request's priority hint into the intercept decision so the
// proxy's dispatch queue orders admitted-but-waiting work by class (the
// multi-session overload driver does the same).
class HintInterceptor : public Interceptor {
 public:
  InterceptDecision on_request(const HttpRequest& request) override {
    return InterceptDecision::allow(
        request.priority_hint(overload::kPriorityViewport));
  }
};

// A touch event travelling through a shard's dispatch queue, stamped at
// enqueue so the consumer can measure queue wait + service as one
// touch-to-policy latency.
struct QueuedEvent {
  sim::TouchEvent event;
  std::uint64_t enqueue_ns = 0;
};

// One shard: a complete single-box serving stack (own Simulator, origin,
// pipeline) plus the dispatch queue feeding it. Owned by exactly one worker
// thread once the run starts; the only cross-shard state it touches is the
// shared CacheGhosts (through its cache segment), the lock-free queue, and
// the obs registry via batched flushes.
class Shard {
 public:
  Shard(std::size_t index, const FrontDoorParams& params,
        const ObjectStore* store, const std::vector<std::string>* urls,
        const std::shared_ptr<CacheGhosts>& ghosts,
        FrontDoorSessionStats* slots)
      : queue(params.queue_capacity),
        index_(index),
        urls_(urls),
        slots_(slots),
        server_link_(sim_,
                     {BandwidthTrace::constant(params.server_bytes_per_s_total /
                                              static_cast<double>(params.shards)),
                      params.server_latency_ms, 5, Link::Sharing::kFifo}),
        origin_(sim_, store, &server_link_, {params.origin_delay_ms}),
        events_counter_(obs::metrics().counter("http.frontdoor.events_total"),
                        params.counter_flush_batch),
        requests_counter_(
            obs::metrics().counter("http.frontdoor.requests_total"),
            params.counter_flush_batch) {
    CacheParams cache_params;
    cache_params.capacity_bytes = static_cast<Bytes>(
        params.cache_capacity_total / static_cast<Bytes>(params.shards));
    cache_params.default_ttl_ms = params.cache_ttl_ms;
    cache_params.cost_aware_admission = true;
    cache_params.shared_ghosts = ghosts;

    FetchPipelineBuilder builder(sim_, &origin_);
    builder
        .client_link(Link::Params{
            BandwidthTrace::constant(params.client_bytes_per_s_total /
                                     static_cast<double>(params.shards)),
            params.client_latency_ms, 5, Link::Sharing::kFairShare})
        .with_cache(cache_params)
        .with_admission(
            overload::shard_slice(params.admission, index_, params.shards))
        .interceptor(&interceptor_);
    pipeline_ = builder.build();
  }

  void process(const QueuedEvent& qe) {
    const sim::TouchEvent& e = qe.event;
    if (static_cast<TimeMs>(e.ts_ms) > sim_.now())
      sim_.run_until(static_cast<TimeMs>(e.ts_ms));
    FrontDoorSessionStats& slot = slots_[e.session];
    for (std::size_t u = 0; u < e.n_urls; ++u) {
      HttpRequest req = HttpRequest::get((*urls_)[e.urls[u]]);
      req.set_session("s" + std::to_string(e.session));
      req.set_priority_hint(e.priority);
      ++slot.requests;
      ++requests_;
      requests_counter_.inc();
      FetchCallbacks callbacks;
      callbacks.on_complete = [&slot](const FetchResult& r) {
        if (r.rejected) {
          ++slot.rejected;
        } else if (r.status == 200 && !r.blocked) {
          ++slot.completed;
          slot.bytes_to_client += static_cast<std::uint64_t>(r.body_size);
        } else {
          ++slot.failed;
        }
        fnv_fold(slot.fingerprint,
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.status))
                  << 32) |
                     (r.rejected ? 2u : 0u) | (r.blocked ? 1u : 0u));
        fnv_fold(slot.fingerprint, static_cast<std::uint64_t>(r.body_size));
        fnv_fold(slot.fingerprint, static_cast<std::uint64_t>(r.complete_ms));
      };
      pipeline_->proxy().fetch(req, std::move(callbacks));
    }
    ++events_;
    events_counter_.inc();
    // Touch-to-policy: event production to every policy verdict issued
    // (admission decided, upstream dispatched or bounce scheduled).
    latencies_us_.push_back(static_cast<double>(wall_ns() - qe.enqueue_ns) /
                            1000.0);
  }

  // Run the shard's world dry (deferred completions, queued dispatch) and
  // push the batched counters out. Call after the last event.
  void drain() {
    sim_.run();
    events_counter_.flush();
    requests_counter_.flush();
  }

  FrontDoorShardReport report() const {
    FrontDoorShardReport r;
    r.shard = index_;
    r.events = events_;
    r.requests = requests_;
    r.proxy = pipeline_->proxy().stats();
    r.cache = pipeline_->cache()->stats();
    return r;
  }

  const std::vector<double>& latencies_us() const { return latencies_us_; }

  // Single-consumer dispatch queue; producers push, the owning worker pops.
  MpscQueue<QueuedEvent> queue;

 private:
  std::size_t index_;
  const std::vector<std::string>* urls_;
  FrontDoorSessionStats* slots_;
  Simulator sim_;
  Link server_link_;
  SimHttpOrigin origin_;
  HintInterceptor interceptor_;
  std::unique_ptr<FetchPipeline> pipeline_;
  std::size_t events_ = 0;
  std::size_t requests_ = 0;
  std::vector<double> latencies_us_;
  obs::BatchedCounter events_counter_;
  obs::BatchedCounter requests_counter_;
};

}  // namespace

std::uint64_t routing_fingerprint(std::size_t sessions, std::size_t shards) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t s = 0; s < sessions; ++s)
    fnv_fold(h, static_cast<std::uint64_t>(shard_of(s, shards)));
  return h;
}

void FrontDoorParams::apply_scaled_admission() {
  // Expected steady-state request rate: every arriving session eventually
  // issues touches x mean-URLs requests, so the long-run rate is the
  // arrival rate times requests per session. Fresh cache hits bypass
  // admission entirely (proxy front door, PR 4), so the token budget only
  // meets the *miss* stream — provision at half the gross rate and a
  // saturating sweep sheds its overflow deterministically instead of
  // queueing it without bound.
  const double mean_urls =
      (1.0 + static_cast<double>(load.max_urls_per_touch)) / 2.0;
  const double expected_rps =
      load.session_arrival_per_s *
      static_cast<double>(load.touches_per_session) * mean_urls;
  admission.global_rate_per_s = expected_rps * 0.50;
  admission.global_burst = expected_rps * 0.25;
  admission.session_rate_per_s = 0;  // a million lazy buckets help nobody
  admission.session_burst = 0;
  admission.max_inflight_upstream = 4096;
  admission.max_dispatch_queue = 16384;
  admission.seed = load.seed;
}

std::string FrontDoorResult::deterministic_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("frontdoor");
  w.key("shards").value(shards);
  w.key("sessions").value(load.sessions);
  w.key("touches_per_session").value(load.touches_per_session);
  w.key("url_universe").value(load.url_universe);
  w.key("skew_exponent").value(load.skew_exponent);
  w.key("touch_rate_per_s").value(load.touch_rate_per_s);
  w.key("session_arrival_per_s").value(load.session_arrival_per_s);
  w.key("seed").value(static_cast<unsigned long long>(load.seed));
  w.key("events").value(events);
  w.key("requests").value(requests);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("failed").value(failed);
  w.key("cache_hits").value(cache_hits);
  w.key("bytes_to_client").value(static_cast<unsigned long long>(bytes_to_client));
  w.key("upstream_bytes_saved")
      .value(static_cast<unsigned long long>(upstream_bytes_saved));
  w.key("cache_hit_ratio").value(cache_hit_ratio);
  w.key("shed_rate").value(shed_rate);
  w.key("fingerprint").value(static_cast<unsigned long long>(fingerprint));
  w.key("routing_fingerprint").value(static_cast<unsigned long long>(routing_fp));
  w.key("per_shard").begin_array();
  for (const FrontDoorShardReport& s : per_shard) {
    w.begin_object();
    w.key("shard").value(s.shard);
    w.key("sessions").value(s.sessions);
    w.key("events").value(s.events);
    w.key("requests").value(s.requests);
    w.key("cache_hits").value(s.proxy.cache_hits);
    w.key("rejected").value(s.proxy.rejected);
    w.key("shed").value(s.proxy.shed);
    w.key("cache_insertions").value(s.cache.insertions);
    w.key("cache_evictions").value(s.cache.evictions);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FrontDoorResult run_front_door(const FrontDoorParams& params,
                               FrontDoorMode mode) {
  MFHTTP_CHECK(params.shards >= 1);
  MFHTTP_CHECK(params.load.sessions <= 0xffffffffULL);

  // Shared, read-only URL universe: one ObjectStore every shard's origin
  // serves from, plus the absolute URL strings requests are built with.
  ObjectStore store;
  std::vector<std::string> urls;
  urls.reserve(params.load.url_universe);
  for (std::size_t i = 0; i < params.load.url_universe; ++i) {
    const std::string path = "/obj/" + std::to_string(i);
    store.put(path, sim::frontdoor_object_bytes(params.load, i), "image/jpeg");
    urls.push_back("http://origin.example" + path);
  }

  const std::vector<sim::TouchEvent> timeline =
      generate_frontdoor_load(params.load);

  std::vector<FrontDoorSessionStats> slots(params.load.sessions);
  auto ghosts = std::make_shared<CacheGhosts>();
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(params.shards);
  for (std::size_t i = 0; i < params.shards; ++i)
    shards.push_back(std::make_unique<Shard>(i, params, &store, &urls, ghosts,
                                             slots.data()));

  std::vector<std::size_t> max_depth(params.shards, 0);
  std::uint64_t backpressure_retries = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  if (mode == FrontDoorMode::kInline) {
    // The historical single-box path: every event served on this thread in
    // global order. With shards == 1 this is the byte-identity reference.
    for (const sim::TouchEvent& e : timeline) {
      QueuedEvent qe{e, wall_ns()};
      shards[shard_of(e.session, params.shards)]->process(qe);
    }
    for (auto& shard : shards) shard->drain();
  } else {
    std::atomic<bool> producers_done{false};
    std::vector<std::thread> workers;
    workers.reserve(params.shards);
    for (auto& shard_ptr : shards) {
      Shard* shard = shard_ptr.get();
      workers.emplace_back([shard, &producers_done] {
        QueuedEvent qe;
        for (;;) {
          if (shard->queue.try_pop(qe)) {
            shard->process(qe);
            continue;
          }
          if (producers_done.load(std::memory_order_acquire)) {
            // One more look: the flag may have been raised between our
            // failed pop and the producer's final push landing.
            if (shard->queue.try_pop(qe)) {
              shard->process(qe);
              continue;
            }
            break;
          }
          std::this_thread::yield();
        }
        shard->drain();
      });
    }

    // This thread is the single in-order producer: pushing the globally
    // sorted timeline means every shard consumes its sessions' events in
    // timestamp order, which is what makes any shard count reproducible.
    for (const sim::TouchEvent& e : timeline) {
      const std::size_t s = shard_of(e.session, params.shards);
      Shard& shard = *shards[s];
      QueuedEvent qe{e, wall_ns()};
      while (!shard.queue.try_push(qe)) {
        ++backpressure_retries;  // bounded queue: stall, never drop
        std::this_thread::yield();
      }
      max_depth[s] = std::max(max_depth[s], shard.queue.approx_size());
    }
    producers_done.store(true, std::memory_order_release);
    for (std::thread& t : workers) t.join();
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();

  FrontDoorResult result;
  result.shards = params.shards;
  result.threaded = mode == FrontDoorMode::kThreaded;
  result.load = params.load;
  result.wall_ms = wall_ms;

  // Merge strictly in session-id order: completion interleavings already
  // collapsed into per-slot state, so these totals (and the fingerprint
  // fold) are pure functions of per-shard processing order.
  result.fingerprint = 1469598103934665603ULL;
  for (const FrontDoorSessionStats& slot : slots) {
    result.requests += slot.requests;
    result.completed += slot.completed;
    result.rejected += slot.rejected;
    result.failed += slot.failed;
    result.bytes_to_client += static_cast<Bytes>(slot.bytes_to_client);
    fnv_fold(result.fingerprint, slot.fingerprint);
  }
  result.routing_fp = routing_fingerprint(params.load.sessions, params.shards);

  for (std::size_t i = 0; i < shards.size(); ++i) {
    FrontDoorShardReport report = shards[i]->report();
    report.max_queue_depth = max_depth[i];
    result.events += report.events;
    result.cache_hits += report.proxy.cache_hits;
    result.upstream_bytes_saved += report.proxy.bytes_from_upstream_saved;
    result.per_shard.push_back(std::move(report));
  }
  for (std::size_t s = 0; s < params.load.sessions; ++s)
    ++result.per_shard[shard_of(s, params.shards)].sessions;

  result.cache_hit_ratio =
      result.requests > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.requests)
          : 0;
  result.shed_rate = result.requests > 0
                         ? static_cast<double>(result.rejected) /
                               static_cast<double>(result.requests)
                         : 0;

  Samples latencies;
  for (const auto& shard : shards)
    for (double us : shard->latencies_us()) latencies.add(us);
  result.p50_touch_to_policy_us =
      latencies.count() ? latencies.percentile(50) : 0;
  result.p99_touch_to_policy_us =
      latencies.count() ? latencies.percentile(99) : 0;
  if (wall_ms > 0) {
    result.sessions_per_sec =
        static_cast<double>(params.load.sessions) * 1000.0 / wall_ms;
    result.events_per_sec =
        static_cast<double>(result.events) * 1000.0 / wall_ms;
  }

  obs::metrics()
      .counter("http.frontdoor.backpressure_retries_total")
      .inc(backpressure_retries);

  return result;
}

}  // namespace mfhttp
