// Wire-level HTTP/1.1 endpoints over BytePipe byte streams.
//
// The event-level stack (SimHttpOrigin / MitmProxy) moves *sizes* — ideal
// for experiments. This layer moves *bytes*: real request/response messages
// are serialized onto simulated TCP streams and re-parsed at the other end,
// exactly what the paper's mitmdump deployment does. It exists to prove the
// codec + policy path end to end (and powers the wire-level tests and the
// mitm_proxy example).
//
// Connections are HTTP/1.1 keep-alive, handled strictly serially: one
// request is answered completely before the next is read. A deferred
// request therefore blocks its connection until released — the same
// head-of-line behaviour a parked mitmproxy flow has.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "http/message.h"
#include "http/object_store.h"
#include "http/parser.h"
#include "http/proxy.h"
#include "net/byte_pipe.h"

namespace mfhttp {

// Deterministic filler payload for stored objects without real bodies.
std::string synthesize_body(std::string_view path, Bytes size);

// Entity tag the wire server hands out for an object (quoted, per RFC 9110).
std::string object_etag(std::string_view path, Bytes size);

// Parsed "Range: bytes=<first>-<last>" header (single range only; suffix
// form "bytes=-N" and open form "bytes=N-" both supported). `last` is
// inclusive, per RFC 9110. Returns nullopt for anything unparsable.
struct ByteRange {
  long long first = 0;
  long long last = 0;  // inclusive
};
std::optional<ByteRange> parse_byte_range(std::string_view header_value,
                                          long long body_size);

// Serves an ObjectStore over a channel (reads requests from `rx`, writes
// responses to `tx`).
class WireHttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  WireHttpServer(const ObjectStore* store, BytePipe* rx, BytePipe* tx);

  // Override request handling entirely (default: serve the store, 404
  // otherwise).
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  std::size_t requests_served() const { return requests_served_; }

 private:
  void on_bytes(std::string_view data);
  HttpResponse handle(const HttpRequest& request) const;

  const ObjectStore* store_;
  BytePipe* rx_;
  BytePipe* tx_;
  HttpParser parser_{HttpParser::Mode::kRequest};
  Handler handler_;
  std::size_t requests_served_ = 0;
};

// Issues requests over a channel and matches responses FIFO.
class WireHttpClient {
 public:
  using ResponseFn = std::function<void(const HttpResponse&)>;

  WireHttpClient(BytePipe* tx, BytePipe* rx);

  // Serialize and send; `on_response` fires when the full response arrives.
  void send(const HttpRequest& request, ResponseFn on_response);

  std::size_t pending() const { return pending_.size(); }

 private:
  void on_bytes(std::string_view data);

  BytePipe* tx_;
  BytePipe* rx_;
  HttpParser parser_{HttpParser::Mode::kResponse};
  std::deque<ResponseFn> pending_;
};

// Byte-level man-in-the-middle proxy: client channel on one side, an
// upstream WireHttpClient-style channel to the origin on the other, with the
// same Interceptor policy hooks as the event-level MitmProxy.
class WireMitmProxy {
 public:
  // client_rx/client_tx: the device-facing stream pair.
  // upstream_tx/upstream_rx: the origin-facing stream pair.
  WireMitmProxy(BytePipe* client_rx, BytePipe* client_tx, BytePipe* upstream_tx,
                BytePipe* upstream_rx);

  void set_interceptor(Interceptor* interceptor) { interceptor_ = interceptor; }

  // Release a deferred request (by absolute URL). Returns true if one was
  // parked. The connection resumes where it stalled.
  bool release(const std::string& url);

  std::size_t requests_proxied() const { return proxied_; }
  std::size_t requests_blocked() const { return blocked_; }
  const std::optional<std::string>& deferred_url() const { return deferred_url_; }

 private:
  void on_client_bytes(std::string_view data);
  void pump();  // handle the next parsed request if idle
  void forward_upstream(const HttpRequest& request);
  void respond_blocked(const HttpRequest& request);
  void on_upstream_bytes(std::string_view data);

  BytePipe* client_rx_;
  BytePipe* client_tx_;
  BytePipe* upstream_tx_;
  BytePipe* upstream_rx_;
  Interceptor* interceptor_ = nullptr;

  HttpParser client_parser_{HttpParser::Mode::kRequest};
  HttpParser upstream_parser_{HttpParser::Mode::kResponse};
  std::deque<HttpRequest> backlog_;      // parsed but unhandled requests
  bool awaiting_upstream_ = false;       // a forwarded request is in flight
  std::optional<HttpRequest> deferred_;  // the parked request, if any
  std::optional<std::string> deferred_url_;
  std::size_t proxied_ = 0;
  std::size_t blocked_ = 0;
};

}  // namespace mfhttp
