#include "http/proxy.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "overload/admission.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

namespace {

// Parked requests across every proxy instance (queue-depth gauge).
obs::Gauge& deferred_depth_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("http.proxy.deferred_depth");
  return g;
}

// Admitted requests waiting for an upstream concurrency slot.
obs::Gauge& dispatch_depth_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("http.proxy.dispatch_depth");
  return g;
}

obs::Counter& rejected_counter() {
  static obs::Counter& c = obs::metrics().counter("http.proxy.rejected_total");
  return c;
}

obs::Counter& shed_counter() {
  static obs::Counter& c = obs::metrics().counter("http.proxy.shed_total");
  return c;
}

}  // namespace

MitmProxy::MitmProxy(Simulator& sim, HttpFetcher* upstream, Link* client_link,
                     Params params)
    : sim_(sim), upstream_(upstream), client_link_(client_link), params_(params) {
  MFHTTP_CHECK(upstream_ != nullptr);
  MFHTTP_CHECK(client_link_ != nullptr);
}

MitmProxy::~MitmProxy() {
  // Requests still parked when the proxy dies leave the depth gauges otherwise.
  for (const auto& [id, p] : pending_) {
    if (p.deferred) deferred_depth_gauge().sub(1);
    if (p.queued) dispatch_depth_gauge().sub(1);
  }
}

std::string MitmProxy::url_of(const HttpRequest& request) {
  auto url = request.url();
  return url ? url->to_string() : request.target;
}

HttpFetcher::FetchId MitmProxy::fetch(const HttpRequest& request,
                                      FetchCallbacks callbacks) {
  MFHTTP_CHECK(callbacks.on_complete != nullptr);
  FetchId id = next_id_++;
  Pending& p = pending_[id];
  p.request = request;
  p.callbacks = std::move(callbacks);
  p.url = url_of(request);
  p.session = request.session();
  p.request_ms = sim_.now();

  static obs::Counter& requests_total =
      obs::metrics().counter("http.proxy.requests_total");
  requests_total.inc();

  // Header hygiene precedes everything else: an abusive request must not
  // charge admission tokens or reach policy code (same caps the socket
  // transport's parser enforces on the wire — see HttpParser::Limits).
  if (params_.max_header_bytes > 0 || params_.max_header_count > 0) {
    std::size_t header_bytes = 0;
    for (const auto& entry : request.headers)
      header_bytes += entry.name().size() + entry.value().size() + 4;  // ": " CRLF
    const bool too_big = params_.max_header_bytes > 0 &&
                         header_bytes > params_.max_header_bytes;
    const bool too_many = params_.max_header_count > 0 &&
                          request.headers.size() > params_.max_header_count;
    if (too_big || too_many) {
      ++stats_.header_violations;
      static obs::Counter& violations =
          obs::metrics().counter("http.proxy.header_violation_total");
      violations.inc();
      MFHTTP_TRACE << "proxy 431 (" << (too_big ? "header bytes" : "header count")
                   << ") " << p.url;
      p.reject_event = sim_.schedule_after(
          params_.reject_delay_ms, [this, id] { finish_rejected(id, 431); });
      return id;
    }
  }

  // A fresh cache hit will be served from the proxy without touching the
  // upstream, so it must not spend admission tokens either — rate limiting
  // protects upstream capacity, and a hit consumes none. Peek only (no
  // stats/recency); the authoritative lookup runs in start_upstream after
  // policy has had its say.
  const bool fresh_hit = cache_ != nullptr && cache_->has_fresh(p.url, sim_.now());

  // Overload front door: rate limiting and brownout shedding run before the
  // interceptor so a condemned request costs the proxy nothing but the
  // bounce. The priority hint travels on the request (x-mfhttp-priority);
  // unhinted requests count as viewport-critical, so single-session callers
  // are never shed ahead of work they did not label.
  if (admission_ != nullptr && !fresh_hit) {
    const int priority = request.priority_hint(overload::kPriorityViewport);
    overload::Decision door = admission_->on_request(p.session, priority, sim_.now());
    if (!door.admitted()) {
      const bool shed = door.verdict == overload::Verdict::kShed;
      if (shed) {
        ++stats_.shed;
        shed_counter().inc();
      } else {
        ++stats_.rejected;
        rejected_counter().inc();
      }
      MFHTTP_TRACE << "proxy " << (shed ? "shed" : "reject") << " (" << door.reason
                   << ") " << p.url;
      const int status = shed ? 503 : 429;
      p.reject_event = sim_.schedule_after(
          params_.reject_delay_ms, [this, id, status] { finish_rejected(id, status); });
      return id;
    }
  }

  InterceptDecision decision =
      interceptor_ ? interceptor_->on_request(request) : InterceptDecision::allow();
  p.priority = decision.priority;
  switch (decision.action) {
    case InterceptDecision::Action::kAllow: {
      ++stats_.allowed;
      static obs::Counter& allowed = obs::metrics().counter("http.proxy.allowed_total");
      allowed.inc();
      start_upstream(id);
      break;
    }
    case InterceptDecision::Action::kRewrite: {
      ++stats_.rewritten;
      static obs::Counter& rewritten =
          obs::metrics().counter("http.proxy.rewritten_total");
      rewritten.inc();
      auto url = parse_url(decision.rewrite_url);
      MFHTTP_CHECK_MSG(url.has_value(), "rewrite target must be an absolute URL");
      p.request = HttpRequest::get(*url);
      start_upstream(id);
      break;
    }
    case InterceptDecision::Action::kBlock: {
      ++stats_.blocked;
      static obs::Counter& blocked = obs::metrics().counter("http.proxy.blocked_total");
      blocked.inc();
      p.reject_event = sim_.schedule_after(params_.reject_delay_ms,
                                           [this, id] { finish_blocked(id, 403); });
      break;
    }
    case InterceptDecision::Action::kDefer: {
      // Bounded deferred queue: a park the admission controller has no room
      // for becomes a fast 503 instead of an unbounded pile of parked state.
      if (admission_ != nullptr && !admission_->try_defer(p.session)) {
        ++stats_.rejected;
        rejected_counter().inc();
        MFHTTP_TRACE << "proxy reject (deferred_full) " << p.url;
        p.reject_event = sim_.schedule_after(
            params_.reject_delay_ms, [this, id] { finish_rejected(id, 503); });
        break;
      }
      p.defer_accounted = admission_ != nullptr;
      ++stats_.deferred;
      static obs::Counter& deferred =
          obs::metrics().counter("http.proxy.deferred_total");
      deferred.inc();
      deferred_depth_gauge().add(1);
      p.deferred = true;
      MFHTTP_TRACE << "proxy defer " << p.url;
      if (params_.defer_timeout_ms > 0) {
        p.watchdog_event = sim_.schedule_after(params_.defer_timeout_ms, [this, id] {
          auto wit = pending_.find(id);
          if (wit == pending_.end() || !wit->second.deferred) return;
          wit->second.watchdog_event = Simulator::kInvalidEvent;
          static obs::Counter& timeouts =
              obs::metrics().counter("http.proxy.defer_timeouts_total");
          timeouts.inc();
          MFHTTP_TRACE << "proxy defer timeout " << wit->second.url;
          if (params_.defer_timeout_action == Params::DeferTimeoutAction::kRelease)
            start_upstream(id);
          else
            finish_failed(id, params_.defer_timeout_status);
        });
      }
      break;
    }
  }
  return id;
}

void MitmProxy::start_upstream(FetchId id) {
  auto it = pending_.find(id);
  MFHTTP_CHECK(it != pending_.end());
  Pending& p = it->second;
  if (p.deferred) deferred_depth_gauge().sub(1);
  p.deferred = false;
  undefer_accounting(p);
  disarm_watchdog(p);

  // Middleware-server cache: a fresh hit skips the upstream hop entirely.
  // Keyed by the URL actually fetched upstream (which differs from p.url
  // after a rewrite), so substituted responses never poison the original's
  // entry. Stale entries inside the stale-while-revalidate window are served
  // immediately with a background refresh; stale entries beyond it block on
  // a conditional GET when they carry a validator.
  const std::string fetch_url = url_of(p.request);
  if (cache_ != nullptr) {
    if (auto hit = cache_->lookup(fetch_url, sim_.now())) {
      if (hit->freshness == HttpCache::Freshness::kFresh) {
        serve_from_cache(id, hit->object);
        return;
      }
      if (hit->within_swr) {
        ++stats_.stale_served;
        static obs::Counter& stale =
            obs::metrics().counter("http.proxy.stale_served_total");
        stale.inc();
        background_revalidate(fetch_url, hit->object);
        serve_from_cache(id, hit->object);
        return;
      }
      if (hit->revalidatable) {
        // TTL expired past the SWR window: ask the origin whether the copy
        // is still good before serving it. A 304 answer below streams the
        // cached bytes; a 200 replaces them.
        p.stale_object = hit->object;
        p.request.headers.set("If-None-Match", hit->object.etag);
      }
    }
  }

  // Upstream concurrency cap: when all slots are busy the request parks in
  // the priority dispatch queue; when that too is full it bounces. Cache
  // hits above never consume a slot — they touch no upstream.
  if (admission_ != nullptr && !p.holds_slot) {
    if (!admission_->try_acquire_upstream()) {
      if (!admission_->has_dispatch_room(static_cast<int>(dispatch_queue_.size()))) {
        ++stats_.rejected;
        rejected_counter().inc();
        MFHTTP_TRACE << "proxy reject (dispatch_full) " << p.url;
        p.reject_event = sim_.schedule_after(
            params_.reject_delay_ms, [this, id] { finish_rejected(id, 503); });
        return;
      }
      p.queued = true;
      dispatch_queue_.emplace(p.priority, id);
      dispatch_depth_gauge().add(1);
      return;
    }
    p.holds_slot = true;
  }

  FetchCallbacks up;
  up.on_headers = [this, id, fetch_url](const SimResponseMeta& meta) {
    auto pit = pending_.find(id);
    if (pit == pending_.end()) return;
    Pending& pd = pit->second;
    // A resilient upstream re-sends headers on every retry attempt; the
    // client transfer from the first headers keeps streaming.
    if (pd.client_transfer != Link::kInvalidTransfer) return;

    if (meta.status == 304 && pd.stale_object.has_value()) {
      // The origin confirmed the stale copy: restart its TTL and stream the
      // cached bytes — the upstream round trip moved headers only.
      ++stats_.revalidations;
      static obs::Counter& reval =
          obs::metrics().counter("http.proxy.revalidations_total");
      reval.inc();
      cache_->revalidated(fetch_url, sim_.now());
      CachedObject validated = *pd.stale_object;
      pd.stale_object.reset();
      serve_from_cache(id, validated);
      return;
    }
    pd.stale_object.reset();  // changed upstream: the 200 body replaces it

    if (pd.callbacks.on_headers) pd.callbacks.on_headers(meta);
    if (!pending_.contains(id)) return;  // callback may cancel

    // Begin streaming to the client as soon as upstream headers arrive
    // (cut-through forwarding; the client hop is the bottleneck).
    start_client_transfer(id, meta, fetch_url);
  };
  up.on_complete = [this, id](const FetchResult& r) {
    // Proxy-side copy finished; normally the client-side transfer finishes
    // the fetch. But a dead upstream (reset, timeout, fast-fail, truncated
    // body) must not leave the client waiting on bytes that will never
    // exist: propagate the failure instead.
    auto pit = pending_.find(id);
    if (pit == pending_.end()) return;
    Pending& pd = pit->second;
    pd.upstream_id = HttpFetcher::kInvalidFetch;
    // NOTE: the concurrency slot is NOT freed here. With cut-through
    // forwarding the upstream copy finishes long before the client stream
    // on the bottleneck hop; the slot caps requests *in service* end to
    // end, which is what actually protects the client link.
    if (pd.client_transfer == Link::kInvalidTransfer) {
      // Upstream finished without ever producing headers: nothing will ever
      // complete the client fetch. Forward the failure status.
      finish_failed(id, r.status != 0 ? r.status : 502);
      return;
    }
    // A 304 completes with zero body by design: the client stream is being
    // fed from the validated cache entry, not from upstream bytes.
    if (r.status == 304) return;
    if (r.status == 0 || r.body_size < pd.client_total) {
      // Upstream died mid-body; the cut-through stream can never deliver
      // what the headers promised.
      client_link_->cancel(pd.client_transfer);
      pd.client_transfer = Link::kInvalidTransfer;
      finish_failed(id, 502);
    }
  };
  p.upstream_id = upstream_->fetch(p.request, std::move(up));
}

void MitmProxy::serve_from_cache(FetchId id, const CachedObject& object) {
  auto it = pending_.find(id);
  MFHTTP_CHECK(it != pending_.end());
  ++stats_.cache_hits;
  stats_.bytes_from_upstream_saved += object.size;
  static obs::Counter& cache_hits = obs::metrics().counter("http.proxy.cache_hits_total");
  cache_hits.inc();
  static obs::Counter& saved =
      obs::metrics().counter("http.proxy.upstream_bytes_saved_total");
  saved.inc(static_cast<std::uint64_t>(object.size));
  SimResponseMeta meta;
  meta.status = object.status;
  meta.body_size = object.size;
  meta.content_type = object.content_type;
  meta.etag = object.etag;
  if (it->second.callbacks.on_headers) it->second.callbacks.on_headers(meta);
  if (!pending_.contains(id)) return;  // callback may cancel
  start_client_transfer(id, meta, /*cache_key=*/{});
}

void MitmProxy::start_client_transfer(FetchId id, const SimResponseMeta& meta,
                                      std::string cache_key) {
  auto it = pending_.find(id);
  MFHTTP_CHECK(it != pending_.end());
  const Bytes total = meta.body_size;
  const int status = meta.status;
  const std::string content_type = meta.content_type;
  const std::string etag = meta.etag;
  it->second.client_total = total;
  it->second.client_received = 0;
  it->second.client_transfer = client_link_->submit(
      total,
      [this, id, total, status, content_type, etag,
       cache_key = std::move(cache_key)](Bytes chunk, bool complete) {
        auto cit = pending_.find(id);
        if (cit == pending_.end()) return;
        cit->second.client_received += chunk;
        stats_.bytes_to_client += chunk;
        static obs::Counter& to_client =
            obs::metrics().counter("http.proxy.bytes_to_client_total");
        to_client.inc(static_cast<std::uint64_t>(chunk));
        if (cit->second.callbacks.on_progress)
          cit->second.callbacks.on_progress(chunk, cit->second.client_received,
                                            total);
        if (complete) {
          Pending done = std::move(cit->second);
          pending_.erase(cit);
          FetchResult result;
          result.url = done.url;
          result.status = status;
          result.body_size = done.client_received;
          result.request_ms = done.request_ms;
          result.complete_ms = sim_.now();
          if (done.upstream_id != HttpFetcher::kInvalidFetch)
            upstream_->cancel(done.upstream_id);  // upstream may lag the client
          release_upstream_slot(done);
          if (!cache_key.empty() && cache_ != nullptr && status == 200)
            cache_->put(cache_key, CachedObject{total, status, content_type, etag},
                        sim_.now());
          done.callbacks.on_complete(result);
          if (interceptor_) interceptor_->on_fetch_complete(result);
        }
      },
      it->second.priority);
}

void MitmProxy::background_revalidate(const std::string& url,
                                      const CachedObject& object) {
  if (!revalidating_.insert(url).second) return;  // one refresh at a time
  auto parsed = parse_url(url);
  if (!parsed.has_value()) {
    revalidating_.erase(url);
    return;
  }
  HttpRequest req = HttpRequest::get(*parsed);
  if (!object.etag.empty()) req.headers.set("If-None-Match", object.etag);
  req.set_priority_hint(overload::kPrioritySpeculative);
  // Deliberately bypasses the admission slot: in the common (304) case this
  // round trip moves headers only, and the client it serves is already
  // streaming the stale copy.
  auto meta = std::make_shared<SimResponseMeta>();
  FetchCallbacks cbs;
  cbs.on_headers = [meta](const SimResponseMeta& m) { *meta = m; };
  cbs.on_complete = [this, url, meta](const FetchResult& r) {
    revalidating_.erase(url);
    if (cache_ == nullptr) return;
    if (r.status == 304) {
      ++stats_.revalidations;
      static obs::Counter& reval =
          obs::metrics().counter("http.proxy.revalidations_total");
      reval.inc();
      cache_->revalidated(url, sim_.now());
    } else if (r.status == 200) {
      ++stats_.revalidations;
      static obs::Counter& reval =
          obs::metrics().counter("http.proxy.revalidations_total");
      reval.inc();
      cache_->put(url, CachedObject{r.body_size, 200, meta->content_type, meta->etag},
                  sim_.now());
    }
  };
  upstream_->fetch(req, std::move(cbs));
}

bool MitmProxy::prefetch(const std::string& url) {
  if (cache_ == nullptr) return false;
  if (prefetching_.contains(url)) return false;
  if (cache_->has_fresh(url, sim_.now())) return false;  // already warm
  if (admission_ != nullptr && !admission_->allow_prefetch(sim_.now())) {
    ++stats_.prefetch_denied;
    static obs::Counter& denied =
        obs::metrics().counter("http.proxy.prefetch_denied_total");
    denied.inc();
    return false;
  }
  auto parsed = parse_url(url);
  if (!parsed.has_value()) return false;
  HttpRequest req = HttpRequest::get(*parsed);
  req.set_priority_hint(overload::kPrioritySpeculative);
  if (auto existing = cache_->peek(url); existing && !existing->etag.empty())
    req.headers.set("If-None-Match", existing->etag);

  ++stats_.prefetches;
  static obs::Counter& issued =
      obs::metrics().counter("http.proxy.prefetch_issued_total");
  issued.inc();
  auto meta = std::make_shared<SimResponseMeta>();
  FetchCallbacks cbs;
  cbs.on_headers = [meta](const SimResponseMeta& m) { *meta = m; };
  cbs.on_complete = [this, url, meta](const FetchResult& r) {
    prefetching_.erase(url);
    if (cache_ == nullptr) return;
    if (r.status == 304) {
      cache_->revalidated(url, sim_.now());
    } else if (r.status == 200) {
      cache_->put(url, CachedObject{r.body_size, 200, meta->content_type, meta->etag},
                  sim_.now(), /*prefetched=*/true);
    }
  };
  // Register before fetching: a fast-failing upstream may complete (and
  // erase the registration) before fetch() returns.
  prefetching_[url] = HttpFetcher::kInvalidFetch;
  HttpFetcher::FetchId fid = upstream_->fetch(req, std::move(cbs));
  auto it = prefetching_.find(url);
  if (it != prefetching_.end()) it->second = fid;
  return true;
}

bool MitmProxy::cancel_prefetch(const std::string& url) {
  auto it = prefetching_.find(url);
  if (it == prefetching_.end()) return false;
  const HttpFetcher::FetchId fid = it->second;
  prefetching_.erase(it);
  if (fid != HttpFetcher::kInvalidFetch) upstream_->cancel(fid);
  ++stats_.prefetch_cancelled;
  static obs::Counter& cancelled =
      obs::metrics().counter("http.proxy.prefetch_cancelled_total");
  cancelled.inc();
  return true;
}

void MitmProxy::finish_failed(FetchId id, int status) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.deferred) deferred_depth_gauge().sub(1);
  undefer_accounting(p);
  unqueue(id, p);
  release_upstream_slot(p);
  disarm_watchdog(p);
  if (p.reject_event != Simulator::kInvalidEvent) sim_.cancel(p.reject_event);
  if (p.upstream_id != HttpFetcher::kInvalidFetch) upstream_->cancel(p.upstream_id);
  if (p.client_transfer != Link::kInvalidTransfer)
    client_link_->cancel(p.client_transfer);
  static obs::Counter& failed = obs::metrics().counter("http.proxy.failed_total");
  failed.inc();
  Pending done = std::move(p);
  pending_.erase(it);
  FetchResult result;
  result.url = done.url;
  result.status = status;
  result.body_size = done.client_received;
  result.request_ms = done.request_ms;
  result.complete_ms = sim_.now();
  done.callbacks.on_complete(result);
  if (interceptor_) interceptor_->on_fetch_complete(result);
}

void MitmProxy::finish_rejected(FetchId id, int status) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.deferred) deferred_depth_gauge().sub(1);
  undefer_accounting(p);
  unqueue(id, p);
  release_upstream_slot(p);
  disarm_watchdog(p);
  Pending done = std::move(p);
  pending_.erase(it);
  FetchResult result;
  result.url = done.url;
  result.status = status;
  result.body_size = 0;
  result.request_ms = done.request_ms;
  result.complete_ms = sim_.now();
  result.rejected = true;
  done.callbacks.on_complete(result);
  if (interceptor_) interceptor_->on_fetch_complete(result);
}

void MitmProxy::undefer_accounting(Pending& p) {
  if (!p.defer_accounted) return;
  p.defer_accounted = false;
  admission_->on_undefer(p.session);
}

void MitmProxy::unqueue(FetchId id, Pending& p) {
  if (!p.queued) return;
  p.queued = false;
  dispatch_depth_gauge().sub(1);
  for (auto it = dispatch_queue_.begin(); it != dispatch_queue_.end(); ++it) {
    if (it->second == id) {
      dispatch_queue_.erase(it);
      return;
    }
  }
}

void MitmProxy::release_upstream_slot(Pending& p) {
  if (!p.holds_slot) return;
  p.holds_slot = false;
  admission_->release_upstream();
  // Dispatch from a fresh event, not from the middle of whatever teardown or
  // completion callback freed the slot — same simulated instant, no
  // reentrancy into a map we may be iterating.
  sim_.schedule_after(0, [this] { dispatch_next(); });
}

void MitmProxy::dispatch_next() {
  while (!dispatch_queue_.empty()) {
    auto it = dispatch_queue_.begin();  // highest priority, FIFO within class
    const FetchId id = it->second;
    dispatch_queue_.erase(it);
    auto pit = pending_.find(id);
    if (pit == pending_.end()) continue;  // torn down while queued
    pit->second.queued = false;
    dispatch_depth_gauge().sub(1);
    start_upstream(id);  // re-acquires the freed slot (or re-parks if raced)
    return;
  }
}

void MitmProxy::disarm_watchdog(Pending& p) {
  if (p.watchdog_event == Simulator::kInvalidEvent) return;
  sim_.cancel(p.watchdog_event);
  p.watchdog_event = Simulator::kInvalidEvent;
}

TimeMs MitmProxy::now() const { return sim_.now(); }

void MitmProxy::finish_blocked(FetchId id, int status) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (it->second.deferred) deferred_depth_gauge().sub(1);
  undefer_accounting(it->second);
  unqueue(id, it->second);
  release_upstream_slot(it->second);
  disarm_watchdog(it->second);
  Pending done = std::move(it->second);
  pending_.erase(it);
  FetchResult result;
  result.url = done.url;
  result.status = status;
  result.body_size = 0;
  result.request_ms = done.request_ms;
  result.complete_ms = sim_.now();
  result.blocked = true;
  done.callbacks.on_complete(result);
  if (interceptor_) interceptor_->on_fetch_complete(result);
}

bool MitmProxy::cancel(FetchId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  Pending& p = it->second;
  if (p.deferred) deferred_depth_gauge().sub(1);
  undefer_accounting(p);
  unqueue(id, p);
  release_upstream_slot(p);
  disarm_watchdog(p);
  if (p.reject_event != Simulator::kInvalidEvent) sim_.cancel(p.reject_event);
  if (p.upstream_id != HttpFetcher::kInvalidFetch) upstream_->cancel(p.upstream_id);
  if (p.client_transfer != Link::kInvalidTransfer)
    client_link_->cancel(p.client_transfer);
  pending_.erase(it);
  return true;
}

std::size_t MitmProxy::release(const std::string& url, int priority) {
  std::vector<FetchId> ids;
  for (auto& [id, p] : pending_)
    if (p.deferred && p.url == url) ids.push_back(id);
  for (FetchId id : ids) {
    ++stats_.released;
    static obs::Counter& released = obs::metrics().counter("http.proxy.released_total");
    released.inc();
    MFHTTP_TRACE << "proxy release " << url;
    pending_[id].priority = priority;
    start_upstream(id);
  }
  return ids.size();
}

std::size_t MitmProxy::release_rewritten(const std::string& url,
                                         const std::string& substitute_url,
                                         int priority) {
  auto substitute = parse_url(substitute_url);
  MFHTTP_CHECK_MSG(substitute.has_value(), "substitute must be an absolute URL");
  std::vector<FetchId> ids;
  for (auto& [id, p] : pending_)
    if (p.deferred && p.url == url) ids.push_back(id);
  for (FetchId id : ids) {
    ++stats_.released;
    ++stats_.rewritten;
    static obs::Counter& released = obs::metrics().counter("http.proxy.released_total");
    released.inc();
    static obs::Counter& rewritten =
        obs::metrics().counter("http.proxy.rewritten_total");
    rewritten.inc();
    MFHTTP_TRACE << "proxy release " << url << " as " << substitute_url;
    pending_[id].request = HttpRequest::get(*substitute);
    pending_[id].priority = priority;
    start_upstream(id);
  }
  return ids.size();
}

std::size_t MitmProxy::abort_deferred(const std::string& url) {
  std::vector<FetchId> ids;
  for (auto& [id, p] : pending_)
    if (p.deferred && p.url == url) ids.push_back(id);
  for (FetchId id : ids) {
    ++stats_.aborted;
    static obs::Counter& aborted = obs::metrics().counter("http.proxy.aborted_total");
    aborted.inc();
    finish_blocked(id, 403);
  }
  return ids.size();
}

std::vector<std::string> MitmProxy::deferred_urls() const {
  std::vector<std::string> out;
  for (const auto& [id, p] : pending_)
    if (p.deferred) out.push_back(p.url);
  return out;
}

std::size_t MitmProxy::deferred_depth() const {
  std::size_t n = 0;
  for (const auto& [id, p] : pending_)
    if (p.deferred) ++n;
  return n;
}

TimeMs MitmProxy::oldest_waiting_age_ms() const {
  TimeMs oldest = 0;
  for (const auto& [id, p] : pending_)
    if (p.deferred || p.queued) oldest = std::max(oldest, sim_.now() - p.request_ms);
  return oldest;
}

}  // namespace mfhttp
