// Man-in-the-middle HTTP proxy — the simulated counterpart of the paper's
// mitmdump deployment (§4.3): every client request passes through an
// interceptor that may allow, block, defer, or rewrite it, and allowed
// responses stream back to the client over the (bottleneck) client link.
//
// Deferral is the mechanism behind the flow controller's block list: a
// deferred request is parked until release(url) (object became relevant) or
// abort_deferred(url) (object stays blocked). Rewriting maps a request to a
// different representation (e.g. a lower-resolution tile in the 360° video
// case study).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "http/cache.h"
#include "http/sim_http.h"

namespace mfhttp {

namespace overload {
class AdmissionController;
}  // namespace overload

struct InterceptDecision {
  enum class Action { kAllow, kBlock, kDefer, kRewrite };
  Action action = Action::kAllow;
  std::string rewrite_url;  // used when action == kRewrite
  // Transfer priority on the client link (kFifo links serve higher first;
  // fair-share links ignore it). Only meaningful for kAllow/kRewrite.
  int priority = 0;

  static InterceptDecision allow(int priority = 0) {
    return {Action::kAllow, {}, priority};
  }
  static InterceptDecision block() { return {Action::kBlock, {}, 0}; }
  static InterceptDecision defer() { return {Action::kDefer, {}, 0}; }
  static InterceptDecision rewrite(std::string url, int priority = 0) {
    return {Action::kRewrite, std::move(url), priority};
  }
};

// Policy hook. The flow controller implements this.
class Interceptor {
 public:
  virtual ~Interceptor() = default;
  virtual InterceptDecision on_request(const HttpRequest& request) = 0;
  // Informational: a fetch this proxy served (or blocked) finished.
  virtual void on_fetch_complete(const FetchResult& result) { (void)result; }
};

struct MitmProxyParams {
  // Delay for the proxy to reject a blocked request back to the client.
  TimeMs reject_delay_ms = 5;

  // Request-header hygiene at the proxy front door, mirroring
  // HttpParser::Limits on the socket transport: a request whose header
  // section exceeds either cap bounces with 431 Request Header Fields Too
  // Large before admission, policy, or cache see it. 0 disables a cap.
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_header_count = 256;

  // Deferred-queue watchdog (resilience layer). A request parked longer than
  // defer_timeout_ms is either force-released upstream (kRelease — graceful
  // degradation: stale policy beats a stranded client) or failed back to the
  // client with defer_timeout_status (kFail). 0 disables the watchdog.
  enum class DeferTimeoutAction { kRelease, kFail };
  TimeMs defer_timeout_ms = 0;
  DeferTimeoutAction defer_timeout_action = DeferTimeoutAction::kRelease;
  int defer_timeout_status = 504;
};

class MitmProxy : public HttpFetcher {
 public:
  using Params = MitmProxyParams;

  struct Stats {
    std::size_t allowed = 0;
    std::size_t blocked = 0;
    std::size_t deferred = 0;
    std::size_t released = 0;
    std::size_t aborted = 0;
    std::size_t rewritten = 0;
    std::size_t rejected = 0;  // bounced by admission (429, or 503 on full queues)
    std::size_t shed = 0;      // dropped by brownout load shedding (503)
    std::size_t header_violations = 0;  // bounced with 431 (header caps)
    std::size_t cache_hits = 0;
    std::size_t stale_served = 0;   // stale entries served inside the SWR window
    std::size_t revalidations = 0;  // conditional refreshes (304 or replaced body)
    std::size_t prefetches = 0;         // speculative warm-ups issued upstream
    std::size_t prefetch_denied = 0;    // warm-ups refused by admission headroom
    std::size_t prefetch_cancelled = 0; // warm-ups aborted (predicted path changed)
    Bytes bytes_to_client = 0;
    Bytes bytes_from_upstream_saved = 0;  // upstream bytes avoided via cache
  };

  // upstream: where allowed requests are forwarded (usually a SimHttpOrigin
  // whose link models the fast proxy-origin hop).
  // client_link: the bottleneck hop to the device; response bodies stream
  // over it.
  MitmProxy(Simulator& sim, HttpFetcher* upstream, Link* client_link,
            Params params = {});
  ~MitmProxy() override;

  // No interceptor (nullptr) means allow everything — the baseline path.
  void set_interceptor(Interceptor* interceptor) { interceptor_ = interceptor; }

  // Optional middleware-server cache (§4.2). Successful GET responses are
  // admitted; later fetches of the same URL skip the upstream hop entirely
  // and stream to the client straight from the proxy.
  void set_cache(LruCache* cache) { cache_ = cache; }

  // Optional overload protection (overload/admission.h). When installed,
  // every fetch passes the controller's front door first — rate-limited or
  // shed requests complete fast with 429/503 and `FetchResult::rejected`
  // set — the deferred queue becomes bounded, and upstream fetches obey the
  // concurrency cap: admitted overflow parks in a priority dispatch queue
  // (highest InterceptDecision::priority first) until a slot frees.
  void set_admission(overload::AdmissionController* admission) {
    admission_ = admission;
  }

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override;
  bool cancel(FetchId id) override;

  // Speculative cache warm-up: fetch `url` from the upstream straight into
  // the cache, with no client transfer. The entry is flagged prefetched so
  // the cache can account usefulness vs. waste. Skipped (returns false) when
  // there is no cache, the entry is already fresh, a warm-up for the URL is
  // already in flight, or the admission controller reports no headroom for
  // speculation. A stale revalidatable entry warms conditionally — an
  // unchanged object costs a headers-only round trip.
  bool prefetch(const std::string& url);

  // Abort an in-flight warm-up (the predicted scroll path changed). True if
  // one was cancelled.
  bool cancel_prefetch(const std::string& url);

  // In-flight speculative warm-ups (tests/planner introspection).
  std::size_t prefetch_inflight() const { return prefetching_.size(); }

  // Start all deferred requests whose URL matches. Returns count released.
  // `priority` applies to the client-link transfer (see InterceptDecision).
  std::size_t release(const std::string& url, int priority = 0);

  // Release deferred requests for `url`, but fetch `substitute_url` instead
  // (e.g. a thumbnail for a video clip the user will only glimpse). The
  // client still sees its original request complete — with the substitute's
  // bytes. Returns count released.
  std::size_t release_rewritten(const std::string& url,
                                const std::string& substitute_url,
                                int priority = 0);

  // Fail all deferred requests whose URL matches as blocked. Returns count.
  std::size_t abort_deferred(const std::string& url);

  // URLs currently parked in the deferred queue (in arrival order).
  std::vector<std::string> deferred_urls() const;

  // Admission-control introspection (brownout supervisor sampling).
  std::size_t dispatch_queue_depth() const { return dispatch_queue_.size(); }
  std::size_t deferred_depth() const;
  // Age of the oldest parked (deferred or dispatch-queued) request; 0 if none.
  TimeMs oldest_waiting_age_ms() const;

  const Stats& stats() const { return stats_; }

  // Simulated time, for policy layers that track release-to-delivery slip.
  TimeMs now() const;

 private:
  struct Pending {
    HttpRequest request;
    FetchCallbacks callbacks;
    std::string url;
    std::string session;  // x-mfhttp-session identity (admission control)
    TimeMs request_ms;
    int priority = 0;
    bool deferred = false;
    bool defer_accounted = false;  // counted in AdmissionController defer bounds
    bool queued = false;           // parked in the dispatch queue
    bool holds_slot = false;       // owns an upstream concurrency slot
    Simulator::EventId reject_event = Simulator::kInvalidEvent;
    Simulator::EventId watchdog_event = Simulator::kInvalidEvent;
    HttpFetcher::FetchId upstream_id = HttpFetcher::kInvalidFetch;
    Link::TransferId client_transfer = Link::kInvalidTransfer;
    Bytes client_total = 0;     // advertised by the headers that started it
    Bytes client_received = 0;  // delivered to the client so far
    // Stale-but-revalidatable cache entry backing a blocking conditional GET;
    // served as-is if the upstream answers 304.
    std::optional<CachedObject> stale_object;
  };

  void start_upstream(FetchId id);
  // Stream a cache hit to the client without touching the upstream.
  void serve_from_cache(FetchId id, const CachedObject& object);
  // cache_key: URL under which to admit the response on completion; empty
  // disables admission (cache hits, rewritten-away originals).
  void start_client_transfer(FetchId id, const SimResponseMeta& meta,
                             std::string cache_key);
  void finish_blocked(FetchId id, int status);
  // Complete a request bounced by admission control: 429 (rate) or 503
  // (shed / full queue), FetchResult::rejected set, no bytes moved.
  void finish_rejected(FetchId id, int status);
  // Admission bookkeeping helpers; every teardown path funnels through
  // these so queue bounds and the concurrency cap can never leak.
  void undefer_accounting(Pending& p);
  void unqueue(FetchId id, Pending& p);
  void release_upstream_slot(Pending& p);
  void dispatch_next();
  // Fail a fetch the proxy cannot serve (upstream died, watchdog kFail):
  // tears down whatever is in flight and completes the client with `status`
  // and the bytes that actually arrived. Unlike finish_blocked this is a
  // fault, not policy — blocked stays false.
  void finish_failed(FetchId id, int status);
  void disarm_watchdog(Pending& p);
  // Fire-and-forget conditional refresh of a stale cache entry (the
  // stale-while-revalidate back half). Deduped per URL.
  void background_revalidate(const std::string& url, const CachedObject& object);
  static std::string url_of(const HttpRequest& request);

  Simulator& sim_;
  HttpFetcher* upstream_;
  Link* client_link_;
  Params params_;
  Interceptor* interceptor_ = nullptr;
  LruCache* cache_ = nullptr;
  overload::AdmissionController* admission_ = nullptr;
  FetchId next_id_ = 1;
  std::map<FetchId, Pending> pending_;  // ordered: deferred_urls in arrival order
  // Admitted requests waiting for an upstream slot: highest priority first,
  // FIFO within a priority class (multimap keeps insertion order for equal
  // keys).
  std::multimap<int, FetchId, std::greater<int>> dispatch_queue_;
  // URLs with a background revalidation in flight (dedupe).
  std::unordered_set<std::string> revalidating_;
  // In-flight speculative warm-ups, by URL, for cancellation.
  std::unordered_map<std::string, HttpFetcher::FetchId> prefetching_;
  Stats stats_;
};

}  // namespace mfhttp
