// Per-key circuit breaker for the resilient fetch layer.
//
// Classic three-state machine, keyed by origin host:
//
//   kClosed ──(failure_threshold consecutive failures)──▶ kOpen
//   kOpen   ──(open_ms elapsed, one probe admitted)─────▶ kHalfOpen
//   kHalfOpen ──(success_to_close probe successes)──────▶ kClosed
//   kHalfOpen ──(any probe failure)─────────────────────▶ kOpen
//
// While open, allow() returns false (callers fast-fail without touching the
// origin). Time comes from the caller — the breaker never reads a clock — so
// it is exactly as deterministic as the simulation driving it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace mfhttp {

struct CircuitBreakerParams {
  int failure_threshold = 5;  // consecutive failures to trip open
  TimeMs open_ms = 3000;      // cool-down before the first probe
  int success_to_close = 1;   // probe successes to fully close
};

class CircuitBreaker {
 public:
  using Params = CircuitBreakerParams;
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(Params params = {});

  // May a request for `key` proceed at `now`? An open breaker past its
  // cool-down admits exactly one probe (half-open) at a time.
  bool allow(const std::string& key, TimeMs now);

  void record_success(const std::string& key, TimeMs now);
  void record_failure(const std::string& key, TimeMs now);
  // The admitted request went away without an outcome (caller cancelled);
  // frees the half-open probe slot so the breaker cannot wedge.
  void abandon(const std::string& key);

  State state(const std::string& key) const;

  // Observer for state transitions (degradation wiring). Fires after the
  // breaker's own bookkeeping, so state(key) reflects `to`.
  using TransitionFn =
      std::function<void(const std::string& key, State from, State to)>;
  void set_on_transition(TransitionFn fn) { on_transition_ = std::move(fn); }

  static const char* state_name(State s);

 private:
  struct Entry {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int half_open_successes = 0;
    TimeMs opened_at = 0;
    bool probe_inflight = false;
  };

  void transition(const std::string& key, Entry& e, State to);

  Params params_;
  std::unordered_map<std::string, Entry> entries_;
  TransitionFn on_transition_;
};

}  // namespace mfhttp
