// Process-wide interner for well-known HTTP header names.
//
// Every header name the middleware itself emits or inspects — and the
// overwhelming majority a mobile page's requests carry — comes from a small
// fixed vocabulary. Interning maps any spelling of such a name ("ETAG",
// "etag") to one canonical, statically allocated string, so HeaderMap can
// store a pointer instead of copying the name and can compare names by
// pointer identity instead of character-folding per entry (the
// strcmp-per-entry ProxyServer-cache pattern this layer exists to beat).
//
// Lifetime and thread-safety contract (DESIGN.md §17): the table is a
// compile-time constant in static storage. It is never mutated after load —
// unknown names are NOT added at runtime (a request flood of novel names
// must not grow process memory) — so lookups are lock-free, pointers remain
// valid for the life of the process, and interned views may be shared
// freely across threads.
#pragma once

#include <string_view>

namespace mfhttp {

// Canonical spelling of a well-known header name, or an empty view if the
// name is not in the vocabulary. Case-insensitive; never allocates.
// The returned view points into static storage (data() is stable: two
// lookups of the same name under any casing return the same pointer).
std::string_view intern_header_name(std::string_view name);

// True iff `name` is in the well-known vocabulary.
inline bool is_well_known_header(std::string_view name) {
  return !intern_header_name(name).empty();
}

// Vocabulary size (test/diagnostic use).
std::size_t interned_header_count();

}  // namespace mfhttp
