// Incremental HTTP/1.1 parser for requests and responses.
//
// Feed arbitrary byte slices as they arrive from the transport; completed
// messages queue up and are taken in order. Supports Content-Length bodies,
// chunked transfer coding (with trailers), bodiless statuses (1xx/204/304),
// and read-until-close response bodies (via finish()).
#pragma once

#include <deque>
#include <string>
#include <string_view>

#include "http/message.h"

namespace mfhttp {

class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode) : mode_(mode) {}

  // Consume bytes. Returns false once the stream is in an error state
  // (further input is ignored).
  bool feed(std::string_view data);

  // Signal end-of-stream. Completes a read-until-close response body;
  // truncated messages in any other state become errors.
  void finish();

  // The next response should be treated as bodiless (reply to a HEAD).
  void expect_head_response() { head_response_ = true; }

  bool has_error() const { return state_ == State::kError; }
  const std::string& error() const { return error_; }

  std::size_t message_count() const {
    return mode_ == Mode::kRequest ? requests_.size() : responses_.size();
  }
  bool has_message() const { return message_count() > 0; }

  // Precondition: has_message() and the matching mode.
  HttpRequest take_request();
  HttpResponse take_response();

 private:
  enum class State { kStartLine, kHeaders, kBody, kChunkSize, kChunkData,
                     kChunkDataEnd, kTrailers, kError };

  void fail(std::string msg);
  bool parse_start_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void on_headers_complete();
  void complete_message();
  HeaderMap& current_headers();
  std::string& current_body();

  Mode mode_;
  State state_ = State::kStartLine;
  std::string buffer_;           // unconsumed input
  std::string error_;
  bool head_response_ = false;

  HttpRequest req_;              // message under construction
  HttpResponse resp_;
  long long body_remaining_ = 0; // for kBody / kChunkData
  bool read_until_close_ = false;

  std::deque<HttpRequest> requests_;
  std::deque<HttpResponse> responses_;
};

}  // namespace mfhttp
