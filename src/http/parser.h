// Incremental HTTP/1.1 parser for requests and responses.
//
// Feed arbitrary byte slices as they arrive from the transport; completed
// messages queue up and are taken in order. Supports Content-Length bodies,
// chunked transfer coding (with trailers), bodiless statuses (1xx/204/304),
// and read-until-close response bodies (via finish()).
#pragma once

#include <deque>
#include <string>
#include <string_view>

#include "http/message.h"

namespace mfhttp {

class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  // Hard caps on the header section of one message (start line excluded;
  // trailers included — they fold into the same header map). 0 disables a
  // cap. Breaching either puts the parser in the error state with
  // limit_violation() set, which transports surface as 431 Request Header
  // Fields Too Large instead of a generic 400.
  struct Limits {
    std::size_t max_header_bytes = 64 * 1024;
    std::size_t max_header_count = 256;
  };

  explicit HttpParser(Mode mode) : HttpParser(mode, Limits()) {}
  HttpParser(Mode mode, Limits limits) : mode_(mode), limits_(limits) {}

  // Consume bytes. Returns false once the stream is in an error state
  // (further input is ignored).
  bool feed(std::string_view data);

  // Signal end-of-stream. Completes a read-until-close response body;
  // truncated messages in any other state become errors.
  void finish();

  // The next response should be treated as bodiless (reply to a HEAD).
  void expect_head_response() { head_response_ = true; }

  bool has_error() const { return state_ == State::kError; }
  const std::string& error() const { return error_; }
  // True when the error was a header byte/count cap breach (431, not 400).
  bool limit_violation() const { return limit_violation_; }

  std::size_t message_count() const {
    return mode_ == Mode::kRequest ? requests_.size() : responses_.size();
  }
  bool has_message() const { return message_count() > 0; }

  // True when no partial message is buffered — the safe point to close a
  // keep-alive connection or drop a per-message read deadline.
  bool between_messages() const {
    return state_ == State::kStartLine && buffer_.empty();
  }

  // Precondition: has_message() and the matching mode.
  HttpRequest take_request();
  HttpResponse take_response();

 private:
  enum class State { kStartLine, kHeaders, kBody, kChunkSize, kChunkData,
                     kChunkDataEnd, kTrailers, kError };

  void fail(std::string msg);
  void fail_limit(std::string msg);
  bool count_header_line(std::string_view line);
  bool parse_start_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void on_headers_complete();
  void complete_message();
  HeaderMap& current_headers();
  std::string& current_body();

  Mode mode_;
  Limits limits_;
  State state_ = State::kStartLine;
  std::string buffer_;           // unconsumed input
  std::string error_;
  bool head_response_ = false;
  bool limit_violation_ = false;
  std::size_t header_bytes_ = 0;  // cumulative header-section bytes, this message
  std::size_t header_count_ = 0;  // header + trailer fields, this message

  HttpRequest req_;              // message under construction
  HttpResponse resp_;
  long long body_remaining_ = 0; // for kBody / kChunkData
  bool read_until_close_ = false;

  std::deque<HttpRequest> requests_;
  std::deque<HttpResponse> responses_;
};

}  // namespace mfhttp
