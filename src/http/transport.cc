#include "http/transport.h"

#include <memory>
#include <string>
#include <utility>

#include "fault/fault_plan.h"
#include "fault/faulty_socket.h"
#include "net/aio/syscall.h"
#include "obs/metrics.h"
#include "overload/admission.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kSocket:
      return "socket";
  }
  return "?";
}

std::optional<TransportKind> transport_kind_from_name(std::string_view name) {
  if (name == "sim") return TransportKind::kSim;
  if (name == "socket") return TransportKind::kSocket;
  return std::nullopt;
}

// The client half of the socket backend. One keep-alive loopback connection
// to the aio::HttpServer; each fetch() is a synchronous round trip on the
// event loop followed by a sim-side replay of SimHttpOrigin's event shape —
// see the header comment for the parity contract.
class SocketTransport::SocketOrigin : public HttpFetcher {
 public:
  SocketOrigin(Simulator& sim, aio::EventLoop& loop, std::uint16_t port,
               Link* link, SimHttpOriginParams params,
               const TransportConfig& config)
      : sim_(sim),
        loop_(loop),
        port_(port),
        link_(link),
        params_(params),
        config_(config) {
    MFHTTP_CHECK(link_ != nullptr);
  }

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override;
  bool cancel(FetchId id) override;

  const ClientStats& stats() const { return stats_; }
  std::size_t inflight() const { return inflight_.size(); }

 private:
  struct WireOutcome {
    bool ok = false;
    HttpResponse response;
    std::string error;
  };
  struct Inflight {
    Simulator::EventId pending_event = Simulator::kInvalidEvent;
    Link::TransferId transfer = Link::kInvalidTransfer;
  };

  // Reuse the kept-alive connection or dial a fresh one. `fresh` reports
  // which happened (a fresh conn's death is a real failure; a reused conn's
  // death may just be the server's idle close racing our next request).
  bool ensure_connected(bool* fresh);
  // Move every byte the conn has received into the active response parser.
  void pump_parser();
  WireOutcome round_trip(const HttpRequest& request);

  Simulator& sim_;
  aio::EventLoop& loop_;
  std::uint16_t port_;
  Link* link_;
  SimHttpOriginParams params_;
  TransportConfig config_;
  ClientStats stats_;

  std::unique_ptr<aio::TcpConn> conn_;
  bool conn_alive_ = false;
  aio::TcpConn::CloseReason close_reason_ = aio::TcpConn::CloseReason::kLocal;
  HttpParser* active_parser_ = nullptr;  // round_trip()-scoped
  std::uint64_t next_conn_ordinal_ = 0;

  FetchId next_id_ = 1;
  std::unordered_map<FetchId, Inflight> inflight_;
};

bool SocketTransport::SocketOrigin::ensure_connected(bool* fresh) {
  if (conn_ && conn_alive_ && conn_->open()) {
    *fresh = false;
    return true;
  }
  conn_.reset();
  int fd = aio::connect_loopback(port_);
  if (fd < 0) return false;
  aio::TcpConnParams cp;
  cp.read_buffer_cap = 256 * 1024;
  cp.write_buffer_cap = 256 * 1024;
  cp.idle_timeout_ms = 0;  // lifetime is governed per-fetch by the deadline
  cp.write_deadline_ms = config_.write_deadline_ms;
  conn_ = std::make_unique<aio::TcpConn>(loop_, fd, cp, next_conn_ordinal_++,
                                         /*faults=*/nullptr,
                                         /*await_connect=*/true);
  conn_alive_ = true;
  conn_->set_on_data([this] { pump_parser(); });
  conn_->set_on_closed([this](aio::TcpConn::CloseReason reason) {
    conn_alive_ = false;
    close_reason_ = reason;
    // An orderly FIN ends a read-until-close response body.
    if (reason == aio::TcpConn::CloseReason::kEof && active_parser_ != nullptr)
      active_parser_->finish();
  });
  ++stats_.connects;
  obs::metrics().counter("transport.client.connect_total").inc();
  *fresh = true;
  return true;
}

void SocketTransport::SocketOrigin::pump_parser() {
  if (active_parser_ == nullptr || conn_ == nullptr) return;
  while (!conn_->in().empty()) {
    std::string_view chunk = conn_->in().peek();
    active_parser_->feed(chunk);
    conn_->in().consume(chunk.size());
  }
  if (conn_alive_) conn_->resume_read();
}

SocketTransport::SocketOrigin::WireOutcome
SocketTransport::SocketOrigin::round_trip(const HttpRequest& request) {
  WireOutcome out;
  const TimeMs deadline = loop_.now_ms() + config_.fetch_deadline_ms;
  // At most two attempts: one on the kept-alive connection, one on a fresh
  // dial when the reused conn turns out to have died under us.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool fresh = false;
    if (!ensure_connected(&fresh)) {
      out.error = "connect failed";
      return out;
    }
    HttpParser parser(HttpParser::Mode::kResponse);
    if (request.method == "HEAD") parser.expect_head_response();
    active_parser_ = &parser;
    if (!conn_->send(request.serialize())) {
      active_parser_ = nullptr;
      out.error = "send buffer full";
      conn_->abort();
      conn_.reset();
      return out;
    }
    // Any bytes that raced in before the parser was armed.
    pump_parser();
    const bool done = loop_.run_until(
        [&] {
          return parser.has_message() || parser.has_error() || !conn_alive_;
        },
        deadline);
    active_parser_ = nullptr;

    if (parser.has_message()) {
      out.ok = true;
      out.response = parser.take_response();
      ++stats_.responses;
      if (!conn_alive_) conn_.reset();
      return out;
    }
    if (!done) {
      out.error = "fetch deadline";
      if (conn_) conn_->abort();
      conn_.reset();
      return out;
    }
    if (parser.has_error()) {
      out.error = "parse: " + parser.error();
      if (conn_) conn_->close();
      conn_.reset();
      return out;
    }
    // The connection died with no complete response. A reused conn may have
    // been idle-closed by the server between requests — retry once, fresh.
    conn_.reset();
    if (!fresh) continue;
    out.error =
        std::string("connection ") + aio::TcpConn::reason_name(close_reason_);
    return out;
  }
  out.error = "connection retry failed";
  return out;
}

HttpFetcher::FetchId SocketTransport::SocketOrigin::fetch(
    const HttpRequest& request, FetchCallbacks callbacks) {
  MFHTTP_CHECK(callbacks.on_complete != nullptr);
  FetchId id = next_id_++;
  auto url = request.url();
  std::string url_str = url ? url->to_string() : request.target;
  TimeMs request_ms = sim_.now();

  // Real I/O happens here, synchronously, in zero sim time.
  WireOutcome wire = round_trip(request);

  Inflight& fl = inflight_[id];
  if (!wire.ok) {
    ++stats_.transport_errors;
    obs::metrics().counter("transport.client.error_total").inc();
    MFHTTP_TRACE << "transport fetch " << url_str << " failed: " << wire.error;
    // Status 0 = transport error; ResilientFetcher treats it as retryable.
    fl.pending_event = sim_.schedule_after(
        params_.request_delay_ms,
        [this, id, url_str, request_ms, cbs = std::move(callbacks)] {
          auto it = inflight_.find(id);
          if (it == inflight_.end()) return;  // cancelled
          inflight_.erase(it);
          FetchResult result;
          result.url = url_str;
          result.status = 0;
          result.body_size = 0;
          result.request_ms = request_ms;
          result.complete_ms = sim_.now();
          cbs.on_complete(result);
        });
    return id;
  }

  // Sim-side replay: identical event shape to SimHttpOrigin::fetch.
  SimResponseMeta meta;
  meta.status = wire.response.status;
  meta.body_size = static_cast<Bytes>(wire.response.body.size());
  meta.content_type = std::string(
      wire.response.headers.get_view("Content-Type").value_or(std::string_view{}));
  meta.etag = std::string(
      wire.response.headers.get_view("ETag").value_or(std::string_view{}));

  fl.pending_event = sim_.schedule_after(
      params_.request_delay_ms,
      [this, id, url_str, request_ms, meta, cbs = std::move(callbacks)] {
        auto it = inflight_.find(id);
        if (it == inflight_.end()) return;  // cancelled
        it->second.pending_event = Simulator::kInvalidEvent;
        if (cbs.on_headers) cbs.on_headers(meta);

        // The headers callback may have cancelled this fetch.
        it = inflight_.find(id);
        if (it == inflight_.end()) return;

        if (meta.status == 304) {
          // 304 carries headers only: complete without touching the link.
          inflight_.erase(it);
          FetchResult result;
          result.url = url_str;
          result.status = 304;
          result.body_size = 0;
          result.request_ms = request_ms;
          result.complete_ms = sim_.now();
          cbs.on_complete(result);
          return;
        }

        auto received = std::make_shared<Bytes>(0);
        Bytes total = meta.body_size;
        int status = meta.status;
        it->second.transfer = link_->submit(
            total, [this, id, url_str, request_ms, total, status, received,
                    cbs](Bytes chunk, bool complete) {
              *received += chunk;
              if (cbs.on_progress) cbs.on_progress(chunk, *received, total);
              if (complete) {
                inflight_.erase(id);
                FetchResult result;
                result.url = url_str;
                result.status = status;
                result.body_size = *received;
                result.request_ms = request_ms;
                result.complete_ms = sim_.now();
                cbs.on_complete(result);
              }
            });
      });
  return id;
}

bool SocketTransport::SocketOrigin::cancel(FetchId id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  if (it->second.pending_event != Simulator::kInvalidEvent)
    sim_.cancel(it->second.pending_event);
  if (it->second.transfer != Link::kInvalidTransfer)
    link_->cancel(it->second.transfer);
  inflight_.erase(it);
  return true;
}

SocketTransport::SocketTransport(Simulator& sim, const ObjectStore* store,
                                 Link* origin_link,
                                 SimHttpOriginParams origin_params,
                                 TransportConfig config) {
  MFHTTP_CHECK(store != nullptr);
  MFHTTP_CHECK(origin_link != nullptr);
  MFHTTP_CHECK_MSG(config.kind == TransportKind::kSocket,
                   "SocketTransport built with kind=sim");

  if (config.plan != nullptr && config.plan->socket.any())
    injector_ = std::make_unique<fault::SocketFaultInjector>(*config.plan);

  aio::HttpServerParams sp;
  sp.conn.idle_timeout_ms = config.idle_timeout_ms;
  sp.conn.write_deadline_ms = config.write_deadline_ms;
  sp.limits.max_header_bytes = config.max_header_bytes;
  sp.limits.max_header_count = config.max_header_count;
  sp.request_deadline_ms = config.request_deadline_ms;
  sp.max_connections = config.max_connections;

  // The loopback origin answers with exactly SimHttpOrigin's semantics:
  // unknown path → 404 with a small error body; ETag match → bodyless 304;
  // otherwise wire_size() synthesized (or stored) body bytes.
  const Bytes error_body = origin_params.error_body_size;
  auto handler = [store, error_body](const HttpRequest& req) {
    auto url = req.url();
    const std::string path = url ? url->path : req.target;
    const StoredObject* obj = store->find(path);
    if (obj == nullptr) {
      return HttpResponse::make(
          404, "Not Found",
          std::string(static_cast<std::size_t>(error_body), 'x'), "text/plain");
    }
    const auto inm = req.headers.get_view("If-None-Match");
    if (!obj->etag.empty() && inm && *inm == obj->etag) {
      HttpResponse resp;
      resp.status = 304;
      resp.reason = "Not Modified";
      resp.headers.set("Content-Type", obj->content_type);
      resp.headers.set("ETag", obj->etag);
      return resp;
    }
    std::string body =
        obj->body ? *obj->body
                  : std::string(static_cast<std::size_t>(obj->size), 'x');
    HttpResponse resp =
        HttpResponse::make(200, "OK", std::move(body), obj->content_type);
    if (!obj->etag.empty()) resp.headers.set("ETag", obj->etag);
    return resp;
  };

  server_ = std::make_unique<aio::HttpServer>(
      loop_, config.port, std::move(handler), sp, injector_.get());

  if (config.admission != nullptr) {
    overload::AdmissionController* admission = config.admission;
    Simulator* simp = &sim;
    server_->set_shed_hook([admission, simp](const HttpRequest& req) {
      const overload::Decision decision = admission->on_request(
          req.session(), req.priority_hint(overload::kPriorityViewport),
          simp->now());
      return decision.verdict != overload::Verdict::kAdmit;
    });
  }

  origin_ = std::make_unique<SocketOrigin>(sim, loop_, server_->port(),
                                           origin_link, origin_params, config);
  MFHTTP_INFO << "socket transport listening on 127.0.0.1:" << server_->port();
}

SocketTransport::~SocketTransport() = default;

HttpFetcher& SocketTransport::origin() { return *origin_; }

const SocketTransport::ClientStats& SocketTransport::client_stats() const {
  return origin_->stats();
}

void SocketTransport::drain() {
  server_->drain();
  const TimeMs deadline = loop_.now_ms() + 200;
  loop_.run_until([this] { return server_->connection_count() == 0; },
                  deadline);
}

}  // namespace mfhttp
