// Shared validating HTTP cache for the middleware server (§4.2: the screen
// scrolling tracker/flow controller "can access the related data on the cache
// of the middleware server or directly from the multimedia service server").
//
// Keyed by absolute URL; stores response metadata and size (the event-level
// stack transfers sizes). Beyond the original strict-LRU byte cache this is a
// *validating* cache shared across sessions:
//
//   * TTL freshness      — an entry is fresh for ttl_ms after it was stored
//                          (or last revalidated); 0 means immortal. TTL takes
//                          precedence over ETags: a fresh entry is served
//                          without ever consulting the origin, etag or not.
//   * ETag revalidation  — a stale entry with an etag can be refreshed by a
//                          conditional fetch; a 304 calls revalidated() and
//                          restarts the TTL clock without moving body bytes.
//   * stale-while-revalidate — for swr_ms past expiry a stale entry may be
//                          served immediately while a background revalidation
//                          runs; beyond the window revalidation must block.
//   * cost-aware admission — when inserting would evict, the candidate must
//                          carry at least the hit-per-byte density of the best
//                          entry it displaces, so one giant cold tile cannot
//                          flush a run of hot thumbnails. Recently-evicted and
//                          missed URLs keep a decayed ghost frequency so a
//                          re-fetched hot object is re-admitted immediately.
//   * prefetch accounting — entries stored speculatively are flagged; the
//                          first hit marks the prefetch useful, eviction or
//                          expiry without one counts its bytes as wasted.
//
// All operations are mutex-guarded so one cache can back many concurrently
// simulated sessions (and real threads in a deployment).
//
// Lock order (DESIGN.md §12-§13): mu_ is held only above two strict leaves.
// Critical sections do container bookkeeping only — no logging, no JSON
// formatting, no callbacks into user code — so nothing slower than a map
// operation ever runs under them. The leaves a critical section may touch:
// the obs registry's mutex (first-use metric registration inside the cached
// function-local statics) and CacheGhosts::mu_ (the admission filter's
// frequency map, possibly shared between shard segments). Neither ever
// calls back into the cache, so HttpCache::mu_ -> {CacheGhosts::mu_,
// obs::Registry::mu_} is acyclic. Snapshot accessors (stats(),
// bytes_used(), ...) copy POD state under the lock and format outside it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace mfhttp {

// The TinyLFU admission filter's memory: decayed access counts for URLs not
// (or no longer) resident in a cache. Extracted from HttpCache so N shard
// segments can share ONE ghost list (DESIGN.md §13): a URL that was hot on
// any shard re-enters every segment's admission fight with its history
// intact, and a session migrating between runs cannot cold-start the
// filter. Self-synchronized (leaf mutex, see the lock-order note above) so
// shard workers may touch it concurrently from inside their segment's
// critical sections.
class CacheGhosts {
 public:
  // One lookup missed (or bypassed) a cache: remember the URL was wanted.
  // Every 1024 touches all counts halve (repeatedly, until the map is back
  // under 4096 entries) and zeros are pruned, so stale popularity decays
  // instead of pinning admission decisions forever while the common-case
  // bump stays O(1) under the shared lock.
  void bump(const std::string& url);

  // An evicted entry banks its earned hits (capped) so re-admission of a
  // genuinely hot object is immediate.
  void credit(const std::string& url, std::uint64_t hits);

  double frequency(const std::string& url) const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> counts_;
  std::uint64_t ops_ = 0;
};

struct CachedObject {
  Bytes size = 0;
  int status = 200;
  std::string content_type;
  std::string etag;     // empty: not revalidatable, stale means refetch
  TimeMs ttl_ms = 0;    // freshness lifetime; 0 = never stale
};

struct CacheParams {
  Bytes capacity_bytes = 0;
  // Applied to inserted objects whose own ttl_ms is 0. 0 keeps them immortal.
  TimeMs default_ttl_ms = 0;
  // Stale entries may be served (while revalidating in the background) for
  // this long past expiry; 0 disables stale-while-revalidate.
  TimeMs stale_while_revalidate_ms = 0;
  // No single object may exceed this fraction of the capacity (1.0 restores
  // the historical "fits at all" rule).
  double max_object_fraction = 1.0;
  // Frequency-per-byte admission when inserting would evict (see above).
  bool cost_aware_admission = false;
  // Ghost list shared with other caches (the sharded front door passes one
  // instance to every per-shard segment). Null: the cache owns a private
  // one, which is the historical single-box behavior. Note clear() clears
  // the ghost list it uses — shared or not.
  std::shared_ptr<CacheGhosts> shared_ghosts = nullptr;
};

class HttpCache {
 public:
  struct Stats {
    std::size_t hits = 0;          // fresh hits (includes stale_served)
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t expired = 0;            // lookups that found only a stale entry
    std::size_t stale_served = 0;       // stale hits inside the SWR window
    std::size_t revalidations = 0;      // revalidated() calls (304 refreshes)
    std::size_t admission_rejected = 0; // puts refused by cost-aware admission
    std::size_t prefetch_insertions = 0;
    std::size_t prefetch_useful = 0;    // prefetched entries that saw a hit
    Bytes prefetch_wasted_bytes = 0;    // prefetched, evicted/expired unhit
  };

  enum class Freshness { kFresh, kStale };

  struct Lookup {
    CachedObject object;
    Freshness freshness = Freshness::kFresh;
    // Stale entry still inside the stale-while-revalidate window: serve it
    // now, revalidate in the background.
    bool within_swr = false;
    bool revalidatable = false;  // stale with an etag: conditional GET works
  };

  explicit HttpCache(Bytes capacity_bytes) : HttpCache(CacheParams{capacity_bytes}) {}
  explicit HttpCache(CacheParams params);

  // Freshness-aware lookup; any present entry (fresh or stale) refreshes
  // recency and counts in stats. `now_ms` is simulated time.
  std::optional<Lookup> lookup(const std::string& url, TimeMs now_ms);

  // Back-compat lookup at t=0: entries inserted via the legacy put() carry
  // ttl 0 (immortal) so this behaves exactly like the historical LRU get().
  std::optional<CachedObject> get(const std::string& url);

  // Peek without touching recency or stats (for tests/inspection).
  bool contains(const std::string& url) const;

  // True if a fresh entry exists at `now_ms`; touches neither recency nor
  // stats — the proxy's front door uses this to decide whether a request can
  // skip admission control before the authoritative lookup() runs.
  bool has_fresh(const std::string& url, TimeMs now_ms) const;

  // Copy of the stored object regardless of freshness; no recency/stats
  // side effects (prefetch uses the etag for conditional warm-ups).
  std::optional<CachedObject> peek(const std::string& url) const;

  // Insert/overwrite; evicts LRU entries until the object fits, subject to
  // cost-aware admission. Objects larger than max_object_fraction * capacity
  // are rejected (returns false). `prefetched` flags speculative warm-ups
  // for the waste accounting.
  bool put(const std::string& url, CachedObject object, TimeMs now_ms = 0,
           bool prefetched = false);

  // A conditional fetch came back 304: the entry is still valid — restart
  // its TTL clock from `now_ms`. False if the entry vanished meanwhile.
  bool revalidated(const std::string& url, TimeMs now_ms);

  // Remove one entry; returns true if present.
  bool erase(const std::string& url);

  void clear();

  Bytes capacity() const { return params_.capacity_bytes; }
  Bytes bytes_used() const;
  std::size_t entry_count() const;
  Stats stats() const;
  const CacheParams& params() const { return params_; }

  // The admission filter's ghost list (shared with other segments when
  // CacheParams::shared_ghosts was set; private otherwise).
  const std::shared_ptr<CacheGhosts>& ghosts() const { return ghosts_; }

  // Bytes of live prefetched entries that have not (yet) served a hit; the
  // bench adds this to stats().prefetch_wasted_bytes for the end-of-run
  // "prefetch-wasted" figure.
  Bytes prefetched_unused_bytes() const;

 private:
  struct Entry {
    std::string url;
    CachedObject object;
    TimeMs stored_ms = 0;   // insert or last revalidation time
    std::uint64_t hits = 0;
    bool prefetched = false;  // speculative insert that has not hit yet
  };

  bool fresh_locked(const Entry& e, TimeMs now_ms) const;
  void evict_one_locked();
  bool erase_locked(const std::string& url);
  bool admit_locked(const std::string& url, Bytes size);
  void retire_prefetch_locked(const Entry& e);

  CacheParams params_;
  mutable std::mutex mu_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  // The admission filter's memory (see CacheGhosts); private by default,
  // shared across segments when params_.shared_ghosts was set.
  std::shared_ptr<CacheGhosts> ghosts_;
  Stats stats_;
};

// Historical name; the validating cache is a strict superset of the old
// byte-capacity LRU.
using LruCache = HttpCache;

}  // namespace mfhttp
