// LRU object cache for the middleware server (§4.2: the screen scrolling
// tracker/flow controller "can access the related data on the cache of the
// middleware server or directly from the multimedia service server").
//
// Keyed by absolute URL; stores response metadata and size (the event-level
// stack transfers sizes). Eviction is strict LRU by byte capacity. An object
// larger than the whole capacity is never admitted.
#pragma once

#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace mfhttp {

struct CachedObject {
  Bytes size = 0;
  int status = 200;
  std::string content_type;
};

class LruCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };

  explicit LruCache(Bytes capacity_bytes);

  // Lookup; a hit refreshes recency and counts in stats.
  std::optional<CachedObject> get(const std::string& url);

  // Peek without touching recency or stats (for tests/inspection).
  bool contains(const std::string& url) const { return index_.contains(url); }

  // Insert/overwrite; evicts LRU entries until the object fits. Objects
  // larger than the capacity are rejected (returns false).
  bool put(const std::string& url, CachedObject object);

  // Remove one entry; returns true if present.
  bool erase(const std::string& url);

  void clear();

  Bytes capacity() const { return capacity_; }
  Bytes bytes_used() const { return used_; }
  std::size_t entry_count() const { return index_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string url;
    CachedObject object;
  };

  void evict_one();

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace mfhttp
