#include "http/header_names.h"

#include <array>

#include "util/strings.h"

namespace mfhttp {

namespace {

// The vocabulary: every name the middleware emits or inspects, plus the
// common browser/origin request-response set. Canonical casing is what the
// wire serializer writes.
constexpr std::string_view kWellKnown[] = {
    "Accept",
    "Accept-Encoding",
    "Accept-Ranges",
    "Age",
    "Cache-Control",
    "Connection",
    "Content-Encoding",
    "Content-Length",
    "Content-Range",
    "Content-Type",
    "Date",
    "ETag",
    "Expires",
    "Host",
    "If-Modified-Since",
    "If-None-Match",
    "Last-Modified",
    "Location",
    "Range",
    "Referer",
    "Server",
    "Transfer-Encoding",
    "User-Agent",
    "Vary",
    "x-mfhttp-priority",
    "x-mfhttp-session",
    "x-mfhttp-shed",
};
constexpr std::size_t kCount = sizeof(kWellKnown) / sizeof(kWellKnown[0]);

// Open-addressed probe table over case-folded hashes, sized to a power of
// two >= 4x the vocabulary so probe chains stay short. Built once under the
// magic-static lock, immutable afterwards.
constexpr std::size_t kTableSize = 128;
static_assert(kTableSize >= 4 * kCount);

struct ProbeTable {
  // Index into kWellKnown, or -1 for an empty slot.
  std::array<int, kTableSize> slot;

  ProbeTable() {
    slot.fill(-1);
    for (std::size_t i = 0; i < kCount; ++i) {
      std::size_t at = ifold_hash(kWellKnown[i]) & (kTableSize - 1);
      while (slot[at] >= 0) at = (at + 1) & (kTableSize - 1);
      slot[at] = static_cast<int>(i);
    }
  }
};

const ProbeTable& probe_table() {
  static const ProbeTable table;
  return table;
}

}  // namespace

std::string_view intern_header_name(std::string_view name) {
  if (name.empty()) return {};
  const ProbeTable& table = probe_table();
  std::size_t at = ifold_hash(name) & (kTableSize - 1);
  while (true) {
    int idx = table.slot[at];
    if (idx < 0) return {};
    if (iequals(kWellKnown[static_cast<std::size_t>(idx)], name))
      return kWellKnown[static_cast<std::size_t>(idx)];
    at = (at + 1) & (kTableSize - 1);
  }
}

std::size_t interned_header_count() { return kCount; }

}  // namespace mfhttp
