#include "http/wire.h"

#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace mfhttp {

std::string synthesize_body(std::string_view path, Bytes size) {
  MFHTTP_CHECK(size >= 0);
  std::string out;
  out.reserve(static_cast<std::size_t>(size));
  std::string stamp = strformat("[%.*s]", static_cast<int>(path.size()), path.data());
  while (static_cast<Bytes>(out.size()) < size) out += stamp;
  out.resize(static_cast<std::size_t>(size));
  return out;
}

std::string object_etag(std::string_view path, Bytes size) {
  // FNV-1a over the identity; weak validator semantics are fine for the
  // simulated store (contents are a function of path and size).
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  };
  for (char c : path) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 8; ++i)
    mix(static_cast<unsigned char>((static_cast<std::uint64_t>(size) >> (8 * i)) & 0xff));
  return strformat("\"%016llx\"", static_cast<unsigned long long>(h));
}

std::optional<ByteRange> parse_byte_range(std::string_view header_value,
                                          long long body_size) {
  std::string_view s = trim(header_value);
  if (!starts_with(s, "bytes=")) return std::nullopt;
  s.remove_prefix(6);
  if (s.find(',') != std::string_view::npos) return std::nullopt;  // multi-range
  std::size_t dash = s.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  std::string_view first_sv = trim(s.substr(0, dash));
  std::string_view last_sv = trim(s.substr(dash + 1));

  auto parse_ll = [](std::string_view v) -> std::optional<long long> {
    if (v.empty()) return std::nullopt;
    long long out = 0;
    for (char c : v) {
      if (c < '0' || c > '9') return std::nullopt;
      out = out * 10 + (c - '0');
      if (out > (1LL << 56)) return std::nullopt;
    }
    return out;
  };

  ByteRange range;
  if (first_sv.empty()) {
    // Suffix form: last N bytes.
    auto n = parse_ll(last_sv);
    if (!n || *n == 0) return std::nullopt;
    range.first = std::max<long long>(0, body_size - *n);
    range.last = body_size - 1;
  } else {
    auto first = parse_ll(first_sv);
    if (!first) return std::nullopt;
    range.first = *first;
    if (last_sv.empty()) {
      range.last = body_size - 1;  // open-ended
    } else {
      auto last = parse_ll(last_sv);
      if (!last || *last < *first) return std::nullopt;
      range.last = std::min<long long>(*last, body_size - 1);
    }
  }
  if (body_size == 0 || range.first >= body_size) return std::nullopt;
  return range;
}

// ---------- WireHttpServer ----------

WireHttpServer::WireHttpServer(const ObjectStore* store, BytePipe* rx, BytePipe* tx)
    : store_(store), rx_(rx), tx_(tx) {
  MFHTTP_CHECK(store_ != nullptr && rx_ != nullptr && tx_ != nullptr);
  rx_->set_on_data([this](std::string_view data) { on_bytes(data); });
}

HttpResponse WireHttpServer::handle(const HttpRequest& request) const {
  if (handler_) return handler_(request);
  if (!iequals(request.method, "GET") && !iequals(request.method, "HEAD"))
    return HttpResponse::make(400, "", "method not supported");
  auto url = request.url();
  std::string path = url ? url->path : request.target;
  const StoredObject* obj = store_->find(path);
  if (obj == nullptr) return HttpResponse::make(404, "", "no such object");

  // Conditional requests: a weak entity tag derived from (path, size). A
  // matching If-None-Match short-circuits to 304 Not Modified.
  const std::string etag = object_etag(path, obj->wire_size());
  if (auto inm = request.headers.get_view("If-None-Match")) {
    if (trim(*inm) == etag || trim(*inm) == "*") {
      HttpResponse resp;
      resp.status = 304;
      resp.reason = std::string(default_reason(304));
      resp.headers.set("ETag", etag);
      return resp;
    }
  }

  std::string body =
      obj->body ? *obj->body : synthesize_body(path, obj->size);

  // RFC 9110 byte serving: a valid single Range gets 206 Partial Content
  // with a Content-Range header; an unsatisfiable one gets 416.
  if (auto range_header = request.headers.get_view("Range")) {
    auto body_size = static_cast<long long>(body.size());
    auto range = parse_byte_range(*range_header, body_size);
    if (!range) {
      HttpResponse resp = HttpResponse::make(416, "Range Not Satisfiable", "");
      resp.headers.set("Content-Range", strformat("bytes */%lld", body_size));
      return resp;
    }
    std::string slice = body.substr(
        static_cast<std::size_t>(range->first),
        static_cast<std::size_t>(range->last - range->first + 1));
    HttpResponse resp = HttpResponse::make(206, "Partial Content",
                                           std::move(slice), obj->content_type);
    resp.headers.set("Content-Range",
                     strformat("bytes %lld-%lld/%lld", range->first, range->last,
                               body_size));
    if (iequals(request.method, "HEAD")) resp.body.clear();
    return resp;
  }

  HttpResponse resp = HttpResponse::make(200, "OK", std::move(body),
                                         obj->content_type);
  resp.headers.set("Accept-Ranges", "bytes");
  resp.headers.set("ETag", etag);
  if (iequals(request.method, "HEAD")) resp.body.clear();  // length kept
  return resp;
}

void WireHttpServer::on_bytes(std::string_view data) {
  if (!parser_.feed(data)) {
    MFHTTP_WARN << "wire server: parse error: " << parser_.error();
    const int status = parser_.limit_violation() ? 431 : 400;
    const char* body =
        parser_.limit_violation() ? "header limits exceeded" : "malformed request";
    tx_->send(HttpResponse::make(status, "", body).serialize());
    tx_->close();
    return;
  }
  while (parser_.has_message()) {
    HttpRequest request = parser_.take_request();
    ++requests_served_;
    tx_->send(handle(request).serialize());
  }
}

// ---------- WireHttpClient ----------

WireHttpClient::WireHttpClient(BytePipe* tx, BytePipe* rx) : tx_(tx), rx_(rx) {
  MFHTTP_CHECK(tx_ != nullptr && rx_ != nullptr);
  rx_->set_on_data([this](std::string_view data) { on_bytes(data); });
}

void WireHttpClient::send(const HttpRequest& request, ResponseFn on_response) {
  MFHTTP_CHECK(on_response != nullptr);
  if (iequals(request.method, "HEAD")) parser_.expect_head_response();
  pending_.push_back(std::move(on_response));
  tx_->send(request.serialize());
}

void WireHttpClient::on_bytes(std::string_view data) {
  if (!parser_.feed(data)) {
    MFHTTP_WARN << "wire client: parse error: " << parser_.error();
    return;
  }
  while (parser_.has_message()) {
    MFHTTP_CHECK_MSG(!pending_.empty(), "response without a pending request");
    ResponseFn fn = std::move(pending_.front());
    pending_.pop_front();
    fn(parser_.take_response());
  }
}

// ---------- WireMitmProxy ----------

WireMitmProxy::WireMitmProxy(BytePipe* client_rx, BytePipe* client_tx,
                             BytePipe* upstream_tx, BytePipe* upstream_rx)
    : client_rx_(client_rx),
      client_tx_(client_tx),
      upstream_tx_(upstream_tx),
      upstream_rx_(upstream_rx) {
  MFHTTP_CHECK(client_rx_ && client_tx_ && upstream_tx_ && upstream_rx_);
  client_rx_->set_on_data([this](std::string_view d) { on_client_bytes(d); });
  upstream_rx_->set_on_data([this](std::string_view d) { on_upstream_bytes(d); });
}

void WireMitmProxy::on_client_bytes(std::string_view data) {
  if (!client_parser_.feed(data)) {
    MFHTTP_WARN << "wire proxy: client parse error: " << client_parser_.error();
    const int status = client_parser_.limit_violation() ? 431 : 400;
    const char* body = client_parser_.limit_violation() ? "header limits exceeded"
                                                        : "malformed request";
    client_tx_->send(HttpResponse::make(status, "", body).serialize());
    client_tx_->close();
    return;
  }
  while (client_parser_.has_message()) backlog_.push_back(client_parser_.take_request());
  pump();
}

void WireMitmProxy::pump() {
  // Serial connection handling: only act when no response is outstanding and
  // no request is parked.
  while (!awaiting_upstream_ && !deferred_.has_value() && !backlog_.empty()) {
    HttpRequest request = std::move(backlog_.front());
    backlog_.pop_front();

    InterceptDecision decision = interceptor_ ? interceptor_->on_request(request)
                                              : InterceptDecision::allow();
    switch (decision.action) {
      case InterceptDecision::Action::kAllow:
        forward_upstream(request);
        break;
      case InterceptDecision::Action::kRewrite: {
        auto url = parse_url(decision.rewrite_url);
        MFHTTP_CHECK_MSG(url.has_value(), "rewrite target must be absolute");
        forward_upstream(HttpRequest::get(*url));
        break;
      }
      case InterceptDecision::Action::kBlock:
        respond_blocked(request);
        break;
      case InterceptDecision::Action::kDefer: {
        auto url = request.url();
        deferred_url_ = url ? url->to_string() : request.target;
        deferred_ = std::move(request);
        MFHTTP_TRACE << "wire proxy: deferred " << *deferred_url_;
        return;  // connection stalls until release()
      }
    }
  }
}

void WireMitmProxy::forward_upstream(const HttpRequest& request) {
  awaiting_upstream_ = true;
  ++proxied_;
  upstream_tx_->send(request.serialize());
}

void WireMitmProxy::respond_blocked(const HttpRequest& request) {
  ++blocked_;
  auto url = request.url();
  MFHTTP_TRACE << "wire proxy: blocked "
               << (url ? url->to_string() : request.target);
  client_tx_->send(
      HttpResponse::make(403, "", "blocked by middleware policy").serialize());
}

bool WireMitmProxy::release(const std::string& url) {
  if (!deferred_.has_value() || deferred_url_ != url) return false;
  HttpRequest request = std::move(*deferred_);
  deferred_.reset();
  deferred_url_.reset();
  forward_upstream(request);
  return true;
}

void WireMitmProxy::on_upstream_bytes(std::string_view data) {
  if (!upstream_parser_.feed(data)) {
    MFHTTP_WARN << "wire proxy: upstream parse error: " << upstream_parser_.error();
    client_tx_->send(HttpResponse::make(502, "", "upstream error").serialize());
    awaiting_upstream_ = false;
    pump();
    return;
  }
  while (upstream_parser_.has_message()) {
    // Store-and-forward relay: the full response is re-serialized downstream.
    HttpResponse response = upstream_parser_.take_response();
    client_tx_->send(response.serialize());
    awaiting_upstream_ = false;
  }
  pump();
}

}  // namespace mfhttp
