#include "http/circuit_breaker.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

CircuitBreaker::CircuitBreaker(Params params) : params_(params) {
  MFHTTP_CHECK(params_.failure_threshold > 0);
  MFHTTP_CHECK(params_.open_ms >= 0);
  MFHTTP_CHECK(params_.success_to_close > 0);
}

bool CircuitBreaker::allow(const std::string& key, TimeMs now) {
  Entry& e = entries_[key];
  switch (e.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - e.opened_at < params_.open_ms) return false;
      transition(key, e, State::kHalfOpen);
      [[fallthrough]];
    case State::kHalfOpen:
      if (e.probe_inflight) return false;  // one probe at a time
      e.probe_inflight = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(const std::string& key, TimeMs now) {
  (void)now;
  Entry& e = entries_[key];
  e.consecutive_failures = 0;
  if (e.state == State::kHalfOpen) {
    e.probe_inflight = false;
    if (++e.half_open_successes >= params_.success_to_close)
      transition(key, e, State::kClosed);
  }
}

void CircuitBreaker::record_failure(const std::string& key, TimeMs now) {
  Entry& e = entries_[key];
  switch (e.state) {
    case State::kClosed:
      if (++e.consecutive_failures >= params_.failure_threshold) {
        e.opened_at = now;
        transition(key, e, State::kOpen);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a fresh cool-down.
      e.probe_inflight = false;
      e.opened_at = now;
      transition(key, e, State::kOpen);
      break;
    case State::kOpen:
      break;  // stragglers from before the trip
  }
}

void CircuitBreaker::abandon(const std::string& key) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.state == State::kHalfOpen)
    it->second.probe_inflight = false;
}

CircuitBreaker::State CircuitBreaker::state(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? State::kClosed : it->second.state;
}

const char* CircuitBreaker::state_name(State s) {
  switch (s) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(const std::string& key, Entry& e, State to) {
  const State from = e.state;
  if (from == to) return;
  e.state = to;
  if (to == State::kOpen) {
    e.half_open_successes = 0;
    static obs::Counter& opened = obs::metrics().counter("http.breaker.opened_total");
    opened.inc();
  } else if (to == State::kHalfOpen) {
    e.half_open_successes = 0;
    static obs::Counter& half =
        obs::metrics().counter("http.breaker.half_open_total");
    half.inc();
  } else {
    e.consecutive_failures = 0;
    static obs::Counter& closed = obs::metrics().counter("http.breaker.closed_total");
    closed.inc();
  }
  if (on_transition_) on_transition_(key, from, to);
}

}  // namespace mfhttp
