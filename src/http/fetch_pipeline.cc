#include "http/fetch_pipeline.h"

#include <utility>

#include "fault/faulty_link.h"
#include "util/check.h"

namespace mfhttp {

FetchPipeline::~FetchPipeline() = default;

FetchPipelineBuilder::FetchPipelineBuilder(Simulator& sim, HttpFetcher* origin)
    : sim_(sim), origin_(origin) {
  MFHTTP_CHECK(origin != nullptr);
}

FetchPipelineBuilder::FetchPipelineBuilder(Simulator& sim)
    : sim_(sim), origin_(nullptr) {}

FetchPipelineBuilder& FetchPipelineBuilder::with_origin(
    const ObjectStore* store, Link* origin_link, SimHttpOriginParams params) {
  MFHTTP_CHECK(store != nullptr);
  MFHTTP_CHECK(origin_link != nullptr);
  origin_store_ = store;
  origin_link_ = origin_link;
  origin_params_ = params;
  origin_ = nullptr;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_transport(
    TransportConfig config) {
  transport_config_ = config;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::client_link(Link::Params params) {
  link_params_ = std::move(params);
  external_link_ = nullptr;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::client_link(Link* link) {
  MFHTTP_CHECK(link != nullptr);
  external_link_ = link;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_faults(
    const fault::FaultPlan* plan) {
  if (plan == nullptr) plan = fault::global_plan();
  // Only pipeline-visible faults warrant the decorators; a plan carrying
  // nothing but front-door shard faults (consumed by the shard workers, not
  // this stack) must leave the pipeline undecorated and byte-identical.
  if (plan != nullptr && !plan->pipeline_empty()) {
    plan_ = *plan;
  } else {
    plan_.reset();
  }
  // The socket section is consumed by the transport, not the decorators —
  // a socket-only plan leaves the sim-side pipeline pristine but must still
  // reach a kSocket transport at build().
  if (plan != nullptr && plan->socket.any()) {
    socket_plan_ = *plan;
  } else {
    socket_plan_.reset();
  }
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_resilience(
    ResilientFetcher::Params params) {
  resilience_ = std::move(params);
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_cache(CacheParams params) {
  cache_params_ = params;
  shared_cache_ = nullptr;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_cache(HttpCache* cache) {
  MFHTTP_CHECK(cache != nullptr);
  shared_cache_ = cache;
  cache_params_.reset();
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_admission(
    overload::AdmissionParams params) {
  admission_params_ = std::move(params);
  shared_admission_ = nullptr;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::with_admission(
    overload::AdmissionController* admission) {
  MFHTTP_CHECK(admission != nullptr);
  shared_admission_ = admission;
  admission_params_.reset();
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::proxy_params(
    MitmProxy::Params params) {
  proxy_params_ = params;
  return *this;
}

FetchPipelineBuilder& FetchPipelineBuilder::interceptor(
    Interceptor* interceptor) {
  interceptor_ = interceptor;
  return *this;
}

std::unique_ptr<FetchPipeline> FetchPipelineBuilder::build() {
  MFHTTP_CHECK(!built_);
  built_ = true;

  auto pipeline = std::unique_ptr<FetchPipeline>(new FetchPipeline());
  pipeline->plan_ = plan_;
  const fault::FaultPlan* plan = pipeline->fault_plan();

  // Layer 1 — the client (bottleneck) hop.
  if (external_link_ != nullptr) {
    pipeline->client_link_ = external_link_;
  } else {
    pipeline->owned_link_ =
        plan != nullptr
            ? std::make_unique<fault::FaultyLink>(sim_, link_params_, *plan)
            : std::make_unique<Link>(sim_, link_params_);
    pipeline->client_link_ = pipeline->owned_link_.get();
  }

  // Layer 2 — the origin. Either caller-supplied (constructor) or built
  // here from the store + origin link, over the selected transport backend.
  pipeline->transport_kind_ = transport_config_.kind;
  HttpFetcher* upstream = origin_;
  if (origin_store_ != nullptr) {
    if (transport_config_.kind == TransportKind::kSocket) {
      TransportConfig config = transport_config_;
      if (config.plan == nullptr && socket_plan_.has_value()) {
        pipeline->socket_plan_ = socket_plan_;
        config.plan = &*pipeline->socket_plan_;
      }
      pipeline->transport_ = std::make_unique<SocketTransport>(
          sim_, origin_store_, origin_link_, origin_params_, config);
      upstream = &pipeline->transport_->origin();
    } else {
      pipeline->owned_origin_ = std::make_unique<SimHttpOrigin>(
          sim_, origin_store_, origin_link_, origin_params_);
      upstream = pipeline->owned_origin_.get();
    }
  } else {
    MFHTTP_CHECK_MSG(transport_config_.kind == TransportKind::kSim,
                     "--transport=socket requires a builder-owned origin "
                     "(call with_origin)");
  }
  MFHTTP_CHECK_MSG(upstream != nullptr,
                   "pipeline needs an origin: pass one to the constructor or "
                   "call with_origin()");
  pipeline->origin_ = upstream;

  // Layers 3–4 — the upstream chain, innermost out: origin faults, then
  // resilience (retries must sit *outside* the fault injector so they see
  // and absorb its failures).
  if (plan != nullptr) {
    pipeline->faulty_ =
        std::make_unique<fault::FaultyFetcher>(sim_, upstream, *plan);
    upstream = pipeline->faulty_.get();
  }
  if (resilience_.has_value()) {
    pipeline->resilient_ =
        std::make_unique<ResilientFetcher>(sim_, upstream, *resilience_);
    upstream = pipeline->resilient_.get();
  }

  // Layer 5 — the proxy, with its cache and admission front door.
  if (cache_params_.has_value()) {
    pipeline->owned_cache_ = std::make_unique<HttpCache>(*cache_params_);
    pipeline->cache_ = pipeline->owned_cache_.get();
  } else {
    pipeline->cache_ = shared_cache_;
  }
  if (admission_params_.has_value()) {
    pipeline->owned_admission_ =
        std::make_unique<overload::AdmissionController>(*admission_params_);
    pipeline->admission_ = pipeline->owned_admission_.get();
  } else {
    pipeline->admission_ = shared_admission_;
  }

  pipeline->proxy_ = std::make_unique<MitmProxy>(
      sim_, upstream, pipeline->client_link_, proxy_params_);
  if (pipeline->cache_ != nullptr) pipeline->proxy_->set_cache(pipeline->cache_);
  if (pipeline->admission_ != nullptr)
    pipeline->proxy_->set_admission(pipeline->admission_);
  if (interceptor_ != nullptr) pipeline->proxy_->set_interceptor(interceptor_);
  return pipeline;
}

}  // namespace mfhttp
