#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_*.json documents.

Compares a freshly produced bench document against the checked-in baseline
(bench/baselines/) row by row and fails with a per-metric report when the
candidate regresses. Three classes of metric, because the two documents are
produced on different machines:

  exact       -- pure functions of (config, seed): determinism booleans,
                 routing fingerprints, event/request counts. Any difference
                 is a correctness bug, not a perf regression; tolerance 0.
  ratio       -- deterministic-ish quality ratios (cache hit ratio, shed
                 rate, speedup): compared within an absolute band wide
                 enough for the shared-ghost-list wobble at N>1
                 (http/frontdoor.h, determinism contract) but tight enough
                 to catch a broken admission or cache path.
  wall        -- throughput and latency measured in wall time (sessions/sec,
                 p99): compared *relatively*, candidate against baseline,
                 with a loose configurable tolerance (default -15% on
                 throughput floors, +20% on latency ceilings) because the
                 baseline was recorded on whatever machine regenerated it.

Rows are matched by identity keys (e.g. sessions+shards for the front-door
matrix, workers for the scale matrix); a baseline row with no candidate
partner -- or vice versa -- fails the gate: silently dropping a sweep point
is how regressions hide.

Usage:
  tools/bench_gate.py --baseline bench/baselines/BENCH_frontdoor.json \
      --candidate BENCH_frontdoor.json \
      [--throughput-tolerance 0.15] [--latency-tolerance 0.20] \
      [--ratio-tolerance 0.08] [--skip-wall]

Exit status: 0 pass, 1 regression (or malformed/missing rows), 2 bad usage.
`--skip-wall` is for single-core or heavily shared runners where wall
metrics are noise; the exact and ratio classes still gate.
"""

import argparse
import json
import sys

# Per-bench schema: identity keys name a row; each gated metric is
# (class, direction). Direction "floor" fails when the candidate is too far
# BELOW baseline (throughput-like), "ceiling" when too far ABOVE
# (latency/shed-like), "both" on any drift past tolerance.
SCHEMAS = {
    "frontdoor_matrix": {
        "keys": ["sessions", "shards"],
        "top_exact": ["byte_identical_at_one_shard", "routing_stable"],
        "metrics": {
            "requests": ("exact", "both"),
            "routing_fingerprint": ("exact", "both"),
            "byte_identical": ("exact", "both"),
            "routing_stable": ("exact", "both"),
            "cache_hit_ratio": ("ratio", "floor"),
            "shed_rate": ("ratio", "ceiling"),
            "sessions_per_sec": ("wall", "floor"),
            "p99_touch_to_policy_us": ("wall", "ceiling"),
        },
    },
    "chaos_matrix": {
        # Arms of one (plan, shards) cell share a timeline, so events and
        # request totals are exact even mid-chaos (every touch resolves to
        # served or shed, never lost). Goodput retained and shed rate are
        # timing-dependent -- detection lands a few watchdog periods after
        # the fault -- so they gate as ratios; detection latency and the
        # P99 tail are wall metrics on the machine that ran the arm.
        "keys": ["plan", "shards", "arm"],
        "top_exact": ["byte_identical_with_supervision",
                      "supervised_never_worse"],
        "metrics": {
            "events": ("exact", "both"),
            "requests": ("exact", "both"),
            "goodput_retained": ("ratio", "floor"),
            "shed_rate": ("ratio", "ceiling"),
            "p99_touch_to_policy_us": ("wall", "ceiling"),
            "time_to_detect_ms": ("wall", "ceiling"),
        },
    },
    "loopback_matrix": {
        # Request counts are exact (same seeded script every run), but the
        # faulty arms' completion/error split is timing-dependent on the
        # real wire -- which byte-stream coordinates get exercised depends
        # on how the kernel chunks reads -- so rates gate as ratios.
        # Throughput and the P99 fetch tail are wall metrics on whatever
        # machine ran the arm (--skip-wall on shared runners).
        "keys": ["transport", "wire"],
        "top_exact": ["parity_clean", "all_taxonomy_accounted"],
        "metrics": {
            "requests": ("exact", "both"),
            "taxonomy_accounted": ("exact", "both"),
            "completed_rate": ("ratio", "floor"),
            "error_rate": ("ratio", "ceiling"),
            "shed_rate": ("ratio", "ceiling"),
            "requests_per_sec": ("wall", "floor"),
            "p99_fetch_us": ("wall", "ceiling"),
        },
    },
    "scale_matrix": {
        "keys": ["workers"],
        "top_exact": ["deterministic_across_workers"],
        "metrics": {
            "deterministic": ("exact", "both"),
            "speedup": ("wall", "floor"),
            "p99_touch_to_policy_ms": ("wall", "ceiling"),
        },
    },
    "micro_matrix": {
        # One row per hot-path stage (bench/micro_matrix.cc). Fingerprints
        # are pure functions of the seed -- the batch/arena rows must match
        # their scalar/AoS twins bit-for-bit, and that parity plus the
        # zero-alloc header gate are asserted in-binary too. ns_per_op and
        # the same-run speedup ratios are wall metrics: machine-dependent,
        # loose-toleranced, skippable on noisy runners (the in-binary
        # --assert-speedup floor still gates there).
        "keys": ["stage"],
        "top_exact": ["all_parity_ok", "zero_alloc_lookups"],
        "metrics": {
            "ops": ("exact", "both"),
            "fingerprint": ("exact", "both"),
            "parity_ok": ("exact", "both"),
            "allocs_per_op": ("exact", "both"),
            "speedup": ("wall", "floor"),
            "ns_per_op": ("wall", "ceiling"),
        },
    },
    "scenario_matrix": {
        # One row per ScenarioSpec cell (device class x network profile x
        # workload, plus the two paper-default witness rows). Every column
        # except wall_ms is simulated time or a pure function of the spec,
        # so they gate exact: the fingerprint folds every per-session
        # deterministic quantity and catches sub-ulp drift the aggregate
        # columns would round away.
        "keys": ["scenario", "device", "network", "workload"],
        "top_exact": ["paper_default_identical",
                      "deterministic_across_workers"],
        "metrics": {
            "sessions": ("exact", "both"),
            "fingerprint": ("exact", "both"),
            "viewport_p99_ms": ("exact", "both"),
            "goodput_bytes_per_s": ("exact", "both"),
            "qoe": ("ratio", "floor"),
            "cache_hit_ratio": ("ratio", "floor"),
            "shed_rate": ("ratio", "ceiling"),
            "wall_ms": ("wall", "ceiling"),
        },
    },
}


def fail(msg):
    print(f"bench_gate: FAIL: {msg}", file=sys.stderr)


def row_key(row, keys):
    return tuple(row.get(k) for k in keys)


def check_metric(name, base, cand, klass, direction, args, where):
    """Returns a failure string or None."""
    if klass == "exact":
        if base != cand:
            return f"{where}: {name} changed {base!r} -> {cand!r} (exact metric)"
        return None
    if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
        return f"{where}: {name} is not numeric ({base!r} vs {cand!r})"
    if klass == "ratio":
        drift = cand - base
        tol = args.ratio_tolerance
        if direction in ("floor", "both") and drift < -tol:
            return (f"{where}: {name} fell {base:.4f} -> {cand:.4f} "
                    f"(> {tol:.2f} absolute)")
        if direction in ("ceiling", "both") and drift > tol:
            return (f"{where}: {name} rose {base:.4f} -> {cand:.4f} "
                    f"(> {tol:.2f} absolute)")
        return None
    # wall
    if args.skip_wall:
        return None
    if direction == "floor":
        tol = args.throughput_tolerance
        if base > 0 and cand < base * (1.0 - tol):
            return (f"{where}: {name} dropped {base:.1f} -> {cand:.1f} "
                    f"(more than {tol:.0%} below baseline)")
    else:
        tol = args.latency_tolerance
        if base > 0 and cand > base * (1.0 + tol):
            return (f"{where}: {name} grew {base:.1f} -> {cand:.1f} "
                    f"(more than {tol:.0%} above baseline)")
    return None


def gate(baseline, candidate, args):
    bench = baseline.get("bench")
    if bench not in SCHEMAS:
        fail(f"unknown bench kind {bench!r} in baseline")
        return 1
    if candidate.get("bench") != bench:
        fail(f"bench kind mismatch: baseline {bench!r} vs "
             f"candidate {candidate.get('bench')!r}")
        return 1
    schema = SCHEMAS[bench]
    failures = []

    for field in schema["top_exact"]:
        if baseline.get(field) != candidate.get(field):
            failures.append(
                f"{bench}: top-level {field} changed "
                f"{baseline.get(field)!r} -> {candidate.get(field)!r}")
        elif candidate.get(field) is False:
            failures.append(f"{bench}: top-level {field} is false")

    base_rows = {row_key(r, schema["keys"]): r for r in baseline.get("rows", [])}
    cand_rows = {row_key(r, schema["keys"]): r for r in candidate.get("rows", [])}
    for key in sorted(base_rows.keys() - cand_rows.keys()):
        failures.append(f"{bench}{list(key)}: row missing from candidate")
    for key in sorted(cand_rows.keys() - base_rows.keys()):
        failures.append(f"{bench}{list(key)}: row missing from baseline "
                        f"(regenerate baselines for new sweep points)")

    checked = 0
    for key in sorted(base_rows.keys() & cand_rows.keys()):
        where = f"{bench}{list(key)}"
        base, cand = base_rows[key], cand_rows[key]
        for name, (klass, direction) in schema["metrics"].items():
            if name not in base and name not in cand:
                continue
            if name not in base or name not in cand:
                failures.append(f"{where}: {name} present in only one document")
                continue
            err = check_metric(name, base[name], cand[name], klass, direction,
                               args, where)
            if err:
                failures.append(err)
            checked += 1

    for f in failures:
        fail(f)
    if failures:
        return 1
    wall_note = " (wall metrics skipped)" if args.skip_wall else ""
    print(f"bench_gate: PASS: {bench}: {len(base_rows)} rows, "
          f"{checked} metrics within tolerance{wall_note}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json to gate against")
    parser.add_argument("--candidate", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--throughput-tolerance", type=float, default=0.15,
                        help="relative drop allowed on throughput-like wall "
                             "metrics (default 0.15 = 15%%)")
    parser.add_argument("--latency-tolerance", type=float, default=0.20,
                        help="relative growth allowed on latency-like wall "
                             "metrics (default 0.20 = 20%%)")
    parser.add_argument("--ratio-tolerance", type=float, default=0.08,
                        help="absolute drift allowed on quality ratios "
                             "(default 0.08)")
    parser.add_argument("--skip-wall", action="store_true",
                        help="ignore wall-clock metrics (noisy runners)")
    args = parser.parse_args()

    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read {path}: {e}")
            return 1
    return gate(docs[0], docs[1], args)


if __name__ == "__main__":
    sys.exit(main())
