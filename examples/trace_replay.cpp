// Record/replay tooling: synthesize a browsing gesture trace, persist it as
// CSV (the format volunteers' touches would be captured in, §6.2.1), reload
// it, and replay it through the middleware to print the per-gesture
// download policies — the workflow for analyzing captured user studies
// offline.
//
// Build & run:  ./build/examples/trace_replay [trace.csv]
#include <cstdio>
#include <string>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "trace/trace_io.h"
#include "web/corpus.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  const std::string path = argc > 1 ? argv[1] : "/tmp/mfhttp_session_trace.csv";

  // 1. Record: a short browsing session of three swipes.
  {
    BrowsingGestureSource source(device, {}, Rng(7));
    TouchTrace all;
    TimeMs now = 500;
    for (int i = 0; i < 3; ++i) {
      TouchTrace t = source.next_swipe(now);
      now = t.back().time_ms + 800;
      all.insert(all.end(), t.begin(), t.end());
    }
    if (!save_touch_trace(path, all)) {
      std::printf("cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("recorded %zu touch events -> %s\n", all.size(), path.c_str());
  }

  // 2. Replay against a sohu-like page.
  auto trace = load_touch_trace(path);
  if (!trace) {
    std::printf("cannot parse %s\n", path.c_str());
    return 1;
  }
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng site_rng = rng.fork();
    if (spec.name == "sohu") page = generate_page(spec, device, site_rng);
  }

  Middleware::Params mp;
  mp.tracker.scroll = ScrollConfig(device);
  mp.tracker.coverage_step_ms = 4.0;
  mp.tracker.content_bounds = page.bounds();
  mp.flow.weights = {1.0, 0.5};
  mp.initial_viewport = {0, 0, device.screen_w_px, device.screen_h_px};
  Middleware middleware(mp, page.images, BandwidthTrace::constant(2e6), nullptr);

  int gesture_no = 0;
  middleware.set_policy_callback([&](const ScrollAnalysis& analysis,
                                     const DownloadPolicy& policy) {
    ++gesture_no;
    std::size_t fetch = 0;
    for (const DownloadDecision& d : policy.decisions)
      if (d.download()) ++fetch;
    std::printf(
        "gesture %d: %s, scroll %.0f px over %.0f ms -> %zu involved images,"
        " %zu to download (%.1f KB)\n",
        gesture_no, to_string(analysis.prediction.gesture.kind),
        analysis.prediction.displacement.norm(), analysis.prediction.duration_ms,
        policy.decisions.size(), fetch,
        static_cast<double>(policy.total_bytes) / 1000.0);
  });

  TouchEventMonitor monitor(device, [&](const Gesture& g) { middleware.on_gesture(g); });
  monitor.feed(*trace);
  std::printf("replayed %zu events, %d scrolling gestures\n", trace->size(),
              gesture_no);
  return 0;
}
