// 360°-video case study (§5.2): a drag-heavy viewing session over a 4x4-tiled
// DASH stream, scheduled three ways — MF-HTTP (viewport tiles high, rest at
// floor), greedy whole-frame DASH, and a fixed-1080s baseline — then one
// MF-HTTP session replayed through the simulated HTTP stack.
//
// Build & run:  ./build/examples/video_360
#include <cstdio>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "video/session.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();

  VideoAsset::Params params;
  params.name = "demo360";
  params.duration_s = 60;
  VideoAsset video(params);
  std::printf("video: %s — %dx%d tiles, %d s, ladder:", params.name.c_str(),
              video.grid().cols(), video.grid().rows(), video.segment_count());
  for (int q = 0; q < video.quality_count(); ++q)
    std::printf(" %s(%.0f KB/s)", video.representation(q).name.c_str(),
                video.representation(q).whole_frame_rate / 1000);
  std::printf("\n");

  // One synthetic viewer: drags dominate, occasional flings (§5.2.2).
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(11));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  int drags = 0, flings = 0;
  while (now < 60'000) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t) {
      if (auto g = recognizer.on_touch_event(ev)) {
        trace.add_gesture(*g);
        (g->kind == GestureKind::kFling ? flings : drags)++;
      }
    }
  }
  std::printf("viewer session: %d drags, %d flings, %zu orientation keyframes\n\n",
              drags, flings, trace.keyframe_count());

  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;
  FixedRateScheduler fixed(3);

  for (double kbps : {250.0, 750.0}) {
    auto bandwidth = BandwidthTrace::constant(kb_per_sec(kbps));
    std::printf("--- available bandwidth: %.0f KB/s ---\n", kbps);
    std::printf("%-14s %10s %10s %12s %10s\n", "scheduler", "mean res", "NA secs",
                "MB fetched", "stalls");
    for (const TileScheduler* sched :
         {static_cast<const TileScheduler*>(&mf),
          static_cast<const TileScheduler*>(&greedy),
          static_cast<const TileScheduler*>(&fixed)}) {
      auto result =
          run_streaming_session(video, trace, bandwidth, *sched, StreamingSessionParams{});
      int na = 0;
      for (const SegmentRecord& s : result.segments)
        if (s.viewport_quality < 0) ++na;
      std::printf("%-14s %9.0fp %10d %12.1f %10d\n", result.scheduler.c_str(),
                  result.mean_resolution(video), na,
                  static_cast<double>(result.total_bytes) / 1e6, na);
    }
    std::printf("\n");
  }

  // Replay the MF-HTTP plan through the origin/proxy/link HTTP stack.
  auto bandwidth = BandwidthTrace::constant(kb_per_sec(750));
  auto session =
      run_streaming_session(video, trace, bandwidth, mf, StreamingSessionParams{});
  auto completion = replay_session_over_http(video, session, bandwidth);
  TimeMs last = 0;
  int fetched = 0;
  for (TimeMs t : completion)
    if (t >= 0) {
      last = std::max(last, t);
      ++fetched;
    }
  std::printf("HTTP replay at 750 KB/s: %d/%zu segments fetched, last byte at"
              " %.1f s (%.1f MB total)\n",
              fetched, completion.size(), static_cast<double>(last) / 1000.0,
              static_cast<double>(session.total_bytes) / 1e6);
  return 0;
}
