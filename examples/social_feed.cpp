// Social-feed case study (the paper's Fig. 3 motivation): an endless
// timeline of posts with autoplaying video clips. MF-HTTP predicts where
// each fling will settle and preloads exactly those clips in full, hands
// thumbnails to clips the user merely flings past, and leaves the rest
// untouched — versus a feed app that simply downloads everything.
//
// Build & run:  ./build/examples/social_feed
#include <cstdio>

#include "feed/feed_experiment.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  FeedSpec spec;
  spec.post_count = 120;
  Rng rng(21);
  Feed feed = generate_feed(spec, device, rng);
  std::printf("feed: %zu posts (%zu video clips), %.0f px tall, %.1f MB if"
              " fully downloaded\n\n",
              feed.posts.size(), feed.clip_count(), feed.height,
              static_cast<double>(feed.total_full_bytes()) / 1e6);

  FeedSessionConfig cfg;
  cfg.device = device;
  cfg.seed = 5;

  cfg.enable_mfhttp = false;
  FeedSessionResult base = run_feed_session(feed, cfg);
  cfg.enable_mfhttp = true;
  FeedSessionResult mf = run_feed_session(feed, cfg);

  std::printf("%-38s %12s %12s\n", "", "baseline", "mf-http");
  std::printf("%-38s %9zu/%zu %9zu/%zu\n", "clips instantly playable on settle",
              base.clips_instant, base.clips_settled, mf.clips_instant,
              mf.clips_settled);
  std::printf("%-38s %11.0f%% %11.0f%%\n", "instant playback rate",
              100.0 * base.instant_play_rate, 100.0 * mf.instant_play_rate);
  std::printf("%-38s %12.1f %12.1f\n", "MB over the radio",
              static_cast<double>(base.bytes_downloaded) / 1e6,
              static_cast<double>(mf.bytes_downloaded) / 1e6);
  std::printf("%-38s %12zu %12zu\n", "media never transferred",
              base.media_avoided, mf.media_avoided);
  std::printf("%-38s %12s %12zu\n", "clips served as thumbnails", "-",
              mf.thumbs_substituted);
  return 0;
}
