// Social-feed case study (the paper's Fig. 3 motivation): an endless
// timeline of posts with autoplaying video clips. MF-HTTP predicts where
// each fling will settle and preloads exactly those clips in full, hands
// thumbnails to clips the user merely flings past, and leaves the rest
// untouched — versus a feed app that simply downloads everything.
//
// The feed shape, device, link, and fling schedule all come from a
// scenario::ScenarioSpec wired through scenario::feed_config — with a
// dynamic spec (workload.append_posts_per_fling > 0) the timeline grows
// mid-scroll and the middleware's incremental knapsack absorbs the
// appended posts without re-planning the prefix.
//
// Build & run:  ./build/examples/social_feed [--scenario spec.json]
#include <cstdio>

#include "feed/feed_experiment.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "scenario/wiring.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  scenario::ScenarioSpec spec = standard_options.has_scenario()
                                    ? standard_options.scenario()
                                    : scenario::ScenarioSpec::paper_default();
  if (!standard_options.has_scenario()) {
    // Paper default describes the browsing workload; this example always
    // runs the feed — with a longer timeline than the matrix cells use.
    spec.workload.kind = scenario::WorkloadKind::kSocialFeed;
    spec.workload.feed_posts = 120;
  }

  const DeviceProfile device = spec.device.profile;
  Rng rng(21);
  Feed feed = generate_feed(scenario::feed_spec(spec), device, rng);
  std::printf("scenario: %s (%s x %s)\n", spec.name.c_str(),
              spec.device.name.c_str(), spec.network.name.c_str());
  std::printf("feed: %zu posts (%zu video clips), %.0f px tall, %.1f MB if"
              " fully downloaded\n\n",
              feed.posts.size(), feed.clip_count(), feed.height,
              static_cast<double>(feed.total_full_bytes()) / 1e6);

  const std::optional<fault::FaultPlan> plan = spec.compiled_fault_plan();
  FeedSessionConfig cfg =
      scenario::feed_config(spec, /*repeat=*/0, plan ? &*plan : nullptr);

  cfg.enable_mfhttp = false;
  FeedSessionResult base = run_feed_session(feed, cfg);
  cfg.enable_mfhttp = true;
  FeedSessionResult mf = run_feed_session(feed, cfg);

  std::printf("%-38s %12s %12s\n", "", "baseline", "mf-http");
  std::printf("%-38s %9zu/%zu %9zu/%zu\n", "clips instantly playable on settle",
              base.clips_instant, base.clips_settled, mf.clips_instant,
              mf.clips_settled);
  std::printf("%-38s %11.0f%% %11.0f%%\n", "instant playback rate",
              100.0 * base.instant_play_rate, 100.0 * mf.instant_play_rate);
  std::printf("%-38s %12.1f %12.1f\n", "MB over the radio",
              static_cast<double>(base.bytes_downloaded) / 1e6,
              static_cast<double>(mf.bytes_downloaded) / 1e6);
  std::printf("%-38s %12zu %12zu\n", "media never transferred",
              base.media_avoided, mf.media_avoided);
  std::printf("%-38s %12s %12zu\n", "clips served as thumbnails", "-",
              mf.thumbs_substituted);
  return 0;
}
