// Web-browsing case study (§5.1): load an Alexa-like page through the full
// simulated stack — browser, MITM proxy, middleware, client link — once as a
// vanilla browser and once with MF-HTTP's block-list flow controller, and
// compare what the user actually experiences.
//
// The whole run is described by a scenario::ScenarioSpec (the paper default
// unless --scenario says otherwise) and wired through
// scenario::browsing_config — the same path bench/scenario_matrix sweeps.
// Swapping the spec swaps the device physics, the link, and any fault/
// cache/overload sections in one move:
//
//   ./build/examples/web_browsing sohu
//   ./build/examples/web_browsing sohu --scenario bench/scenarios/cellular_handover.json
#include <cstdio>
#include <cstring>

#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "scenario/wiring.h"
#include "web/corpus.h"
#include "web/experiment.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const scenario::ScenarioSpec spec =
      standard_options.has_scenario() ? standard_options.scenario()
                                      : scenario::ScenarioSpec::paper_default();
  const char* site = argc > 1 ? argv[1] : "sohu";
  const DeviceProfile device = spec.device.profile;

  Rng rng(42);
  WebPage page;
  bool found = false;
  for (const SiteSpec& site_spec : alexa25_specs()) {
    Rng site_rng = rng.fork();
    if (site_spec.name == site) {
      page = generate_page(site_spec, device, site_rng);
      found = true;
      break;
    }
  }
  if (!found) {
    std::printf("unknown site '%s'; pick one of:", site);
    for (const SiteSpec& site_spec : alexa25_specs())
      std::printf(" %s", site_spec.name.c_str());
    std::printf("\n");
    return 1;
  }

  std::printf("scenario: %s (%s x %s)\n", spec.name.c_str(),
              spec.device.name.c_str(), spec.network.name.c_str());
  std::printf("site: %s — %.0f x %.0f px page, %zu images (%.1f MB), viewport"
              " covers %.1f%%\n\n",
              page.site.c_str(), page.width, page.height, page.images.size(),
              static_cast<double>(page.total_image_bytes()) / 1e6,
              100.0 * page.viewport_ratio(device.screen_h_px));

  // One repeat of the spec's browsing workload, plus the Fig. 8 timeline
  // sampling the matrix runner leaves off.
  const std::optional<fault::FaultPlan> plan = spec.compiled_fault_plan();
  BrowsingSessionConfig cfg =
      scenario::browsing_config(spec, page, /*repeat=*/0,
                                plan ? &*plan : nullptr);
  cfg.fill_sample_ms = 250;

  cfg.enable_mfhttp = false;
  BrowsingSessionResult base = run_browsing_session(page, cfg);
  cfg.enable_mfhttp = spec.workload.kind != scenario::WorkloadKind::kClientOnly;
  BrowsingSessionResult mf = run_browsing_session(page, cfg);

  std::printf("%-34s %14s %14s\n", "", "baseline", "mf-http");
  std::printf("%-34s %14lld %14lld\n", "initial viewport load time (ms)",
              static_cast<long long>(base.initial_viewport_load_ms),
              static_cast<long long>(mf.initial_viewport_load_ms));
  std::printf("%-34s %14lld %14lld\n", "final viewport load time (ms)",
              static_cast<long long>(base.final_viewport_load_ms),
              static_cast<long long>(mf.final_viewport_load_ms));
  std::printf("%-34s %14.2f %14.2f\n", "bytes over the client link (MB)",
              static_cast<double>(base.bytes_downloaded) / 1e6,
              static_cast<double>(mf.bytes_downloaded) / 1e6);
  std::printf("%-34s %11zu/%zu %11zu/%zu\n", "images never transferred",
              base.images_avoided, base.images_total, mf.images_avoided,
              mf.images_total);

  if (base.initial_viewport_load_ms > 0 && mf.initial_viewport_load_ms > 0) {
    std::printf("\nviewport load time reduction: %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(mf.initial_viewport_load_ms) /
                                   static_cast<double>(base.initial_viewport_load_ms)));
  }

  std::printf("\nviewport fill over the first seconds (the Fig. 8 effect):\n");
  std::printf("%-10s %12s %12s\n", "t (ms)", "baseline", "mf-http");
  for (std::size_t i = 0; i < base.fill_timeline.size() && i < 16; ++i) {
    std::printf("%-10lld %11.1f%% %11.1f%%\n",
                static_cast<long long>(base.fill_timeline[i].first),
                100.0 * base.fill_timeline[i].second,
                100.0 * mf.fill_timeline[i].second);
  }
  return 0;
}
