// MITM proxy plumbing (§4.3): the HTTP substrate on its own.
//
// Part 1 exercises the wire-level HTTP/1.1 codec: a pipelined byte stream is
// parsed incrementally (the way bytes arrive on a socket) and re-serialized.
// Part 2 runs the simulated proxy with a custom Interceptor that blocks an
// ad host, rewrites a hi-res image to its low-res version, and defers a
// below-the-fold image until "the user scrolls".
//
// Build & run:  ./build/examples/mitm_proxy
#include <cstdio>
#include <vector>

#include "http/fetch_pipeline.h"
#include "http/parser.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"

using namespace mfhttp;

namespace {

// A policy an MF-HTTP user could write: the Interceptor interface is the
// extension point the paper describes ("users of MF-HTTP can design and
// implement their own optimization logics", §4.3).
class DemoInterceptor : public Interceptor {
 public:
  InterceptDecision on_request(const HttpRequest& request) override {
    auto url = request.url();
    if (!url) return InterceptDecision::allow();
    if (url->host == "ads.example") return InterceptDecision::block();
    if (url->path == "/img/hero_4k.jpg")
      return InterceptDecision::rewrite("http://site.example/img/hero_720.jpg");
    if (url->path == "/img/below_fold.jpg") return InterceptDecision::defer();
    return InterceptDecision::allow();
  }
};

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  // --- Part 1: the wire codec -----------------------------------------------
  std::printf("--- HTTP/1.1 codec ---\n");
  HttpRequest req = HttpRequest::get("http://site.example/img/hero_4k.jpg");
  req.headers.add("Accept", "image/*");
  std::string wire = req.serialize() +
                     HttpRequest::get("http://site.example/page.html").serialize();
  std::printf("serialized %zu bytes of pipelined requests\n", wire.size());

  HttpParser parser(HttpParser::Mode::kRequest);
  // Feed in awkward 7-byte slices, as a socket might deliver them.
  for (std::size_t i = 0; i < wire.size(); i += 7)
    parser.feed(std::string_view(wire).substr(i, 7));
  while (parser.has_message()) {
    HttpRequest parsed = parser.take_request();
    std::printf("parsed: %s %s (Host: %s)\n", parsed.method.c_str(),
                parsed.target.c_str(), parsed.headers.get("Host")->c_str());
  }

  HttpParser resp_parser(HttpParser::Mode::kResponse);
  resp_parser.feed(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "b\r\nhello chunk\r\n0\r\n\r\n");
  std::printf("parsed chunked response body: \"%s\"\n\n",
              resp_parser.take_response().body.c_str());

  // --- Part 2: the simulated proxy ------------------------------------------
  std::printf("--- MITM proxy with a custom interceptor ---\n");
  Simulator sim;
  Link::Params client_params;
  client_params.bandwidth = BandwidthTrace::constant(500e3);
  client_params.latency_ms = 8;
  Link server_link(sim, Link::Params{});

  ObjectStore store;
  store.put("/img/hero_4k.jpg", 900'000, "image/jpeg");
  store.put("/img/hero_720.jpg", 120'000, "image/jpeg");
  store.put("/img/below_fold.jpg", 80'000, "image/jpeg");
  store.put("/banner.gif", 40'000, "image/gif");

  // The canonical stack assembly: one builder call replaces the hand-wired
  // decorator chain (and picks up any ambient --fault-plan automatically).
  // --transport socket swaps the simulated origin for the real epoll
  // loopback server (DESIGN.md §15) with identical timestamps on output.
  DemoInterceptor interceptor;
  TransportConfig transport_config;
  transport_config.kind = standard_options.transport();
  auto pipeline = FetchPipelineBuilder(sim)
                      .with_origin(&store, &server_link)
                      .with_transport(transport_config)
                      .client_link(client_params)
                      .with_faults()
                      .interceptor(&interceptor)
                      .build();
  MitmProxy& proxy = pipeline->proxy();

  auto fetch = [&](const char* url) {
    FetchCallbacks cbs;
    std::string u = url;
    cbs.on_complete = [u, &sim](const FetchResult& r) {
      std::printf("[%6lld ms] %-44s -> %d%s, %lld bytes\n",
                  static_cast<long long>(sim.now()), u.c_str(), r.status,
                  r.blocked ? " (blocked)" : "", static_cast<long long>(r.body_size));
    };
    proxy.fetch(HttpRequest::get(u), std::move(cbs));
  };

  fetch("http://site.example/img/hero_4k.jpg");   // rewritten to 720p
  fetch("http://ads.example/banner.gif");         // blocked
  fetch("http://site.example/img/below_fold.jpg");  // deferred...

  // ...until the user "scrolls" at t = 2s.
  sim.schedule_at(2000, [&] {
    std::printf("[%6lld ms] user scrolled; releasing below-fold image\n",
                static_cast<long long>(sim.now()));
    proxy.release("http://site.example/img/below_fold.jpg");
  });

  sim.run();

  const MitmProxy::Stats& stats = proxy.stats();
  std::printf("\nproxy stats: %zu allowed, %zu blocked, %zu deferred,"
              " %zu released, %zu rewritten, %lld bytes to client\n",
              stats.allowed, stats.blocked, stats.deferred, stats.released,
              stats.rewritten, static_cast<long long>(stats.bytes_to_client));
  return 0;
}
