// Quickstart: the MF-HTTP pipeline in one page.
//
// 1. Raw touch events  -> TouchEventMonitor  -> a recognized fling.
// 2. The fling         -> ScrollTracker      -> the whole predetermined
//                                               viewport trajectory.
// 3. Page objects      -> coverage analysis  -> who enters the viewport, when,
//                                               and how much of it they cover.
// 4. Bandwidth + QoE   -> FlowController     -> the optimal download policy.
//
// Device physics and the bandwidth trace come from a scenario::ScenarioSpec:
// the paper default (Nexus 6 on the campus WLAN) unless --scenario points at
// another spec — try bench/scenarios/cellular_handover.json to watch the
// same fling optimized for a 3G link.
//
// Build & run:  ./build/examples/quickstart [--scenario spec.json]
#include <cstdio>

#include "core/flow_controller.h"
#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "scenario/scenario_spec.h"

using namespace mfhttp;

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const scenario::ScenarioSpec spec = standard_options.has_scenario()
                                          ? standard_options.scenario()
                                          : scenario::ScenarioSpec::paper_default();
  // The simulated device — paper default: a Nexus 6, the paper's test phone.
  const DeviceProfile device = spec.device.profile;
  const Rect viewport{0, 0, device.screen_w_px, device.screen_h_px};
  std::printf("scenario: %s (%s x %s)\n\n", spec.name.c_str(),
              spec.device.name.c_str(), spec.network.name.c_str());

  // A tall page with one 800x400 image every 600 px.
  std::vector<MediaObject> images;
  for (int i = 0; i < 40; ++i) {
    images.push_back(make_single_version_object(
        "img-" + std::to_string(i), Rect{100, i * 600.0, 800, 400},
        /*size=*/60'000, "http://site.example/img/" + std::to_string(i) + ".jpg"));
  }

  // --- 1. Touch events -> gesture -------------------------------------------
  Gesture fling;
  TouchEventMonitor monitor(device, [&](const Gesture& g) { fling = g; });
  SwipeSpec swipe;
  swipe.start = {700, 1900};       // finger down near the bottom of the screen
  swipe.direction = {0, -1};       // swiping up...
  swipe.speed_px_s = 9000;         // ...fast: this will be a fling
  monitor.feed(synthesize_swipe(swipe));
  std::printf("gesture: %s, release velocity (%.0f, %.0f) px/s\n",
              to_string(fling.kind), fling.release_velocity.x,
              fling.release_velocity.y);

  // --- 2. Gesture -> full scroll prediction (Eqs. 1-5) ----------------------
  // The device class calibrates the fling physics: a low-end phone's
  // heavier friction shortens the very same finger motion.
  ScrollTracker::Params tracker_params;
  tracker_params.scroll = ScrollConfig(device);
  tracker_params.scroll.fling.friction *= spec.device.fling_friction_scale;
  ScrollTracker tracker(tracker_params);
  ScrollPrediction prediction = tracker.predict(fling, viewport);
  std::printf("predicted scroll: %.0f px over %.0f ms (viewport %0.f -> %.0f)\n",
              prediction.displacement.norm(), prediction.duration_ms,
              prediction.viewport0.y, prediction.final_viewport().y);

  // --- 3. Which images does the scroll involve? -----------------------------
  ScrollAnalysis analysis = tracker.analyze(prediction, images);
  std::printf("\n%-8s %10s %12s %10s %8s\n", "image", "entry(ms)", "coverage",
              "in-final", "involved");
  for (const ObjectCoverage& cov : analysis.coverages) {
    if (!cov.involved) continue;
    std::printf("%-8zu %10.0f %11.1f%% %10s %8s\n", cov.object_index,
                cov.entry_time_ms,
                100.0 * cov.coverage_integral /
                    (viewport.area() * prediction.duration_ms),
                cov.in_final_viewport ? "yes" : "no", "yes");
  }

  // --- 4. Optimal download policy on the scenario's client hop --------------
  FlowController::Params flow_params;
  flow_params.weights = {1.0, 1.0};  // p = q = 1: balance QoE against cost
  FlowController flow(flow_params);
  BandwidthTrace bandwidth =
      spec.network.client_trace(spec.seed, /*horizon_ms=*/60'000);
  DownloadPolicy policy = flow.optimize(analysis, images, bandwidth);

  std::printf("\ndownload policy (objective %.3f, %lld bytes):\n", policy.objective,
              static_cast<long long>(policy.total_bytes));
  for (const DownloadDecision& d : policy.decisions) {
    std::printf("  img-%zu: %s  (QoE %.3f, cost %.3f)\n", d.object_index,
                d.download() ? "DOWNLOAD" : "skip", d.qoe, d.cost);
  }
  return 0;
}
