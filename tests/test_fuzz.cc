// Randomized robustness suites: the HTTP parser against generated valid
// traffic (round-trip at arbitrary split points) and against garbage; the
// byte pipe against randomized send patterns; the knapsack against randomly
// permuted capacities (validation contract); the same corpora pushed through
// a real aio socket pair into the loopback HTTP server (ISSUE 8).
#include <gtest/gtest.h>

#include <memory>

#include "http/parser.h"
#include "http/url.h"
#include "http/wire.h"
#include "net/aio/event_loop.h"
#include "net/aio/http_server.h"
#include "net/aio/syscall.h"
#include "net/aio/tcp.h"
#include "net/byte_pipe.h"
#include "util/json.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_token(Rng& rng, std::size_t max_len) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_len)));
  std::string out;
  for (std::size_t i = 0; i < len; ++i)
    out += kChars[rng.uniform_int(0, sizeof(kChars) - 2)];
  return out;
}

HttpRequest random_request(Rng& rng) {
  HttpRequest req;
  req.method = rng.chance(0.8) ? "GET" : "POST";
  req.target = "/" + random_token(rng, 30);
  req.headers.set("Host", random_token(rng, 12) + ".example");
  int extra = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < extra; ++i)
    req.headers.add("X-" + random_token(rng, 8), random_token(rng, 24));
  if (req.method == "POST") {
    std::size_t body_len = static_cast<std::size_t>(rng.uniform_int(0, 2000));
    req.body.assign(body_len, 'b');
  }
  return req;
}

HttpResponse random_response(Rng& rng) {
  static const int kCodes[] = {200, 201, 301, 400, 403, 404, 500};
  HttpResponse resp = HttpResponse::make(
      kCodes[rng.uniform_int(0, 6)], "",
      std::string(static_cast<std::size_t>(rng.uniform_int(0, 3000)), 'x'));
  int extra = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < extra; ++i)
    resp.headers.add("X-" + random_token(rng, 8), random_token(rng, 24));
  return resp;
}

TEST_P(ParserFuzz, RequestsRoundTripAtRandomSplits) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    int count = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<HttpRequest> sent;
    std::string wire;
    for (int i = 0; i < count; ++i) {
      sent.push_back(random_request(rng));
      wire += sent.back().serialize();
    }
    HttpParser parser(HttpParser::Mode::kRequest);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(1, 97));
      chunk = std::min(chunk, wire.size() - pos);
      ASSERT_TRUE(parser.feed(std::string_view(wire).substr(pos, chunk)))
          << parser.error();
      pos += chunk;
    }
    ASSERT_EQ(parser.message_count(), sent.size());
    for (const HttpRequest& expected : sent) {
      HttpRequest got = parser.take_request();
      EXPECT_EQ(got.method, expected.method);
      EXPECT_EQ(got.target, expected.target);
      EXPECT_EQ(got.body, expected.body);
      EXPECT_EQ(got.headers.get("Host"), expected.headers.get("Host"));
    }
  }
}

TEST_P(ParserFuzz, ResponsesRoundTripAtRandomSplits) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 50; ++iter) {
    HttpResponse sent = random_response(rng);
    std::string wire = sent.serialize();
    HttpParser parser(HttpParser::Mode::kResponse);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(1, 61));
      chunk = std::min(chunk, wire.size() - pos);
      ASSERT_TRUE(parser.feed(std::string_view(wire).substr(pos, chunk)));
      pos += chunk;
    }
    ASSERT_TRUE(parser.has_message());
    HttpResponse got = parser.take_response();
    EXPECT_EQ(got.status, sent.status);
    EXPECT_EQ(got.body, sent.body);
  }
}

TEST_P(ParserFuzz, GarbageNeverCrashesAndNeverFabricatesMessages) {
  Rng rng(GetParam() + 2000);
  for (int iter = 0; iter < 100; ++iter) {
    std::string garbage;
    std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, 600));
    for (std::size_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(0, 255));
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(garbage);  // must not crash; error state is fine
    parser.finish();
    // If a message was produced, the start line must genuinely have been
    // parseable — spot-check its invariants.
    while (parser.has_message()) {
      HttpRequest req = parser.take_request();
      EXPECT_FALSE(req.method.empty());
      EXPECT_FALSE(req.target.empty());
    }
  }
}

TEST_P(ParserFuzz, MutatedValidTrafficNeverCrashes) {
  Rng rng(GetParam() + 3000);
  for (int iter = 0; iter < 100; ++iter) {
    std::string wire = random_request(rng).serialize();
    // Flip a few random bytes.
    int flips = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < flips; ++i) {
      std::size_t at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[at] = static_cast<char>(rng.uniform_int(0, 255));
    }
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(wire);
    parser.finish();  // no crash is the assertion
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1u, 2u, 3u));

// ---------- BytePipe randomized ----------

class PipeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipeFuzz, ArbitrarySendPatternsPreserveContent) {
  Rng rng(GetParam());
  Simulator sim;
  Link::Params lp;
  lp.bandwidth = BandwidthTrace::constant(rng.uniform(30'000, 500'000));
  lp.quantum_ms = 5;
  lp.sharing = Link::Sharing::kFifo;
  Link link(sim, lp);
  BytePipe pipe(sim, &link);
  std::string received;
  pipe.set_on_data([&](std::string_view d) { received.append(d); });

  std::string sent;
  // Sends interleaved with simulated time passage.
  TimeMs t = 0;
  for (int i = 0; i < 30; ++i) {
    t += rng.uniform_int(0, 200);
    std::string msg = random_token(rng, 2000);
    sent += msg;
    sim.schedule_at(t, [&pipe, msg] { pipe.send(msg); });
  }
  sim.run();
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeFuzz, ::testing::Values(10u, 20u, 30u, 40u));

// ---------- wire server under fragmented load ----------

TEST(WireFuzz, ServerSurvivesSlowlyTrickledRequests) {
  Simulator sim;
  Link::Params slow;
  slow.bandwidth = BandwidthTrace::constant(2'000);  // 2 KB/s: heavy trickle
  Link c2s(sim, slow);
  Link s2c(sim, Link::Params{});
  DuplexChannel channel(sim, &c2s, &s2c);
  ObjectStore store;
  store.put_body("/x", "tiny");
  WireHttpServer server(&store, &channel.a_to_b(), &channel.b_to_a());
  WireHttpClient client(&channel.a_to_b(), &channel.b_to_a());
  int done = 0;
  for (int i = 0; i < 3; ++i)
    client.send(HttpRequest::get("http://h.example/x"),
                [&](const HttpResponse& r) {
                  EXPECT_EQ(r.body, "tiny");
                  ++done;
                });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(server.requests_served(), 3u);
}

// ---------- malformed-URL corpus ----------

TEST(UrlFuzz, MalformedCorpusNeverCrashesAndReturnsNullopt) {
  // Hand-picked pathological inputs: every one must come back nullopt (or a
  // well-formed Url for the borderline cases) without crashing under ASan.
  const char* corpus[] = {
      "",
      ":",
      "://",
      "http://",
      "http:///path-no-host",
      "://missing.scheme/x",
      "http//missing.colon/x",
      "http://host:notaport/x",
      "http://host:999999999999999999/x",
      "http://host:-80/x",
      "ht!tp://bad.scheme/x",
      "http://exa mple.com/space",
      "http://host/%zz",
      "http://[::1",
      "http://host?query-no-path",
      "http://host:80:80/x",
      "\x01\x02\x03garbage",
      "http://\xff\xfe/x",
  };
  for (const char* input : corpus) {
    auto url = parse_url(input);
    if (url) {
      // Borderline inputs that do parse must at least have a host.
      EXPECT_FALSE(url->host.empty()) << "input: " << input;
    }
  }
  // Known-bad shapes that must definitely be rejected.
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("http://").has_value());
  EXPECT_FALSE(parse_url("http://host:notaport/x").has_value());
}

class UrlFuzzSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UrlFuzzSeeded, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    std::string input;
    for (std::size_t i = 0; i < len; ++i)
      input += static_cast<char>(rng.uniform_int(1, 255));
    auto url = parse_url(input);  // must not crash or hang
    if (url) {
      EXPECT_FALSE(url->scheme.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrlFuzzSeeded, ::testing::Values(7u, 8u, 9u));

// ---------- truncated-HTTP corpus ----------

TEST_P(ParserFuzz, TruncatedMessagesFailCleanlyAndFabricateNothing) {
  Rng rng(GetParam() ^ 0xdead);
  for (int round = 0; round < 60; ++round) {
    HttpRequest req = random_request(rng);
    std::string wire = req.serialize();
    // Cut strictly inside the message.
    std::size_t cut = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(wire.size() - 1)));
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(std::string_view(wire).substr(0, cut));
    // A prefix alone may legitimately complete a message only if the cut
    // landed after a full body; otherwise nothing may surface yet.
    std::size_t before_finish = parser.message_count();
    parser.finish();
    if (before_finish == 0) {
      // The truncated remainder must become an error, never a message.
      EXPECT_TRUE(parser.has_error()) << "cut at " << cut << " of " << wire.size();
      EXPECT_EQ(parser.message_count(), 0u);
    }
    // Post-error input is ignored, not resurrected.
    if (parser.has_error()) {
      EXPECT_FALSE(parser.feed(wire));
      EXPECT_EQ(parser.message_count(), before_finish);
    }
  }
}

TEST(ParserFuzz2, TruncatedChunkedResponseErrorsOnFinish) {
  // Chunked body cut inside a chunk: finish() must flag the truncation.
  std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "10\r\n"
      "0123";  // chunk promises 16 bytes, stream dies after 4
  HttpParser parser(HttpParser::Mode::kResponse);
  EXPECT_TRUE(parser.feed(wire));
  EXPECT_FALSE(parser.has_message());
  parser.finish();
  EXPECT_TRUE(parser.has_error());
  EXPECT_EQ(parser.message_count(), 0u);
}

// ---------- header-cap corpus (ISSUE 8) ----------

TEST_P(ParserFuzz, OversizedHeadersTrip431NeverCrash) {
  Rng rng(GetParam() ^ 0xcafe);
  HttpParser::Limits limits;
  limits.max_header_bytes = 512;
  limits.max_header_count = 12;
  for (int round = 0; round < 60; ++round) {
    HttpRequest req = random_request(rng);
    // Randomly pile on header bytes or header count around the caps.
    if (rng.chance(0.5)) {
      req.headers.add("X-Bulk", std::string(static_cast<std::size_t>(
                                                rng.uniform_int(1, 2000)),
                                            'h'));
    } else {
      int count = static_cast<int>(rng.uniform_int(1, 30));
      for (int i = 0; i < count; ++i)
        req.headers.add("X-N" + std::to_string(i), "v");
    }
    HttpParser parser(HttpParser::Mode::kRequest, limits);
    parser.feed(req.serialize());
    parser.finish();
    if (parser.has_error()) {
      // The only errors valid traffic can produce here are cap breaches,
      // and they must be labelled as such (431, not 400).
      EXPECT_TRUE(parser.limit_violation()) << parser.error();
      EXPECT_EQ(parser.message_count(), 0u);
    } else {
      ASSERT_TRUE(parser.has_message());
      EXPECT_FALSE(parser.limit_violation());
    }
  }
}

TEST(ParserFuzz2, GarbageErrorsAreNotLimitViolations) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("\x7f\x03 not http\r\n\r\n");
  parser.finish();
  ASSERT_TRUE(parser.has_error());
  EXPECT_FALSE(parser.limit_violation());  // malformed is 400, not 431
}

// ---------- corpora through a real socket pair (ISSUE 8) ----------

// The same three corpus families — truncated, garbage, oversized-header —
// but delivered through the kernel into the aio HTTP server, interleaved
// with valid requests, so framing survives real chunking and the server's
// 400/431/deadline taxonomy engages end to end.
class SocketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SocketFuzz, CorporaThroughARealSocketPair) {
  Rng rng(GetParam() ^ 0xf00d);
  aio::EventLoop loop;
  aio::HttpServerParams params;
  params.limits.max_header_bytes = 1024;
  params.limits.max_header_count = 16;
  params.request_deadline_ms = 50;
  params.conn.idle_timeout_ms = 100;
  aio::HttpServer server(
      loop, 0, [](const HttpRequest&) {
        return HttpResponse::make(200, "OK", "ok", "text/plain");
      },
      params);

  std::size_t valid = 0, oversized = 0;
  for (int round = 0; round < 16; ++round) {
    int fd = aio::connect_loopback(server.port());
    ASSERT_GE(fd, 0);
    auto conn = std::make_unique<aio::TcpConn>(loop, fd, aio::TcpConnParams{},
                                               static_cast<std::uint64_t>(round),
                                               nullptr, /*await_connect=*/true);
    std::string received;
    bool closed = false;
    conn->set_on_data([&] {
      std::string_view chunk = conn->in().peek();
      received.append(chunk);
      conn->in().consume(chunk.size());
      conn->resume_read();
    });
    conn->set_on_closed([&](aio::TcpConn::CloseReason) { closed = true; });

    const int kind = round % 4;
    std::string wire;
    if (kind == 0) {  // valid
      wire = "GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
      ++valid;
    } else if (kind == 1) {  // truncated mid-message, then FIN
      wire = random_request(rng).serialize();
      wire.resize(static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1)));
    } else if (kind == 2) {  // garbage
      std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, 200));
      for (std::size_t i = 0; i < len; ++i)
        wire += static_cast<char>(rng.uniform_int(1, 255));
      wire += "\r\n\r\n";
    } else {  // oversized headers
      wire = "GET /x HTTP/1.1\r\nHost: h\r\nX-Big: " +
             std::string(4096, 'a') + "\r\n\r\n";
      ++oversized;
    }
    ASSERT_TRUE(conn->send(wire));
    if (kind == 1) conn->close_when_drained();  // FIN the truncated stream

    HttpParser check(HttpParser::Mode::kResponse);
    const bool got = loop.run_until(
        [&] {
          if (closed) return true;
          if (kind != 0) return false;
          HttpParser probe(HttpParser::Mode::kResponse);
          probe.feed(received);
          return probe.has_message();
        },
        loop.now_ms() + 2000);
    ASSERT_TRUE(got) << "round " << round << " wedged";
    check.feed(received);
    if (kind == 0) {
      ASSERT_TRUE(check.has_message());
      EXPECT_EQ(check.take_response().status, 200);
    } else if (kind == 3) {
      ASSERT_TRUE(check.has_message());
      EXPECT_EQ(check.take_response().status, 431);
    } else if (check.has_message()) {
      // Truncated/garbage may earn a 400 or just a close — never a 200.
      EXPECT_NE(check.take_response().status, 200) << "round " << round;
    }
  }
  EXPECT_EQ(server.stats().requests, valid);
  EXPECT_EQ(server.stats().header_violations, oversized);
  // Every connection is gone or going; nothing leaked, nothing wedged.
  loop.run_until([&] { return server.connection_count() == 0; },
                 loop.now_ms() + 2000);
  EXPECT_EQ(server.connection_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocketFuzz, ::testing::Values(11u, 12u, 13u));

// ---------- malformed-JSON corpus ----------

TEST(JsonFuzz, MalformedCorpusReturnsNulloptWithoutCrashing) {
  const char* corpus[] = {
      "",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1,2,]",
      "{\"a\" 1}",
      "\"unterminated",
      "\"bad escape \\x\"",
      "\"bad unicode \\u12g4\"",
      "1.2.3",
      "+1",
      "-",
      "1e",
      "tru",
      "truee",
      "nul",
      "{\"a\":1}garbage",
      "[1] [2]",
      "\xef\xbb\xbf{}",  // BOM is not whitespace
  };
  for (const char* input : corpus)
    EXPECT_FALSE(parse_json(input).has_value()) << "input: " << input;
}

TEST(JsonFuzz, NestingDepthIsCapped) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse_json(deep).has_value());  // over the 64-level cap
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(parse_json(ok).has_value());
}

class JsonFuzzSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzzSeeded, RandomBytesNeverCrashTheParser) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int round = 0; round < 200; ++round) {
    std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 200));
    std::string input;
    for (std::size_t i = 0; i < len; ++i)
      input += static_cast<char>(rng.uniform_int(1, 255));
    parse_json(input);  // must not crash, hang, or trip sanitizers
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzSeeded, ::testing::Values(4u, 5u, 6u));

}  // namespace
}  // namespace mfhttp
