// Tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace mfhttp {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  TimeMs fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, EventSchedulingDuringEventAtSameTime) {
  // An event scheduled at the current time from within an event runs after
  // the current one, same turn.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_after(0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  auto id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  auto id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool second_fired = false;
  Simulator::EventId second = Simulator::kInvalidEvent;
  second = sim.schedule_at(20, [&] { second_fired = true; });
  sim.schedule_at(10, [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<TimeMs> fired;
  for (TimeMs t : {10, 20, 30, 40})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 20}));
  EXPECT_EQ(sim.now(), 25);
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(25, [&] { fired = true; });
  sim.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(Simulator, CascadedEvents) {
  // Each event schedules the next; clock walks forward deterministically.
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) sim.schedule_after(7, tick);
  };
  sim.schedule_at(0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 99 * 7);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator sim;
  TimeMs last = -1;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    TimeMs t = (i * 7919) % 10'000;  // scrambled times
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
      EXPECT_EQ(sim.now(), t);
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace mfhttp
