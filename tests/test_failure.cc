// Failure-injection tests: network outages, missing objects, interrupted
// scrolls, and pathological configurations — the system must degrade, not
// wedge.
#include <gtest/gtest.h>

#include <optional>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "web/blocklist_controller.h"
#include "web/browser.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

TEST(FailureInjection, LinkOutageStallsThenRecovers) {
  Simulator sim;
  // 2 s of service, 3 s of dead air, then service again.
  std::vector<BytesPerSec> slots = {100'000, 100'000, 0, 0, 0, 100'000, 100'000};
  Link::Params lp;
  lp.bandwidth = BandwidthTrace::from_slots(slots, 1000);
  Link link(sim, lp);
  Bytes received = 0;
  TimeMs done = -1;
  link.submit(300'000, [&](Bytes chunk, bool complete) {
    received += chunk;
    if (complete) done = sim.now();
  });
  sim.run_until(4000);
  // During the outage nothing moves beyond the first 200 KB.
  EXPECT_NEAR(static_cast<double>(received), 200'000, 4'000);
  sim.run();
  EXPECT_EQ(received, 300'000);
  // Last 100 KB needs 1 s of restored service: completes around t=6 s.
  EXPECT_GT(done, 5900);
  EXPECT_LT(done, 6200);
}

TEST(FailureInjection, MissingImagesDontBlockViewportLoadAccounting) {
  // A page whose origin is missing half the images: the browser records the
  // 404s (tiny error bodies) and viewport load time still resolves.
  Simulator sim;
  Rng rng(5);
  WebPage page = generate_page(alexa25_specs()[13], kDevice, rng);  // wikipedia
  Link client_link(sim, Link::Params{});
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (std::size_t i = 0; i < page.images.size(); i += 2)  // every other image
    store.put(parse_url(page.images[i].top_version().url)->path,
              page.images[i].top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  Browser browser(sim, &proxy, page);
  browser.load();
  sim.run();
  // Every image request completed — some as 404s with small bodies.
  EXPECT_EQ(browser.images_completed(), page.images.size());
  int not_found = 0;
  for (const ResourceLoadState& s : browser.image_states())
    if (s.status == 404) ++not_found;
  EXPECT_EQ(not_found, static_cast<int>(page.images.size() / 2));
  EXPECT_GT(browser.viewport_load_time(
                {0, 0, kDevice.screen_w_px, kDevice.screen_h_px}),
            0);
}

TEST(FailureInjection, BandwidthCollapseMidSessionStillTerminates) {
  Rng rng(8);
  WebPage page = generate_page(alexa25_specs()[19], kDevice, rng);  // sohu
  BrowsingSessionConfig cfg;
  cfg.enable_mfhttp = true;
  cfg.fill_sample_ms = 0;
  cfg.client_bandwidth = 50'000;  // starved WLAN: 50 KB/s
  cfg.session_ms = 20'000;
  BrowsingSessionResult r = run_browsing_session(page, cfg);
  // 20 s x 50 KB/s = 1 MB: nowhere near enough for the viewport images plus
  // structure; the session must still return with consistent accounting.
  EXPECT_LE(r.bytes_downloaded, static_cast<Bytes>(50'000.0 * 20 * 1.1));
  EXPECT_EQ(r.initial_viewport_load_ms, -1);  // honestly incomplete
  EXPECT_GT(r.images_avoided, 0u);
}

TEST(FailureInjection, RapidGestureBurstsKeepStateConsistent) {
  // Ten flings in quick succession, each interrupting the previous
  // animation; the middleware must track through all of them.
  Rng rng(3);
  WebPage page = generate_page(alexa25_specs()[16], kDevice, rng);
  Middleware::Params mp;
  mp.tracker.scroll = ScrollConfig(kDevice);
  mp.tracker.coverage_step_ms = 8.0;
  mp.tracker.content_bounds = page.bounds();
  mp.flow.ignore_bandwidth_constraint = true;
  mp.initial_viewport = {0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  Middleware mw(mp, page.images, BandwidthTrace::constant(2e6), nullptr);
  int policies = 0;
  mw.set_policy_callback([&](const ScrollAnalysis& a, const DownloadPolicy&) {
    ++policies;
    // Viewport must always stay within the page.
    EXPECT_GE(a.prediction.viewport0.y, -1e-6);
    EXPECT_LE(a.prediction.final_viewport().bottom(), page.height + 1e-6);
  });
  TouchEventMonitor monitor(kDevice, [&](const Gesture& g) { mw.on_gesture(g); });
  TimeMs t = 100;
  for (int i = 0; i < 10; ++i) {
    SwipeSpec spec;
    spec.start = {700, 1900};
    spec.direction = {0, i % 3 == 2 ? 1.0 : -1.0};  // mostly down, some up
    spec.speed_px_s = 6000 + 1500 * i;
    spec.start_time_ms = t;
    monitor.feed(synthesize_swipe(spec));
    t += 300;  // far shorter than any fling animation
  }
  EXPECT_EQ(policies, 10);
}

TEST(FailureInjection, CancelledFetchesLeaveProxyClean) {
  Simulator sim;
  Link client_link(sim, Link::Params{});
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  store.put("/x", 500'000);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  std::vector<HttpFetcher::FetchId> ids;
  for (int i = 0; i < 20; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [](const FetchResult&) { FAIL() << "cancelled fetch completed"; };
    ids.push_back(proxy.fetch(HttpRequest::get("http://o.example/x"), std::move(cbs)));
  }
  sim.schedule_at(10, [&] {
    for (auto id : ids) EXPECT_TRUE(proxy.cancel(id));
  });
  sim.run();
  EXPECT_EQ(origin.inflight(), 0u);
}

TEST(FailureInjection, ZeroImagePageWorksEndToEnd) {
  Rng rng(2);
  WebPage page = generate_page(alexa25_specs()[0], kDevice, rng);  // google-like
  page.images.clear();
  BrowsingSessionConfig cfg;
  cfg.enable_mfhttp = true;
  cfg.fill_sample_ms = 0;
  BrowsingSessionResult r = run_browsing_session(page, cfg);
  EXPECT_GT(r.initial_viewport_load_ms, 0);  // structure alone
  EXPECT_EQ(r.images_total, 0u);
}

TEST(FailureInjection, DeferredRequestsSurviveToSessionEndWithoutLeaks) {
  Simulator sim;
  Link client_link(sim, Link::Params{});
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  store.put("/img", 1000);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);

  class DeferAll : public Interceptor {
   public:
    InterceptDecision on_request(const HttpRequest&) override {
      return InterceptDecision::defer();
    }
  } defer_all;
  proxy.set_interceptor(&defer_all);

  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult&) { ++completions; };
    proxy.fetch(HttpRequest::get("http://o.example/img"), std::move(cbs));
  }
  sim.run_until(60'000);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(proxy.deferred_urls().size(), 50u);
  // Aborting them at teardown flushes everything exactly once.
  proxy.abort_deferred("http://o.example/img");
  sim.run();
  EXPECT_EQ(completions, 50);
}

}  // namespace
}  // namespace mfhttp
