// Tests for the resilience layer: circuit breaker state machine, resilient
// fetcher (retries, timeouts, backoff, breaker wiring, header suppression),
// the proxy's deferred-queue watchdog and upstream-death propagation, the
// graceful-degradation hooks, and the ISSUE 2 acceptance scenario (sessions
// survive the lossy-cellular plan; without resilience they strand requests).
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/faulty_fetcher.h"
#include "http/circuit_breaker.h"
#include "obs/metrics.h"
#include "http/proxy.h"
#include "http/resilient_fetcher.h"
#include "http/sim_http.h"
#include "video/session.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

// ---------- CircuitBreaker ----------

TEST(CircuitBreaker, OpensAfterThresholdAndProbesAfterCooldown) {
  CircuitBreaker::Params p;
  p.failure_threshold = 3;
  p.open_ms = 1000;
  CircuitBreaker breaker(p);

  EXPECT_TRUE(breaker.allow("a", 0));
  breaker.record_failure("a", 0);
  breaker.record_failure("a", 1);
  EXPECT_EQ(breaker.state("a"), CircuitBreaker::State::kClosed);
  breaker.record_failure("a", 2);
  EXPECT_EQ(breaker.state("a"), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow("a", 500));  // cooling down

  // Past the cool-down: exactly one probe admitted.
  EXPECT_TRUE(breaker.allow("a", 1500));
  EXPECT_EQ(breaker.state("a"), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow("a", 1600));  // second probe refused
  breaker.record_success("a", 1700);
  EXPECT_EQ(breaker.state("a"), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow("a", 1800));
}

TEST(CircuitBreaker, ProbeFailureReopens) {
  CircuitBreaker::Params p;
  p.failure_threshold = 1;
  p.open_ms = 100;
  CircuitBreaker breaker(p);
  breaker.record_failure("a", 0);
  EXPECT_TRUE(breaker.allow("a", 200));  // probe
  breaker.record_failure("a", 210);
  EXPECT_EQ(breaker.state("a"), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow("a", 250));
}

TEST(CircuitBreaker, AbandonFreesProbeSlot) {
  CircuitBreaker::Params p;
  p.failure_threshold = 1;
  p.open_ms = 100;
  CircuitBreaker breaker(p);
  breaker.record_failure("a", 0);
  EXPECT_TRUE(breaker.allow("a", 200));
  EXPECT_FALSE(breaker.allow("a", 210));  // probe in flight
  breaker.abandon("a");                   // caller cancelled it
  EXPECT_TRUE(breaker.allow("a", 220));   // slot free again
}

TEST(CircuitBreaker, KeysAreIndependent) {
  CircuitBreaker::Params p;
  p.failure_threshold = 1;
  CircuitBreaker breaker(p);
  breaker.record_failure("a", 0);
  EXPECT_FALSE(breaker.allow("a", 10));
  EXPECT_TRUE(breaker.allow("b", 10));
}

TEST(CircuitBreaker, TransitionObserverSeesEveryEdge) {
  CircuitBreaker::Params p;
  p.failure_threshold = 1;
  p.open_ms = 100;
  CircuitBreaker breaker(p);
  std::vector<std::string> edges;
  breaker.set_on_transition([&](const std::string& key, CircuitBreaker::State from,
                                CircuitBreaker::State to) {
    edges.push_back(key + ":" + CircuitBreaker::state_name(from) + ">" +
                    CircuitBreaker::state_name(to));
  });
  breaker.record_failure("a", 0);
  breaker.allow("a", 200);
  breaker.record_success("a", 210);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], "a:closed>open");
  EXPECT_EQ(edges[1], "a:open>half-open");
  EXPECT_EQ(edges[2], "a:half-open>closed");
}

// ---------- ResilientFetcher over a scripted fetcher ----------

// Plays back a scripted sequence of outcomes, one per fetch() call.
class ScriptedFetcher : public HttpFetcher {
 public:
  struct Step {
    int status = 200;
    Bytes advertised = 1000;  // body size the headers claim
    Bytes delivered = 1000;   // what on_complete reports
    TimeMs delay_ms = 20;     // request to completion
    bool hang = false;        // never answer (timeout fodder)
  };

  ScriptedFetcher(Simulator& sim, std::vector<Step> script)
      : sim_(sim), script_(script.begin(), script.end()) {}

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override {
    ++fetches;
    Step step;
    if (!script_.empty()) {
      step = script_.front();
      script_.pop_front();
    }
    FetchId id = next_id_++;
    if (step.hang) {
      live_[id] = Simulator::kInvalidEvent;
      return id;
    }
    auto fire = [this, id, step, request,
                 cbs = std::move(callbacks)]() mutable {
      live_.erase(id);
      if (cbs.on_headers) cbs.on_headers({step.status, step.advertised, "", ""});
      if (cbs.on_progress && step.delivered > 0)
        cbs.on_progress(step.delivered, step.delivered, step.advertised);
      FetchResult r;
      r.url = request.target;
      r.status = step.status;
      r.body_size = step.delivered;
      r.request_ms = sim_.now() - step.delay_ms;
      r.complete_ms = sim_.now();
      cbs.on_complete(r);
    };
    live_[id] = sim_.schedule_after(step.delay_ms, std::move(fire));
    return id;
  }

  bool cancel(FetchId id) override {
    auto it = live_.find(id);
    if (it == live_.end()) return false;
    if (it->second != Simulator::kInvalidEvent) sim_.cancel(it->second);
    live_.erase(it);
    ++cancels;
    return true;
  }

  int fetches = 0;
  int cancels = 0;

 private:
  Simulator& sim_;
  std::deque<Step> script_;
  FetchId next_id_ = 1;
  std::unordered_map<FetchId, Simulator::EventId> live_;
};

ScriptedFetcher::Step ok(Bytes size = 1000) { return {200, size, size, 20, false}; }
ScriptedFetcher::Step err(int status) { return {status, 64, 64, 20, false}; }
ScriptedFetcher::Step hang() { return {0, 0, 0, 0, true}; }

struct ResilienceFixture : public ::testing::Test {
  FetchResult fetch_and_wait(ResilientFetcher& fetcher,
                             const std::string& url = "http://o.example/x") {
    std::optional<FetchResult> out;
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    fetcher.fetch(HttpRequest::get(url), std::move(cbs));
    sim.run();
    EXPECT_TRUE(out.has_value());
    return out.value_or(FetchResult{});
  }

  Simulator sim;
};

TEST_F(ResilienceFixture, RetriesUntilSuccess) {
  ScriptedFetcher inner(sim, {err(503), err(502), ok()});
  ResilientFetcher fetcher(sim, &inner);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body_size, 1000);
  EXPECT_EQ(r.request_ms, 0);  // latency spans all three attempts
  EXPECT_EQ(inner.fetches, 3);
  EXPECT_EQ(fetcher.inflight(), 0u);
}

TEST_F(ResilienceFixture, ForwardsLastFailureWhenAttemptsExhausted) {
  ScriptedFetcher inner(sim, {err(503), err(503), err(429)});
  ResilientFetcher::Params p;
  p.max_attempts = 3;
  ResilientFetcher fetcher(sim, &inner, p);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 429);  // the last attempt's status, not the first's
  EXPECT_EQ(inner.fetches, 3);
}

TEST_F(ResilienceFixture, TerminalStatusesAreNotRetried) {
  ScriptedFetcher inner(sim, {err(404), ok()});
  ResilientFetcher fetcher(sim, &inner);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(inner.fetches, 1);
}

TEST_F(ResilienceFixture, TimeoutSynthesizes504ThenRetryRecovers) {
  ScriptedFetcher inner(sim, {hang(), ok()});
  ResilientFetcher::Params p;
  p.attempt_timeout_ms = 200;
  ResilientFetcher fetcher(sim, &inner, p);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(inner.fetches, 2);
  EXPECT_EQ(inner.cancels, 1);  // the hung attempt was torn down
  EXPECT_GE(r.complete_ms, 200);
}

TEST_F(ResilienceFixture, TimeoutExhaustionYields504) {
  ScriptedFetcher inner(sim, {hang(), hang()});
  ResilientFetcher::Params p;
  p.max_attempts = 2;
  p.attempt_timeout_ms = 100;
  ResilientFetcher fetcher(sim, &inner, p);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 504);
  EXPECT_EQ(inner.fetches, 2);
}

TEST_F(ResilienceFixture, TruncatedBodyRetriedWhenEnabled) {
  // 200 with fewer bytes than the headers advertised.
  ScriptedFetcher inner(sim, {{200, 1000, 400, 20, false}, ok()});
  ResilientFetcher fetcher(sim, &inner);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body_size, 1000);
  EXPECT_EQ(inner.fetches, 2);
}

TEST_F(ResilienceFixture, TruncatedBodyForwardedWhenDisabled) {
  ScriptedFetcher inner(sim, {{200, 1000, 400, 20, false}, ok()});
  ResilientFetcher::Params p;
  p.retry_truncated = false;
  ResilientFetcher fetcher(sim, &inner, p);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.body_size, 400);
  EXPECT_EQ(inner.fetches, 1);
}

TEST_F(ResilienceFixture, RetryableHeadersSuppressedUntilFinalAttempt) {
  ScriptedFetcher inner(sim, {err(503), ok()});
  ResilientFetcher fetcher(sim, &inner);
  std::vector<int> header_statuses;
  FetchCallbacks cbs;
  cbs.on_headers = [&](const SimResponseMeta& m) {
    header_statuses.push_back(m.status);
  };
  cbs.on_complete = [](const FetchResult&) {};
  fetcher.fetch(HttpRequest::get("http://o.example/x"), std::move(cbs));
  sim.run();
  // The 503's headers never reached the caller — only the final 200's did.
  ASSERT_EQ(header_statuses.size(), 1u);
  EXPECT_EQ(header_statuses[0], 200);
}

TEST_F(ResilienceFixture, BreakerOpenFastFailsWithoutTouchingInner) {
  ScriptedFetcher inner(sim, {err(503), err(503)});
  ResilientFetcher::Params p;
  p.max_attempts = 1;  // one attempt per fetch, to count failures plainly
  p.breaker.failure_threshold = 2;
  p.breaker.open_ms = 10'000;
  ResilientFetcher fetcher(sim, &inner, p);
  fetch_and_wait(fetcher);
  fetch_and_wait(fetcher);
  EXPECT_EQ(inner.fetches, 2);

  FetchResult r = fetch_and_wait(fetcher);  // breaker now open
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(inner.fetches, 2);  // never reached the origin
}

TEST_F(ResilienceFixture, DegradedCallbackFiresOnOpenAndClose) {
  ScriptedFetcher inner(sim, {err(503), ok()});
  ResilientFetcher::Params p;
  p.max_attempts = 1;
  p.breaker.failure_threshold = 1;
  p.breaker.open_ms = 100;
  ResilientFetcher fetcher(sim, &inner, p);
  std::vector<std::pair<std::string, bool>> events;
  fetcher.set_degraded_callback([&](const std::string& host, bool open) {
    events.emplace_back(host, open);
  });
  fetch_and_wait(fetcher);  // fails, opens the breaker
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (std::pair<std::string, bool>{"o.example", true}));

  // After the cool-down the probe succeeds and the breaker fully closes.
  std::optional<FetchResult> out;
  sim.schedule_at(500, [&] {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    fetcher.fetch(HttpRequest::get("http://o.example/x"), std::move(cbs));
  });
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], (std::pair<std::string, bool>{"o.example", false}));
}

TEST_F(ResilienceFixture, CancelMidBackoffSilencesEverything) {
  ScriptedFetcher inner(sim, {err(503), ok()});
  ResilientFetcher::Params p;
  p.backoff_base_ms = 500;
  ResilientFetcher fetcher(sim, &inner, p);
  int calls = 0;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult&) { ++calls; };
  auto id = fetcher.fetch(HttpRequest::get("http://o.example/x"), std::move(cbs));
  // Let the first attempt fail, then cancel during the backoff window.
  sim.schedule_at(50, [&] { EXPECT_TRUE(fetcher.cancel(id)); });
  sim.run();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(inner.fetches, 1);
  EXPECT_EQ(fetcher.inflight(), 0u);
}

TEST_F(ResilienceFixture, BackoffDelaysGrowBetweenAttempts) {
  ScriptedFetcher inner(sim, {err(503), err(503), err(503)});
  ResilientFetcher::Params p;
  p.max_attempts = 3;
  p.backoff_base_ms = 400;
  p.backoff_jitter = 0;  // deterministic spacing for the assertion
  ResilientFetcher fetcher(sim, &inner, p);
  FetchResult r = fetch_and_wait(fetcher);
  EXPECT_EQ(r.status, 503);
  // Attempt 1 at 0, attempt 2 after 400 ms, attempt 3 after another 800 ms,
  // plus 20 ms per attempt for the scripted response.
  EXPECT_GE(r.complete_ms, 400 + 800 + 3 * 20);
}

// A probe whose fetch never answers must not wedge the breaker half-open
// forever: the per-attempt deadline synthesizes a 504, records the failure,
// and the breaker reopens — freeing the probe slot for the next cool-down.
TEST_F(ResilienceFixture, HungHalfOpenProbeFreedByAttemptDeadline) {
  ScriptedFetcher inner(sim, {err(503), hang(), ok()});
  ResilientFetcher::Params p;
  p.max_attempts = 1;
  p.attempt_timeout_ms = 200;
  p.breaker.failure_threshold = 1;
  p.breaker.open_ms = 300;
  ResilientFetcher fetcher(sim, &inner, p);

  std::vector<int> statuses;
  auto fetch_at = [&](TimeMs at) {
    sim.schedule_at(at, [&] {
      FetchCallbacks cbs;
      cbs.on_complete = [&](const FetchResult& r) { statuses.push_back(r.status); };
      fetcher.fetch(HttpRequest::get("http://o.example/x"), std::move(cbs));
    });
  };
  fetch_at(0);     // fails fast: breaker opens at ~20 ms
  fetch_at(500);   // past cool-down: the probe — and it hangs
  fetch_at(1200);  // past the reopened breaker's cool-down (~700 + 300)
  sim.run();

  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], 503);
  EXPECT_EQ(statuses[1], 504);  // deadline killed the hung probe
  EXPECT_EQ(statuses[2], 200);  // slot was free: the next probe got through
  EXPECT_EQ(inner.fetches, 3);  // the third fetch reached the origin
  EXPECT_EQ(inner.cancels, 1);  // the hung attempt was torn down
  EXPECT_EQ(fetcher.breaker().state("o.example"), CircuitBreaker::State::kClosed);
  EXPECT_EQ(fetcher.inflight(), 0u);
}

// ---------- MitmProxy: watchdog & upstream-death propagation ----------

struct WatchdogFixture : public ::testing::Test {
  void build(MitmProxy::Params params) {
    Link::Params sp;
    sp.bandwidth = BandwidthTrace::constant(1'000'000);
    server_link.emplace(sim, sp);
    Link::Params cp;
    cp.bandwidth = BandwidthTrace::constant(100'000);
    client_link.emplace(sim, cp);
    store.put("/img/a.jpg", 30'000, "image/jpeg");
    origin.emplace(sim, &store, &*server_link);
    proxy.emplace(sim, &*origin, &*client_link, params);
  }

  Simulator sim;
  ObjectStore store;
  std::optional<Link> server_link;
  std::optional<Link> client_link;
  std::optional<SimHttpOrigin> origin;
  std::optional<MitmProxy> proxy;
};

class DeferAll : public Interceptor {
 public:
  InterceptDecision on_request(const HttpRequest&) override {
    return InterceptDecision::defer();
  }
};

TEST_F(WatchdogFixture, ReleaseActionForceReleasesParkedRequest) {
  MitmProxy::Params params;
  params.defer_timeout_ms = 2000;
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run_until(1999);
  EXPECT_FALSE(out.has_value());  // still parked
  sim.run();
  ASSERT_TRUE(out.has_value());  // watchdog released it upstream
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 30'000);
  EXPECT_GE(out->complete_ms, 2000);
  EXPECT_TRUE(proxy->deferred_urls().empty());
}

TEST_F(WatchdogFixture, FailActionCompletesWithConfiguredStatus) {
  MitmProxy::Params params;
  params.defer_timeout_ms = 2000;
  params.defer_timeout_action = MitmProxy::Params::DeferTimeoutAction::kFail;
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 504);
  EXPECT_FALSE(out->blocked);  // a fault, not middleware policy
  EXPECT_EQ(out->body_size, 0);
  EXPECT_TRUE(proxy->deferred_urls().empty());
}

TEST_F(WatchdogFixture, FailActionCountsDeferTimeouts) {
  const std::uint64_t before =
      obs::metrics().counter_value("http.proxy.defer_timeouts_total");
  MitmProxy::Params params;
  params.defer_timeout_ms = 1000;
  params.defer_timeout_action = MitmProxy::Params::DeferTimeoutAction::kFail;
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  FetchCallbacks cbs;
  cbs.on_complete = [](const FetchResult&) {};
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  EXPECT_EQ(obs::metrics().counter_value("http.proxy.defer_timeouts_total"),
            before + 1);
}

TEST_F(WatchdogFixture, ReleaseAfterFailWatchdogFiredIsANoOp) {
  MitmProxy::Params params;
  params.defer_timeout_ms = 1000;
  params.defer_timeout_action = MitmProxy::Params::DeferTimeoutAction::kFail;
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  int completes = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  // The watchdog fails the request at 1000; this release loses the race.
  sim.schedule_at(1500, [&] {
    EXPECT_EQ(proxy->release("http://s.example/img/a.jpg"), 0u);
  });
  sim.run();
  EXPECT_EQ(completes, 1);  // exactly one completion, from the watchdog
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 504);
}

TEST_F(WatchdogFixture, ReleaseRacingFiredReleaseWatchdogDoesNotDoubleStart) {
  MitmProxy::Params params;
  params.defer_timeout_ms = 1000;  // kRelease: force-released upstream at 1000
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  int completes = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  // While the watchdog's forced release is mid-flight upstream, an explicit
  // release arrives: the request is no longer deferred, so it matches
  // nothing — no second upstream fetch, no second completion.
  sim.schedule_at(1200, [&] {
    EXPECT_EQ(proxy->release("http://s.example/img/a.jpg"), 0u);
  });
  sim.run();
  EXPECT_EQ(completes, 1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);  // the forced release served it normally
  EXPECT_EQ(out->body_size, 30'000);
  // The losing release matched nothing, so the released stat stays 0 — the
  // forced release is counted under defer_timeouts_total instead.
  EXPECT_EQ(proxy->stats().released, 0u);
}

TEST_F(WatchdogFixture, ExplicitReleaseDisarmsWatchdog) {
  MitmProxy::Params params;
  params.defer_timeout_ms = 2000;
  params.defer_timeout_action = MitmProxy::Params::DeferTimeoutAction::kFail;
  build(params);
  DeferAll deferrer;
  proxy->set_interceptor(&deferrer);
  int completes = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.schedule_at(100, [&] {
    EXPECT_EQ(proxy->release("http://s.example/img/a.jpg"), 1u);
  });
  sim.run();
  EXPECT_EQ(completes, 1);  // served once; the watchdog never fired
  EXPECT_EQ(out->status, 200);
}

TEST_F(WatchdogFixture, UpstreamDeathMidBodyPropagatesOnce) {
  build({});
  // The upstream dies mid-body on every response.
  fault::FaultPlan plan;
  plan.origin.abrupt_close_rate = 1.0;
  fault::FaultyFetcher flaky(sim, &*origin, plan);
  MitmProxy dying_proxy(sim, &flaky, &*client_link);
  int completes = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  dying_proxy.fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  EXPECT_EQ(completes, 1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 502);  // upstream died; the proxy cannot finish
  EXPECT_NE(out->status, 200);
  EXPECT_FALSE(out->blocked);
  EXPECT_LT(out->body_size, 30'000);
}

// ---------- Graceful degradation hooks ----------

TEST(Degradation, HysteresisEntersAndExitsOnStreaks) {
  fault::DegradationParams p;
  p.enter_after = 2;
  p.exit_after = 3;
  fault::DegradationState state("test.hysteresis", p);
  EXPECT_FALSE(state.degraded());
  EXPECT_FALSE(state.observe_bad());
  EXPECT_TRUE(state.observe_bad());  // second consecutive bad flips
  EXPECT_TRUE(state.degraded());
  state.observe_good();
  state.observe_good();
  EXPECT_TRUE(state.degraded());      // still degraded at streak 2
  EXPECT_TRUE(state.observe_good());  // third consecutive good exits
  EXPECT_FALSE(state.degraded());
  EXPECT_EQ(state.entries(), 1u);
  EXPECT_EQ(state.exits(), 1u);
}

TEST(Degradation, BadObservationResetsGoodStreak) {
  fault::DegradationParams p;
  p.enter_after = 1;
  p.exit_after = 2;
  fault::DegradationState state("test.streak-reset", p);
  state.observe_bad();
  ASSERT_TRUE(state.degraded());
  state.observe_good();
  state.observe_bad();   // interrupts the recovery
  state.observe_good();  // streak back to 1
  EXPECT_TRUE(state.degraded());
  state.observe_good();
  EXPECT_FALSE(state.degraded());
}

TEST(Degradation, ForceOverridesStreaks) {
  fault::DegradationState state("test.force");
  EXPECT_TRUE(state.force(true));
  EXPECT_TRUE(state.degraded());
  EXPECT_FALSE(state.force(true));  // no change
  EXPECT_TRUE(state.force(false));
  EXPECT_FALSE(state.degraded());
}

TEST(Degradation, SessionDegradeAfterNaMarksSurvivalSegments) {
  VideoAsset::Params vp;
  vp.name = "v";
  vp.duration_s = 12;
  VideoAsset video(vp);
  ViewportTrace::Params tp;
  ViewportTrace trace(tp);
  // Plenty, then nothing for 6 s, then plenty again.
  std::vector<BytesPerSec> slots(12, 1'000'000);
  for (int s = 3; s < 9; ++s) slots[static_cast<std::size_t>(s)] = 0;
  BandwidthTrace bandwidth = BandwidthTrace::from_slots(slots, 1000);
  MfHttpTileScheduler scheduler;
  StreamingSessionParams params;
  params.carry_cap_s = 0;  // no buffer: the dead span stalls immediately
  params.degrade_after_na = 2;
  StreamingSessionResult r =
      run_streaming_session(video, trace, bandwidth, scheduler, params);
  int degraded = 0;
  for (const SegmentRecord& s : r.segments) degraded += s.degraded ? 1 : 0;
  EXPECT_GT(degraded, 0);  // survival mode engaged during the dead span

  params.degrade_after_na = 0;  // disabled: no segment is ever marked
  StreamingSessionResult off =
      run_streaming_session(video, trace, bandwidth, scheduler, params);
  for (const SegmentRecord& s : off.segments) EXPECT_FALSE(s.degraded);
}

// ---------- Acceptance: lossy-cellular sessions survive; stacks without
// ---------- resilience strand deferred requests ----------

struct AcceptanceFixture : public ::testing::Test {
  void SetUp() override {
    const DeviceProfile device = DeviceProfile::nexus6();
    Rng rng(42);
    for (const SiteSpec& spec : alexa25_specs()) {
      Rng r = rng.fork();
      if (spec.name == "sohu") page = generate_page(spec, device, r);
    }
  }

  WebPage page;
};

TEST_F(AcceptanceFixture, ResilientSessionLeavesNothingStranded) {
  fault::FaultPlan plan = fault::FaultPlan::lossy_cellular();
  BrowsingSessionConfig config;
  config.fault_plan = &plan;
  config.enable_resilience = true;
  config.fill_sample_ms = 0;
  BrowsingSessionResult r = run_browsing_session(page, config);
  EXPECT_EQ(r.stranded_deferred, 0u);
  EXPECT_GT(r.initial_viewport_load_ms, 0);  // the session did make progress
}

TEST_F(AcceptanceFixture, UnprotectedSessionStrandsDeferredRequests) {
  fault::FaultPlan plan = fault::FaultPlan::lossy_cellular();
  BrowsingSessionConfig config;
  config.fault_plan = &plan;
  config.enable_resilience = false;
  config.fill_sample_ms = 0;
  BrowsingSessionResult r = run_browsing_session(page, config);
  EXPECT_GT(r.stranded_deferred, 0u);
}

TEST_F(AcceptanceFixture, BaselineArmCompletesEveryImageUnderFaults) {
  fault::FaultPlan plan = fault::FaultPlan::lossy_cellular();
  BrowsingSessionConfig config;
  config.enable_mfhttp = false;  // no deferrals: pure retry/breaker coverage
  config.fault_plan = &plan;
  config.enable_resilience = true;
  config.fill_sample_ms = 0;
  BrowsingSessionResult r = run_browsing_session(page, config);
  EXPECT_EQ(r.images_completed, r.images_total);
  EXPECT_EQ(r.stranded_deferred, 0u);
}

}  // namespace
}  // namespace mfhttp
