// Unit tests for util: rng, stats, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace mfhttp {
namespace {

// ---------- Rng ----------

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.5, 9.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 9.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);  // all of 0..5 hit
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.truncated_normal(5.0, 10.0, 0.0, 6.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 6.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateRangeClamps) {
  Rng rng(11);
  // Mean far outside a tiny range: resampling fails, clamp should kick in.
  double v = rng.truncated_normal(100.0, 0.001, 0.0, 1.0);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    std::size_t idx = rng.weighted_index(w);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(5);
  std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.weighted_index(w) == 1) ++count1;
  EXPECT_NEAR(static_cast<double>(count1) / kDraws, 0.75, 0.03);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.15);
}

// ---------- RunningStats ----------

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_NEAR(s.stddev(), 10.0, 1e-12);
}

// ---------- Samples ----------

TEST(Samples, PercentileInterpolation) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Samples, SingleSampleAllPercentilesEqual) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Samples, UnsortedInputHandled) {
  Samples s;
  for (double v : {9.0, 1.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

// ---------- Histogram ----------

TEST(Histogram, BinAssignment) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0, 10, 5);
  h.add(-100);
  h.add(100);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

// ---------- strings ----------

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("ftp://x", "http://"));
  EXPECT_TRUE(ends_with("image.jpg", ".jpg"));
  EXPECT_FALSE(ends_with("jpg", "image.jpg"));
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%02d-%s", 7, "x"), "07-x");
  EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
  EXPECT_EQ(strformat("plain"), "plain");
}

}  // namespace
}  // namespace mfhttp
