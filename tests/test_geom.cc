// Unit + property tests for geometry: Vec2, Rect, and the swept-viewport
// region of §3.3.3, including a cross-check of the paper's literal
// 3-condition membership test against the general slab implementation and a
// sampling-based ground-truth oracle.
#include <gtest/gtest.h>

#include <limits>

#include "geom/coverage_batch.h"
#include "geom/rect.h"
#include "geom/swept_region.h"
#include "geom/vec2.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

// ---------- Vec2 ----------

TEST(Vec2, Arithmetic) {
  Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
}

TEST(Vec2, NormAndDot) {
  Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.dot({1, 1}), 7.0);
}

TEST(Vec2, NormalizedUnitLength) {
  Vec2 n = Vec2{3, 4}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

// ---------- Rect ----------

TEST(Rect, Accessors) {
  Rect r{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(r.right(), 40);
  EXPECT_DOUBLE_EQ(r.bottom(), 60);
  EXPECT_DOUBLE_EQ(r.area(), 1200);
  EXPECT_EQ(r.center(), (Vec2{25, 40}));
}

TEST(Rect, FromCorners) {
  Rect r = Rect::from_corners({1, 2}, {5, 8});
  EXPECT_EQ(r, (Rect{1, 2, 4, 6}));
}

TEST(Rect, OverlapsStrict) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps({5, 5, 10, 10}));
  EXPECT_FALSE(a.overlaps({10, 0, 5, 5}));  // edge touch: no positive area
  EXPECT_FALSE(a.overlaps({0, 10, 5, 5}));
  EXPECT_FALSE(a.overlaps({20, 20, 5, 5}));
}

TEST(Rect, OverlapAreaMatchesEq6) {
  Rect vp{0, 0, 100, 100};
  Rect obj{50, 60, 100, 100};
  // Eq. (6): [min(160,100)-max(60,0)] * [min(150,100)-max(50,0)] = 40*50.
  EXPECT_DOUBLE_EQ(vp.overlap_area(obj), 2000.0);
  EXPECT_DOUBLE_EQ(obj.overlap_area(vp), 2000.0);  // symmetric
}

TEST(Rect, OverlapAreaDisjointIsZero) {
  Rect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.overlap_area({100, 100, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_area({10, 0, 5, 5}), 0.0);  // touching
}

TEST(Rect, ContainedOverlapAreaIsInnerArea) {
  Rect outer{0, 0, 100, 100};
  Rect inner{10, 10, 20, 30};
  EXPECT_DOUBLE_EQ(outer.overlap_area(inner), inner.area());
}

TEST(Rect, IntersectionRect) {
  Rect a{0, 0, 10, 10}, b{5, 5, 10, 10};
  EXPECT_EQ(a.intersection(b), (Rect{5, 5, 5, 5}));
  EXPECT_TRUE(a.intersection({20, 20, 1, 1}).empty());
}

TEST(Rect, UnionWith) {
  Rect a{0, 0, 10, 10}, b{20, 5, 10, 10};
  EXPECT_EQ(a.union_with(b), (Rect{0, 0, 30, 15}));
  EXPECT_EQ(Rect{}.union_with(b), b);
}

TEST(Rect, ContainsPointAndRect) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Vec2{5, 5}));
  EXPECT_TRUE(r.contains(Vec2{0, 0}));   // boundary inclusive
  EXPECT_TRUE(r.contains(Vec2{10, 10}));
  EXPECT_FALSE(r.contains(Vec2{10.01, 5}));
  EXPECT_TRUE(r.contains(Rect{1, 1, 8, 8}));
  EXPECT_FALSE(r.contains(Rect{5, 5, 10, 10}));
}

TEST(Rect, TranslatedAndInflated) {
  Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.translated({5, -5}), (Rect{5, -5, 10, 10}));
  EXPECT_EQ(r.inflated(2), (Rect{-2, -2, 14, 14}));
  EXPECT_EQ(r.inflated(-2), (Rect{2, 2, 6, 6}));
}

// ---------- SweptRegion ----------

TEST(SweptRegion, AreaFormula) {
  SweptRegion s{Rect{0, 0, 100, 200}, Vec2{50, 80}};
  // w*h + w*|Dy| + h*|Dx| = 20000 + 8000 + 10000.
  EXPECT_DOUBLE_EQ(s.area(), 38000.0);
}

TEST(SweptRegion, AreaZeroDisplacementIsViewportArea) {
  SweptRegion s{Rect{0, 0, 100, 200}, Vec2{0, 0}};
  EXPECT_DOUBLE_EQ(s.area(), 20000.0);
}

TEST(SweptRegion, AreaNegativeDisplacementSymmetric) {
  SweptRegion pos{Rect{0, 0, 100, 200}, Vec2{50, 80}};
  SweptRegion neg{Rect{0, 0, 100, 200}, Vec2{-50, -80}};
  EXPECT_DOUBLE_EQ(pos.area(), neg.area());
}

TEST(SweptRegion, ViewportAtFraction) {
  SweptRegion s{Rect{0, 0, 10, 10}, Vec2{100, 50}};
  EXPECT_EQ(s.at(0.0), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(s.at(0.5), (Rect{50, 25, 10, 10}));
  EXPECT_EQ(s.final_viewport(), (Rect{100, 50, 10, 10}));
}

TEST(SweptRegion, InitialViewportObjectIsInvolved) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{500, 0}};
  EXPECT_TRUE(intersects_swept_region(s, Rect{10, 10, 20, 20}));
}

TEST(SweptRegion, FinalViewportObjectIsInvolved) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{500, 0}};
  EXPECT_TRUE(intersects_swept_region(s, Rect{510, 10, 20, 20}));
}

TEST(SweptRegion, MidPathObjectIsInvolved) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{500, 500}};
  // On the diagonal path but in neither endpoint viewport.
  EXPECT_TRUE(intersects_swept_region(s, Rect{250, 250, 20, 20}));
}

TEST(SweptRegion, OffCorridorObjectNotInvolved) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{500, 500}};
  // Inside the bounding box of the sweep but outside the hexagon corridor.
  EXPECT_FALSE(intersects_swept_region(s, Rect{450, 10, 20, 20}));
  EXPECT_FALSE(intersects_swept_region(s, Rect{10, 450, 20, 20}));
}

TEST(SweptRegion, EdgeTouchingDoesNotCount) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{0, 500}};
  // Object exactly abutting the right edge of the swept column.
  EXPECT_FALSE(intersects_swept_region(s, Rect{100, 200, 50, 50}));
  // One pixel in: counts.
  EXPECT_TRUE(intersects_swept_region(s, Rect{99, 200, 50, 50}));
}

TEST(SweptRegion, NegativeDisplacementQuadrants) {
  Rect vp{1000, 1000, 100, 100};
  EXPECT_TRUE(intersects_swept_region({vp, {-500, 0}}, Rect{600, 1010, 50, 50}));
  EXPECT_TRUE(intersects_swept_region({vp, {0, -500}}, Rect{1010, 600, 50, 50}));
  EXPECT_TRUE(intersects_swept_region({vp, {-500, -500}}, Rect{700, 700, 50, 50}));
  EXPECT_FALSE(intersects_swept_region({vp, {-500, -500}}, Rect{1300, 700, 50, 50}));
}

TEST(SweptRegion, ZeroDisplacementReducesToOverlap) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{0, 0}};
  EXPECT_TRUE(intersects_swept_region(s, Rect{50, 50, 10, 10}));
  EXPECT_FALSE(intersects_swept_region(s, Rect{200, 200, 10, 10}));
}

TEST(SweptRegion, EmptyObjectNeverInvolved) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{100, 100}};
  EXPECT_FALSE(intersects_swept_region(s, Rect{50, 50, 0, 0}));
}

TEST(SweptRegion, FirstOverlapFractionEndpoints) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{1000, 0}};
  // Already overlapping at start.
  EXPECT_DOUBLE_EQ(first_overlap_fraction(s, Rect{50, 50, 10, 10}), 0.0);
  // Enters when viewport right edge passes x=600: t = (600-100)/1000 = 0.5.
  EXPECT_NEAR(first_overlap_fraction(s, Rect{600, 50, 10, 10}), 0.5, 1e-9);
  // Never involved.
  EXPECT_LT(first_overlap_fraction(s, Rect{600, 500, 10, 10}), 0.0);
}

TEST(SweptRegion, FirstOverlapFractionDiagonal) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{400, 400}};
  double f = first_overlap_fraction(s, Rect{300, 300, 50, 50});
  ASSERT_GE(f, 0.0);
  // At fraction f the viewport must just reach the object.
  Rect at_f = s.at(f);
  EXPECT_LE(at_f.overlap_area(Rect{300, 300, 50, 50}), 1e-6);
  Rect just_after = s.at(std::min(1.0, f + 0.01));
  EXPECT_GT(just_after.overlap_area(Rect{300, 300, 50, 50}), 0.0);
}

// Ground-truth oracle: does the object overlap the viewport at any of many
// sampled sweep fractions?
bool sampled_involvement(const SweptRegion& s, const Rect& obj, int samples = 2000) {
  for (int k = 0; k <= samples; ++k) {
    double t = static_cast<double>(k) / samples;
    if (s.at(t).overlaps(obj)) return true;
  }
  return false;
}

class SweptRegionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweptRegionProperty, SlabTestMatchesSampledOracle) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    SweptRegion s{Rect{rng.uniform(-500, 500), rng.uniform(-500, 500),
                       rng.uniform(50, 400), rng.uniform(50, 400)},
                  Vec2{rng.uniform(-800, 800), rng.uniform(-800, 800)}};
    Rect obj{rng.uniform(-1500, 1500), rng.uniform(-1500, 1500),
             rng.uniform(10, 300), rng.uniform(10, 300)};
    bool fast = intersects_swept_region(s, obj);
    bool slow = sampled_involvement(s, obj);
    // The sampled oracle can only miss sub-sample grazing contacts, so it
    // implies fast; in the other direction allow grazing-width slack by
    // shrinking the object slightly.
    if (slow) {
      EXPECT_TRUE(fast) << "oracle found overlap the slab test missed";
    }
    if (!fast) {
      EXPECT_FALSE(sampled_involvement(s, obj.inflated(-1.0)));
    }
  }
}

TEST_P(SweptRegionProperty, PaperConditionsMatchSlabTestInQuadrant1) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    SweptRegion s{Rect{rng.uniform(-200, 200), rng.uniform(-200, 200),
                       rng.uniform(50, 300), rng.uniform(50, 300)},
                  Vec2{rng.uniform(1, 900), rng.uniform(1, 900)}};
    Rect obj{rng.uniform(-1200, 1500), rng.uniform(-1200, 1500),
             rng.uniform(10, 250), rng.uniform(10, 250)};
    EXPECT_EQ(paper_conditions_q1(s, obj), intersects_swept_region(s, obj))
        << "disagreement at viewport(" << s.viewport.x << "," << s.viewport.y
        << ") D(" << s.displacement.x << "," << s.displacement.y << ") obj("
        << obj.x << "," << obj.y << "," << obj.w << "," << obj.h << ")";
  }
}

TEST_P(SweptRegionProperty, FirstOverlapFractionIsEarliest) {
  Rng rng(GetParam() + 17);
  for (int iter = 0; iter < 200; ++iter) {
    SweptRegion s{Rect{0, 0, rng.uniform(50, 300), rng.uniform(50, 300)},
                  Vec2{rng.uniform(-700, 700), rng.uniform(-700, 700)}};
    Rect obj{rng.uniform(-900, 900), rng.uniform(-900, 900), rng.uniform(20, 200),
             rng.uniform(20, 200)};
    double f = first_overlap_fraction(s, obj);
    if (f < 0) continue;
    // No overlap strictly before f (minus numerical slack).
    for (double t = 0; t < f - 1e-6; t += f / 20 + 1e-9)
      EXPECT_DOUBLE_EQ(s.at(t).overlap_area(obj), 0.0);
  }
}

// ---------- coverage_batch vs scalar oracle ----------

// SoA mirror of a rect list, built the way core/object_arena.cc builds it:
// x1/y1 hold the double-precision sums x + w / y + h, degenerate guards come
// from the original extents (-inf live, +inf degenerate).
struct BatchFixture {
  std::vector<double> x0, y0, x1, y1, degenerate;

  explicit BatchFixture(const std::vector<Rect>& rects) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (const Rect& r : rects) {
      x0.push_back(r.x);
      y0.push_back(r.y);
      x1.push_back(r.x + r.w);
      y1.push_back(r.y + r.h);
      degenerate.push_back(r.empty() ? kInf : -kInf);
    }
  }

  geom::RectSoA soa() const {
    geom::RectSoA s;
    s.x0 = x0.data();
    s.y0 = y0.data();
    s.x1 = x1.data();
    s.y1 = y1.data();
    s.degenerate = degenerate.data();
    s.count = x0.size();
    return s;
  }
};

// The batch kernels must be BIT-identical to the scalar functions — the
// arena planner asserts decision parity downstream, which only holds if the
// geometry layer produces the exact same doubles. Hence EXPECT_EQ on the
// fractions, not EXPECT_NEAR.
TEST_P(SweptRegionProperty, BatchMatchesScalarBitExact) {
  Rng rng(GetParam() + 91);
  for (int iter = 0; iter < 100; ++iter) {
    SweptRegion s{Rect{rng.uniform(-200, 200), rng.uniform(-200, 200),
                       rng.uniform(50, 400), rng.uniform(50, 400)},
                  Vec2{rng.uniform(-800, 800), rng.uniform(-800, 800)}};
    // Exercise the hoisted d == 0 specializations too.
    if (iter % 7 == 0) s.displacement.x = 0;
    if (iter % 11 == 0) s.displacement.y = 0;
    std::vector<Rect> objs;
    const int n = 1 + static_cast<int>(rng.uniform(0, 40));
    for (int i = 0; i < n; ++i) {
      Rect r{rng.uniform(-1200, 1500), rng.uniform(-1200, 1500),
             rng.uniform(-20, 300), rng.uniform(-20, 300)};  // some degenerate
      objs.push_back(r);
    }
    BatchFixture fx(objs);
    std::vector<std::uint8_t> involved(objs.size(), 0xee);
    std::vector<double> fraction(objs.size(), -7.0);
    const std::size_t count =
        geom::intersects_swept_region_batch(s, fx.soa(), involved.data());
    geom::first_overlap_fraction_batch(s, fx.soa(), fraction.data());

    std::size_t expect_count = 0;
    for (std::size_t i = 0; i < objs.size(); ++i) {
      const bool scalar_in = intersects_swept_region(s, objs[i]);
      expect_count += scalar_in ? 1 : 0;
      EXPECT_EQ(involved[i] != 0, scalar_in) << "object " << i;
      const double scalar_f = first_overlap_fraction(s, objs[i]);
      if (scalar_f < 0) {
        EXPECT_LT(fraction[i], 0.0) << "object " << i;
      } else {
        EXPECT_EQ(fraction[i], scalar_f) << "object " << i;  // bit-exact
      }
    }
    EXPECT_EQ(count, expect_count);
  }
}

TEST_P(SweptRegionProperty, BatchMatchesPaperOracleInQ1) {
  Rng rng(GetParam() + 133);
  for (int iter = 0; iter < 100; ++iter) {
    SweptRegion s{Rect{rng.uniform(-100, 400), rng.uniform(-100, 400),
                       rng.uniform(50, 300), rng.uniform(50, 300)},
                  Vec2{rng.uniform(1, 900), rng.uniform(1, 900)}};
    std::vector<Rect> objs;
    for (int i = 0; i < 32; ++i)
      objs.push_back(Rect{rng.uniform(-1200, 1500), rng.uniform(-1200, 1500),
                          rng.uniform(10, 250), rng.uniform(10, 250)});
    BatchFixture fx(objs);
    std::vector<std::uint8_t> involved(objs.size(), 0);
    geom::intersects_swept_region_batch(s, fx.soa(), involved.data());
    for (std::size_t i = 0; i < objs.size(); ++i)
      EXPECT_EQ(involved[i] != 0, paper_conditions_q1(s, objs[i]))
          << "object " << i;
  }
}

TEST(CoverageBatch, EmptyViewportNothingInvolved) {
  SweptRegion s{Rect{0, 0, 0, 100}, Vec2{50, 50}};
  BatchFixture fx({Rect{0, 0, 10, 10}, Rect{20, 20, 5, 5}});
  std::vector<std::uint8_t> involved(2, 0xee);
  std::vector<double> fraction(2, 9.0);
  EXPECT_EQ(geom::intersects_swept_region_batch(s, fx.soa(), involved.data()),
            0u);
  geom::first_overlap_fraction_batch(s, fx.soa(), fraction.data());
  EXPECT_EQ(involved[0], 0);
  EXPECT_EQ(involved[1], 0);
  EXPECT_LT(fraction[0], 0.0);
  EXPECT_LT(fraction[1], 0.0);
}

TEST(CoverageBatch, NullDegenerateArrayMeansAllLive) {
  SweptRegion s{Rect{0, 0, 100, 100}, Vec2{0, 200}};
  std::vector<double> x0{10}, y0{150}, x1{60}, y1{200};
  geom::RectSoA soa;
  soa.x0 = x0.data();
  soa.y0 = y0.data();
  soa.x1 = x1.data();
  soa.y1 = y1.data();
  soa.count = 1;
  std::uint8_t involved = 0;
  EXPECT_EQ(geom::intersects_swept_region_batch(s, soa, &involved), 1u);
  EXPECT_EQ(involved, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweptRegionProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mfhttp
