// Tests for the prediction-driven prefetch subsystem: the planner's
// value-density budgeting, the Prefetcher's launch/cancel lifecycle against
// MitmProxy (a new fling invalidates the old predicted path), admission
// gating of speculative warm-ups, the tile scheduler's prefetch list, and
// the JSON cache/prefetch configuration.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "obs/metrics.h"
#include "overload/admission.h"
#include "prefetch/cache_config.h"
#include "prefetch/planner.h"
#include "prefetch/prefetcher.h"
#include "video/dash.h"
#include "video/scheduler.h"

namespace mfhttp {
namespace {

using prefetch::CacheConfig;
using prefetch::PrefetchBudget;
using prefetch::Prefetcher;
using prefetch::PrefetchItem;
using prefetch::PrefetchPlan;
using prefetch::PrefetchPlanner;

PrefetchCandidate candidate(std::string url, Bytes bytes, double value,
                            double entry_time_ms, std::size_t index = 0) {
  PrefetchCandidate c;
  c.object_index = index;
  c.url = std::move(url);
  c.bytes = bytes;
  c.entry_time_ms = entry_time_ms;
  c.value = value;
  return c;
}

// ---------- PrefetchPlanner ----------

TEST(PrefetchPlannerTest, BudgetsByValueDensityAndCapsBytes) {
  PrefetchBudget budget;
  budget.max_bytes_per_plan = 60'000;
  budget.lead_time_ms = 300;
  PrefetchPlanner planner(budget);

  // Densities: a = 10/10k = 1e-3, b = 20/50k = 4e-4, c = 1/5k = 2e-4.
  // a and b fill the 60 KB budget; c (lowest density) is squeezed out even
  // though it is the smallest candidate.
  const PrefetchPlan plan = planner.plan(
      {candidate("a", 10'000, 10, 1'000, 0), candidate("b", 50'000, 20, 500, 1),
       candidate("c", 5'000, 1, 2'000, 2)},
      /*now_ms=*/1'000);

  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.total_bytes, 60'000);
  EXPECT_EQ(plan.dropped, 1u);
  // Items come back ordered by launch time: b enters at +500 (launch
  // 1'000 + 500 - 300 = 1'200), a at +1'000 (launch 1'700).
  EXPECT_EQ(plan.items[0].url, "b");
  EXPECT_EQ(plan.items[0].launch_at_ms, 1'200);
  EXPECT_EQ(plan.items[1].url, "a");
  EXPECT_EQ(plan.items[1].launch_at_ms, 1'700);
}

TEST(PrefetchPlannerTest, MinValueFiltersWeakCandidates) {
  PrefetchBudget budget;
  budget.min_value = 5.0;
  PrefetchPlanner planner(budget);
  const PrefetchPlan plan = planner.plan(
      {candidate("keep", 10'000, 10, 100), candidate("drop", 100, 1, 100)}, 0);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].url, "keep");
  EXPECT_EQ(plan.dropped, 1u);
}

TEST(PrefetchPlannerTest, LaunchTimeNeverPrecedesNow) {
  PrefetchBudget budget;
  budget.lead_time_ms = 300;
  PrefetchPlanner planner(budget);
  // Entry in 100 ms but lead time is 300 ms: launch clamps to now.
  const PrefetchPlan plan = planner.plan({candidate("u", 1'000, 1, 100)}, 5'000);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].launch_at_ms, 5'000);
}

TEST(PrefetchPlannerTest, EmptyCandidatesMakeEmptyPlan) {
  const PrefetchPlan plan = PrefetchPlanner().plan({}, 0);
  EXPECT_TRUE(plan.items.empty());
  EXPECT_EQ(plan.total_bytes, 0);
  EXPECT_EQ(plan.dropped, 0u);
}

// ---------- Prefetcher against a real proxy ----------

struct PrefetcherFixture : public ::testing::Test {
  void SetUp() override {
    obs::metrics().reset();
    Link::Params server_params;
    server_params.bandwidth = BandwidthTrace::constant(1'000'000);
    server_params.latency_ms = 2;
    server_link.emplace(sim, server_params);

    store.put("/img/a.jpg", 20'000, "image/jpeg");
    store.put("/img/b.jpg", 20'000, "image/jpeg");
    store.put("/img/c.jpg", 20'000, "image/jpeg");
    store.put("/img/big.jpg", 500'000, "image/jpeg");
    origin.emplace(sim, &store, &*server_link);

    Link::Params client_params;
    client_params.bandwidth = BandwidthTrace::constant(1'000'000);
    client_params.latency_ms = 5;
    FetchPipelineBuilder builder(sim, &*origin);
    builder.client_link(client_params).with_cache(CacheParams{1'000'000});
    pipeline = builder.build();
    prefetcher.emplace(sim, &pipeline->proxy());
  }

  static PrefetchPlan plan_of(std::vector<PrefetchItem> items) {
    PrefetchPlan plan;
    for (PrefetchItem& item : items) {
      plan.total_bytes += item.bytes;
      plan.items.push_back(std::move(item));
    }
    return plan;
  }

  static PrefetchItem item(std::string url, TimeMs launch_at, Bytes bytes = 20'000) {
    PrefetchItem i;
    i.url = std::move(url);
    i.launch_at_ms = launch_at;
    i.bytes = bytes;
    return i;
  }

  Simulator sim;
  ObjectStore store;
  std::optional<Link> server_link;
  std::optional<SimHttpOrigin> origin;
  std::unique_ptr<FetchPipeline> pipeline;
  std::optional<Prefetcher> prefetcher;
};

TEST_F(PrefetcherFixture, PlanWarmsCacheAndHitCountsUseful) {
  prefetcher->submit(plan_of({item("http://site.example/img/a.jpg", 10),
                              item("http://site.example/img/b.jpg", 20)}));
  EXPECT_EQ(prefetcher->pending(), 2u);
  sim.run();

  EXPECT_EQ(prefetcher->stats().scheduled, 2u);
  EXPECT_EQ(prefetcher->stats().launched, 2u);
  EXPECT_EQ(prefetcher->stats().denied, 0u);
  HttpCache& cache = *pipeline->cache();
  EXPECT_TRUE(cache.contains("http://site.example/img/a.jpg"));
  EXPECT_TRUE(cache.contains("http://site.example/img/b.jpg"));
  EXPECT_EQ(cache.stats().prefetch_insertions, 2u);
  EXPECT_EQ(pipeline->proxy().stats().prefetches, 2u);

  // The predicted request arrives: served from the warm cache, counted as a
  // useful prefetch, and the origin sends nothing new.
  const Bytes server_bytes = server_link->bytes_delivered_total();
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  pipeline->proxy().fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                          std::move(cbs));
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(cache.stats().prefetch_useful, 1u);
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes);
}

// The satellite requirement: a new fling makes the old predicted path wrong,
// so submitting the new plan cancels both pending launches and warm-ups
// already in flight at the proxy.
TEST_F(PrefetcherFixture, NewPlanCancelsPendingAndInflightItems) {
  prefetcher->submit(plan_of({item("http://site.example/img/big.jpg", 5, 500'000),
                              item("http://site.example/img/b.jpg", 800)}));
  // At t=50 the big warm-up is in flight (500 KB at 1 MB/s takes ~500 ms)
  // and b has not launched yet.
  sim.run_until(50);
  EXPECT_EQ(pipeline->proxy().prefetch_inflight(), 1u);
  EXPECT_EQ(prefetcher->pending(), 1u);

  // Fling: the predictor now expects c instead.
  prefetcher->submit(plan_of({item("http://site.example/img/c.jpg", 100)}));
  EXPECT_EQ(prefetcher->stats().cancelled, 2u);  // pending b + in-flight big
  EXPECT_EQ(pipeline->proxy().prefetch_inflight(), 0u);
  EXPECT_EQ(pipeline->proxy().stats().prefetch_cancelled, 1u);

  sim.run();
  HttpCache& cache = *pipeline->cache();
  EXPECT_TRUE(cache.contains("http://site.example/img/c.jpg"));
  EXPECT_FALSE(cache.contains("http://site.example/img/big.jpg"));
  EXPECT_FALSE(cache.contains("http://site.example/img/b.jpg"));
}

TEST_F(PrefetcherFixture, ResubmittedUrlKeepsItsSchedule) {
  prefetcher->submit(plan_of({item("http://site.example/img/a.jpg", 300)}));
  // Same URL in the next plan with a different time: the original schedule
  // stands, nothing is cancelled or double-scheduled.
  prefetcher->submit(plan_of({item("http://site.example/img/a.jpg", 900)}));
  EXPECT_EQ(prefetcher->stats().scheduled, 1u);
  EXPECT_EQ(prefetcher->stats().cancelled, 0u);
  sim.run_until(400);
  EXPECT_EQ(prefetcher->stats().launched, 1u);
}

TEST_F(PrefetcherFixture, CancelAllTearsEverythingDown) {
  prefetcher->submit(plan_of({item("http://site.example/img/big.jpg", 5, 500'000),
                              item("http://site.example/img/b.jpg", 900)}));
  sim.run_until(50);
  prefetcher->cancel_all();
  EXPECT_EQ(prefetcher->pending(), 0u);
  EXPECT_EQ(pipeline->proxy().prefetch_inflight(), 0u);
  sim.run();
  EXPECT_EQ(pipeline->cache()->entry_count(), 0u);
}

// ---------- Admission gating of warm-ups ----------

TEST_F(PrefetcherFixture, ProxyDeniesPrefetchWithoutHeadroomOrUnderBrownout) {
  overload::AdmissionParams params;
  params.max_inflight_upstream = 4;  // headroom gate at 0.75 * 4 = 3 in flight
  overload::AdmissionController admission(params);
  pipeline->proxy().set_admission(&admission);

  // Fill the headroom: with 3 of 4 slots busy, speculation is denied.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(admission.try_acquire_upstream());
  EXPECT_FALSE(pipeline->proxy().prefetch("http://site.example/img/a.jpg"));
  EXPECT_EQ(pipeline->proxy().stats().prefetch_denied, 1u);

  // Slack again: the same warm-up goes through.
  admission.release_upstream();
  EXPECT_TRUE(pipeline->proxy().prefetch("http://site.example/img/a.jpg"));

  // Any brownout level implies "no speculation".
  admission.set_brownout_level(overload::BrownoutLevel::kNoSpeculation);
  EXPECT_FALSE(pipeline->proxy().prefetch("http://site.example/img/b.jpg"));
  EXPECT_EQ(pipeline->proxy().stats().prefetch_denied, 2u);
}

TEST_F(PrefetcherFixture, DeniedLaunchCountsAtThePrefetcher) {
  overload::AdmissionParams params;
  params.max_inflight_upstream = 1;
  overload::AdmissionController admission(params);
  pipeline->proxy().set_admission(&admission);
  ASSERT_TRUE(admission.try_acquire_upstream());  // no headroom at all

  prefetcher->submit(plan_of({item("http://site.example/img/a.jpg", 10)}));
  sim.run();
  EXPECT_EQ(prefetcher->stats().launched, 0u);
  EXPECT_EQ(prefetcher->stats().denied, 1u);
  EXPECT_FALSE(pipeline->cache()->contains("http://site.example/img/a.jpg"));
}

TEST_F(PrefetcherFixture, PrefetchSkipsFreshAndInflightUrls) {
  MitmProxy& proxy = pipeline->proxy();
  EXPECT_TRUE(proxy.prefetch("http://site.example/img/a.jpg"));
  // Already warming: a second request for the same URL is a no-op.
  EXPECT_FALSE(proxy.prefetch("http://site.example/img/a.jpg"));
  sim.run();
  // Already fresh: nothing to warm.
  EXPECT_FALSE(proxy.prefetch("http://site.example/img/a.jpg"));
  EXPECT_EQ(proxy.stats().prefetches, 1u);
}

// ---------- Tile scheduler speculative list ----------

TEST(TileSchedulerPrefetchTest, PlansLowestTierForPredictedTilesUnlessForbidden) {
  VideoAsset::Params params;
  params.duration_s = 4;
  params.tile_cols = 2;
  params.tile_rows = 2;
  VideoAsset video(params);
  MfHttpTileScheduler scheduler;

  std::vector<bool> predicted{true, false, true, false};
  SchedulerContext context = SchedulerContext::from_budget(1'000'000);

  const std::vector<std::string> urls = scheduler.plan_prefetch(
      video, /*segment=*/2, predicted, context, "http://cdn.example");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], video.segment_url("http://cdn.example", 0, 2, 0));
  EXPECT_EQ(urls[1], video.segment_url("http://cdn.example", 2, 2, 0));

  // Degraded playback, any brownout level, or an out-of-range segment all
  // suppress speculation entirely.
  SchedulerContext degraded = context;
  degraded.degraded = true;
  EXPECT_TRUE(scheduler.plan_prefetch(video, 2, predicted, degraded,
                                      "http://cdn.example").empty());
  SchedulerContext brownout = context;
  brownout.brownout = 1;
  EXPECT_TRUE(scheduler.plan_prefetch(video, 2, predicted, brownout,
                                      "http://cdn.example").empty());
  EXPECT_TRUE(scheduler.plan_prefetch(video, 99, predicted, context,
                                      "http://cdn.example").empty());
}

// ---------- CacheConfig JSON ----------

TEST(CacheConfigTest, ParsesFullDocument) {
  const char* json = R"({
    "cache": {
      "capacity_bytes": 2000000, "default_ttl_ms": 6000,
      "stale_while_revalidate_ms": 2000, "max_object_fraction": 0.25,
      "cost_aware_admission": true
    },
    "prefetch": {
      "enabled": false, "min_value": 1.5,
      "max_bytes_per_plan": 500000, "lead_time_ms": 250
    }
  })";
  std::string error;
  auto config = CacheConfig::from_json(json, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->cache.capacity_bytes, 2'000'000);
  EXPECT_EQ(config->cache.default_ttl_ms, 6'000);
  EXPECT_EQ(config->cache.stale_while_revalidate_ms, 2'000);
  EXPECT_DOUBLE_EQ(config->cache.max_object_fraction, 0.25);
  EXPECT_TRUE(config->cache.cost_aware_admission);
  EXPECT_FALSE(config->prefetch_enabled);
  EXPECT_DOUBLE_EQ(config->prefetch.min_value, 1.5);
  EXPECT_EQ(config->prefetch.max_bytes_per_plan, 500'000);
  EXPECT_EQ(config->prefetch.lead_time_ms, 250);
}

TEST(CacheConfigTest, AbsentFieldsKeepDefaults) {
  auto config = CacheConfig::from_json("{}");
  ASSERT_TRUE(config.has_value());
  const CacheConfig defaults;
  EXPECT_EQ(config->cache.capacity_bytes, defaults.cache.capacity_bytes);
  EXPECT_EQ(config->prefetch.lead_time_ms, defaults.prefetch.lead_time_ms);
  EXPECT_EQ(config->prefetch_enabled, defaults.prefetch_enabled);
}

TEST(CacheConfigTest, RoundTripsThroughToJson) {
  CacheConfig config;
  config.cache.capacity_bytes = 123'456;
  config.cache.cost_aware_admission = true;
  config.prefetch.max_bytes_per_plan = 42;
  config.prefetch_enabled = false;
  auto reparsed = CacheConfig::from_json(config.to_json());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->cache.capacity_bytes, 123'456);
  EXPECT_TRUE(reparsed->cache.cost_aware_admission);
  EXPECT_EQ(reparsed->prefetch.max_bytes_per_plan, 42);
  EXPECT_FALSE(reparsed->prefetch_enabled);
}

TEST(CacheConfigTest, ReportsSchemaAndParseErrors) {
  std::string error;
  EXPECT_FALSE(CacheConfig::from_json("{\"cache\": []}", &error).has_value());
  EXPECT_EQ(error, "'cache' must be an object");

  EXPECT_FALSE(CacheConfig::from_json(
                   "{\"cache\": {\"capacity_bytes\": \"lots\"}}", &error)
                   .has_value());
  EXPECT_NE(error.find("'cache'"), std::string::npos);
  EXPECT_NE(error.find("capacity_bytes"), std::string::npos);

  EXPECT_FALSE(CacheConfig::from_json(
                   "{\"cache\": {\"max_object_fraction\": 2.0}}", &error)
                   .has_value());
  EXPECT_NE(error.find("max_object_fraction"), std::string::npos);

  EXPECT_FALSE(CacheConfig::from_json("{nope", &error).has_value());
  EXPECT_NE(error.find("line"), std::string::npos);

  EXPECT_FALSE(CacheConfig::load("/nonexistent/cache.json", &error).has_value());
  EXPECT_EQ(error, "cannot open file");
}

}  // namespace
}  // namespace mfhttp
