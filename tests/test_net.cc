// Tests for bandwidth traces and the rate-limited link.
#include <gtest/gtest.h>

#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

// ---------- BandwidthTrace ----------

TEST(BandwidthTrace, ConstantRate) {
  auto t = BandwidthTrace::constant(1000);
  EXPECT_DOUBLE_EQ(t.rate_at(0), 1000);
  EXPECT_DOUBLE_EQ(t.rate_at(123456), 1000);
  EXPECT_DOUBLE_EQ(t.bytes_between(0, 1000), 1000);
  EXPECT_DOUBLE_EQ(t.bytes_between(500, 2500), 2000);
}

TEST(BandwidthTrace, SlottedRates) {
  auto t = BandwidthTrace::from_slots({100, 200, 400}, 1000);
  EXPECT_DOUBLE_EQ(t.rate_at(0), 100);
  EXPECT_DOUBLE_EQ(t.rate_at(999), 100);
  EXPECT_DOUBLE_EQ(t.rate_at(1000), 200);
  EXPECT_DOUBLE_EQ(t.rate_at(2500), 400);
  // Final slot extends forever.
  EXPECT_DOUBLE_EQ(t.rate_at(99'000), 400);
}

TEST(BandwidthTrace, IntegralAcrossSlots) {
  auto t = BandwidthTrace::from_slots({100, 200, 400}, 1000);
  EXPECT_DOUBLE_EQ(t.bytes_between(0, 3000), 700);
  EXPECT_DOUBLE_EQ(t.bytes_between(500, 1500), 50 + 100);
  EXPECT_DOUBLE_EQ(t.bytes_between(2000, 5000), 400 * 3);
  EXPECT_DOUBLE_EQ(t.bytes_between(100, 100), 0);
}

TEST(BandwidthTrace, IntegralAdditivity) {
  auto t = BandwidthTrace::from_slots({123, 456, 789, 1000}, 700);
  double whole = t.bytes_between(0, 5000);
  double parts = t.bytes_between(0, 1234) + t.bytes_between(1234, 5000);
  EXPECT_NEAR(whole, parts, 1e-9);
}

TEST(BandwidthTrace, CumulativeMatchesIntegral) {
  auto t = BandwidthTrace::from_slots({100, 300}, 1000);
  EXPECT_DOUBLE_EQ(t.cumulative_bytes(1500), t.bytes_between(0, 1500));
}

TEST(BandwidthTrace, SubSlotGranularity) {
  auto t = BandwidthTrace::from_slots({1000}, 1000);
  EXPECT_DOUBLE_EQ(t.bytes_between(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.bytes_between(0, 250), 250.0);
}

TEST(BandwidthTrace, RandomWalkStaysClamped) {
  Rng rng(42);
  auto t = BandwidthTrace::random_walk(rng, 500e3, 150e3, 250e3, 1000e3, 120);
  EXPECT_EQ(t.slot_count(), 120u);
  for (BytesPerSec r : t.slots()) {
    EXPECT_GE(r, 250e3);
    EXPECT_LE(r, 1000e3);
  }
}

TEST(BandwidthTrace, RandomWalkMeanReverts) {
  Rng rng(42);
  auto t = BandwidthTrace::random_walk(rng, 500e3, 50e3, 0, 1000e3, 600);
  double sum = 0;
  for (BytesPerSec r : t.slots()) sum += r;
  EXPECT_NEAR(sum / 600.0, 500e3, 70e3);
}

TEST(BandwidthTrace, RandomWalkVaries) {
  Rng rng(42);
  auto t = BandwidthTrace::random_walk(rng, 500e3, 150e3, 100e3, 900e3, 60);
  double mn = 1e18, mx = 0;
  for (BytesPerSec r : t.slots()) {
    mn = std::min(mn, r);
    mx = std::max(mx, r);
  }
  EXPECT_GT(mx - mn, 100e3);  // actually moves around
}

// ---------- Link ----------

Link::Params fifo_params(BytesPerSec rate, TimeMs latency = 0) {
  Link::Params p;
  p.bandwidth = BandwidthTrace::constant(rate);
  p.latency_ms = latency;
  p.quantum_ms = 5;
  p.sharing = Link::Sharing::kFifo;
  return p;
}

TEST(Link, SingleTransferTiming) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));  // 100 KB/s
  TimeMs done = -1;
  link.submit(50'000, [&](Bytes, bool complete) {
    if (complete) done = sim.now();
  });
  sim.run();
  // 50 KB at 100 KB/s = 500 ms (quantized to 5ms ticks).
  EXPECT_GE(done, 500);
  EXPECT_LE(done, 510);
}

TEST(Link, LatencyDelaysFirstByte) {
  Simulator sim;
  Link link(sim, fifo_params(1'000'000, 40));
  TimeMs first_byte = -1;
  link.submit(1000, [&](Bytes, bool) {
    if (first_byte < 0) first_byte = sim.now();
  });
  sim.run();
  EXPECT_GE(first_byte, 40);
  EXPECT_LE(first_byte, 50);
}

TEST(Link, ZeroSizeCompletesAfterLatency) {
  Simulator sim;
  Link link(sim, fifo_params(1000, 25));
  TimeMs done = -1;
  Bytes delivered = -1;
  link.submit(0, [&](Bytes b, bool complete) {
    delivered = b;
    if (complete) done = sim.now();
  });
  sim.run();
  EXPECT_EQ(done, 25);
  EXPECT_EQ(delivered, 0);
}

TEST(Link, ProgressSumsToSize) {
  Simulator sim;
  Link link(sim, fifo_params(77'000));
  Bytes total = 0;
  link.submit(123'456, [&](Bytes chunk, bool) { total += chunk; });
  sim.run();
  EXPECT_EQ(total, 123'456);
  EXPECT_EQ(link.bytes_delivered_total(), 123'456);
}

TEST(Link, FifoServesHeadFirst) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));
  TimeMs done_a = -1, done_b = -1;
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_a = sim.now(); });
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_b = sim.now(); });
  sim.run();
  // A completes at ~1s, B only afterwards at ~2s (strict FIFO).
  EXPECT_NEAR(static_cast<double>(done_a), 1000, 15);
  EXPECT_NEAR(static_cast<double>(done_b), 2000, 15);
}

TEST(Link, FairShareSplitsCapacity) {
  Simulator sim;
  Link::Params p = fifo_params(100'000);
  p.sharing = Link::Sharing::kFairShare;
  Link link(sim, p);
  TimeMs done_a = -1, done_b = -1;
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_a = sim.now(); });
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_b = sim.now(); });
  sim.run();
  // Both share: each finishes around 2s.
  EXPECT_NEAR(static_cast<double>(done_a), 2000, 25);
  EXPECT_NEAR(static_cast<double>(done_b), 2000, 25);
}

TEST(Link, FairShareLeftoverGoesToBigTransfer) {
  Simulator sim;
  Link::Params p = fifo_params(100'000);
  p.sharing = Link::Sharing::kFairShare;
  Link link(sim, p);
  TimeMs done_small = -1, done_big = -1;
  link.submit(10'000, [&](Bytes, bool c) { if (c) done_small = sim.now(); });
  link.submit(190'000, [&](Bytes, bool c) { if (c) done_big = sim.now(); });
  sim.run();
  // Small: shares until done (~0.2s). Big: total work 200 KB at 100 KB/s = 2s.
  EXPECT_NEAR(static_cast<double>(done_small), 200, 20);
  EXPECT_NEAR(static_cast<double>(done_big), 2000, 30);
}

TEST(Link, FifoPriorityPreempts) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));
  TimeMs done_low = -1, done_high = -1;
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_low = sim.now(); },
              /*priority=*/0);
  // Submitted later but more important: served first from its start.
  link.submit(50'000, [&](Bytes, bool c) { if (c) done_high = sim.now(); },
              /*priority=*/5);
  sim.run();
  EXPECT_LT(done_high, done_low);
  // High finishes ~0.5 s in; low needs the full 1.5 s of combined work.
  EXPECT_NEAR(static_cast<double>(done_high), 500, 25);
  EXPECT_NEAR(static_cast<double>(done_low), 1500, 25);
}

TEST(Link, EqualPrioritiesKeepSubmissionOrder) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));
  std::vector<int> completion_order;
  for (int i = 0; i < 3; ++i)
    link.submit(20'000, [&completion_order, i](Bytes, bool c) {
      if (c) completion_order.push_back(i);
    }, /*priority=*/7);
  sim.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
}

TEST(Link, FairShareIgnoresPriority) {
  Simulator sim;
  Link::Params p = fifo_params(100'000);
  p.sharing = Link::Sharing::kFairShare;
  Link link(sim, p);
  TimeMs done_a = -1, done_b = -1;
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_a = sim.now(); }, 0);
  link.submit(100'000, [&](Bytes, bool c) { if (c) done_b = sim.now(); }, 9);
  sim.run();
  EXPECT_NEAR(static_cast<double>(done_a), static_cast<double>(done_b), 30);
}

TEST(Link, CancelStopsDelivery) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));
  Bytes received = 0;
  auto id = link.submit(1'000'000, [&](Bytes chunk, bool) { received += chunk; });
  sim.schedule_at(100, [&] { EXPECT_TRUE(link.cancel(id)); });
  sim.run();
  // ~10 KB delivered in 100 ms; nothing after cancellation.
  EXPECT_LE(received, 12'000);
  EXPECT_GT(received, 5'000);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(Link, CancelDuringLatencyNoCallbacks) {
  Simulator sim;
  Link link(sim, fifo_params(100'000, 50));
  bool any = false;
  auto id = link.submit(1000, [&](Bytes, bool) { any = true; });
  sim.schedule_at(10, [&] { link.cancel(id); });
  sim.run();
  EXPECT_FALSE(any);
}

TEST(Link, VariableBandwidthRespected) {
  Simulator sim;
  Link::Params p;
  p.bandwidth = BandwidthTrace::from_slots({100'000, 0, 100'000}, 1000);
  p.quantum_ms = 5;
  Link link(sim, p);
  TimeMs done = -1;
  link.submit(150'000, [&](Bytes, bool c) { if (c) done = sim.now(); });
  sim.run();
  // 100 KB in second 0, nothing in second 1, 50 KB halfway through second 2.
  EXPECT_NEAR(static_cast<double>(done), 2500, 25);
}

TEST(Link, ConsumptionLogRecords) {
  Simulator sim;
  Link::Params p = fifo_params(100'000);
  p.record_consumption = true;
  Link link(sim, p);
  link.submit(50'000, [](Bytes, bool) {});
  sim.run();
  const auto& log = link.consumption_log();
  ASSERT_FALSE(log.empty());
  Bytes total = 0;
  for (auto& [t, b] : log) total += b;
  EXPECT_EQ(total, 50'000);
}

TEST(Link, SubmitFromCompletionCallback) {
  Simulator sim;
  Link link(sim, fifo_params(100'000));
  TimeMs second_done = -1;
  link.submit(10'000, [&](Bytes, bool c) {
    if (c) {
      link.submit(10'000, [&](Bytes, bool c2) {
        if (c2) second_done = sim.now();
      });
    }
  });
  sim.run();
  EXPECT_GT(second_done, 150);  // two sequential 100ms transfers
}

TEST(Link, ManySmallTransfersAllComplete) {
  Simulator sim;
  Link link(sim, fifo_params(1'000'000));
  int completed = 0;
  for (int i = 0; i < 200; ++i)
    link.submit(1000, [&](Bytes, bool c) { if (c) ++completed; });
  sim.run();
  EXPECT_EQ(completed, 200);
}

TEST(Link, CancelSiblingFromProgressCallbackSilencesIt) {
  // Re-entrancy regression: a ProgressFn cancelling a *different* in-flight
  // transfer mid-quantum must not leave the cancelled sibling with a stale
  // delivery — it gets no callbacks from that quantum on.
  Simulator sim;
  Link::Params p;
  p.bandwidth = BandwidthTrace::constant(100'000);
  p.sharing = Link::Sharing::kFairShare;
  Link link(sim, p);

  Link::TransferId victim = Link::kInvalidTransfer;
  int victim_calls_after_cancel = 0;
  bool cancelled = false;
  // Submission order matters: the canceller's callback must run while the
  // victim still has deliveries queued in the same quantum.
  link.submit(50'000, [&](Bytes, bool) {
    if (!cancelled && sim.now() > 100) {
      cancelled = true;
      EXPECT_TRUE(link.cancel(victim));
    }
  });
  victim = link.submit(50'000, [&](Bytes, bool) {
    if (cancelled) ++victim_calls_after_cancel;
  });
  sim.run();
  EXPECT_EQ(victim_calls_after_cancel, 0);
}

TEST(Link, CancelSiblingFromCompletionCallbackSilencesIt) {
  Simulator sim;
  Link::Params p;
  p.bandwidth = BandwidthTrace::constant(100'000);
  p.sharing = Link::Sharing::kFairShare;
  Link link(sim, p);

  Link::TransferId victim = Link::kInvalidTransfer;
  int victim_calls_after_cancel = 0;
  bool cancelled = false;
  // The small transfer completes while the big one is mid-flight; its
  // completion callback kills the big one from inside the delivery loop.
  link.submit(5'000, [&](Bytes, bool c) {
    if (c) {
      cancelled = true;
      EXPECT_TRUE(link.cancel(victim));
    }
  });
  victim = link.submit(200'000, [&](Bytes, bool) {
    if (cancelled) ++victim_calls_after_cancel;
  });
  sim.run();
  EXPECT_EQ(victim_calls_after_cancel, 0);
  EXPECT_EQ(link.active_transfers(), 0u);
}

}  // namespace
}  // namespace mfhttp
