// Tests for two-finger pinch recognition and the end-to-end zoom path
// (pinch trace -> PinchRecognizer -> Middleware viewport scale).
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "gesture/pinch.h"
#include "gesture/synthetic.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

std::optional<PinchGesture> run_trace(const TouchTrace& trace) {
  PinchRecognizer rec;
  std::optional<PinchGesture> out;
  for (const TouchEvent& ev : trace)
    if (auto g = rec.on_touch_event(ev)) out = g;
  return out;
}

TEST(PinchRecognizer, SpreadRecognizedAsZoomIn) {
  auto pinch = run_trace(synthesize_pinch({700, 1200}, 200, 600, 1000));
  ASSERT_TRUE(pinch.has_value());
  EXPECT_NEAR(pinch->scale_factor(), 3.0, 0.05);
  EXPECT_EQ(pinch->start_time_ms, 1000);
  EXPECT_EQ(pinch->end_time_ms, 1300);
  // Focus is computed when the first finger lifts; the partner's position is
  // one 16 ms sample stale, so allow a few px of skew.
  EXPECT_NEAR(pinch->focus.x, 700, 5);
  EXPECT_NEAR(pinch->focus.y, 1200, 5);
}

TEST(PinchRecognizer, SqueezeRecognizedAsZoomOut) {
  auto pinch = run_trace(synthesize_pinch({700, 1200}, 600, 200, 0));
  ASSERT_TRUE(pinch.has_value());
  EXPECT_NEAR(pinch->scale_factor(), 1.0 / 3.0, 0.02);
}

TEST(PinchRecognizer, TwoFingerTapIsNotAPinch) {
  // Spans barely change: below the slop, no pinch.
  auto pinch = run_trace(synthesize_pinch({700, 1200}, 300, 310, 0, 120));
  EXPECT_FALSE(pinch.has_value());
}

TEST(PinchRecognizer, SingleFingerNeverPinches) {
  PinchRecognizer rec;
  SwipeSpec spec;
  spec.start = {700, 1800};
  for (const TouchEvent& ev : synthesize_swipe(spec)) {
    EXPECT_FALSE(rec.on_touch_event(ev).has_value());
    EXPECT_FALSE(rec.is_pinch_active());
  }
}

TEST(PinchRecognizer, ActiveFlagDuringTwoFingerContact) {
  PinchRecognizer rec;
  TouchTrace trace = synthesize_pinch({700, 1200}, 200, 500, 0);
  bool was_active = false;
  for (const TouchEvent& ev : trace) {
    rec.on_touch_event(ev);
    if (rec.is_pinch_active()) was_active = true;
  }
  EXPECT_TRUE(was_active);
  EXPECT_FALSE(rec.is_pinch_active());  // both lifted
}

TEST(PinchRecognizer, ThirdPointerIgnored) {
  PinchRecognizer rec;
  EXPECT_FALSE(rec.on_touch_event({0, {1, 1}, TouchAction::kDown, 2}).has_value());
  EXPECT_FALSE(rec.is_pinch_active());
}

// ---------- middleware zoom path ----------

std::vector<MediaObject> column_objects(int count) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i)
    objects.push_back(make_single_version_object(
        "o" + std::to_string(i), Rect{100, i * 600.0, 800, 400}, 50'000,
        "http://s.example/i" + std::to_string(i)));
  return objects;
}

Middleware::Params middleware_params() {
  Middleware::Params p;
  p.tracker.scroll = ScrollConfig(kDevice);
  p.tracker.coverage_step_ms = 4.0;
  p.tracker.content_bounds = Rect{0, 0, 1440, 40'000};
  p.flow.weights = {1.0, 0.0};
  p.initial_viewport = {0, 0, 1440, 2560};
  return p;
}

TEST(PinchToMiddleware, ZoomInShrinksViewport) {
  Middleware mw(middleware_params(), column_objects(30),
                BandwidthTrace::constant(1e6), nullptr);
  PinchRecognizer rec;
  for (const TouchEvent& ev : synthesize_pinch({700, 1200}, 200, 400, 500))
    if (auto pinch = rec.on_touch_event(ev)) mw.on_pinch(*pinch);
  EXPECT_NEAR(mw.viewport_scale(), 2.0, 0.05);
  EXPECT_NEAR(mw.viewport_at(1000).w, 1440 / mw.viewport_scale(), 1e-6);
}

TEST(PinchToMiddleware, ZoomOutClampsAtMinScale) {
  Middleware mw(middleware_params(), column_objects(30),
                BandwidthTrace::constant(1e6), nullptr);
  PinchRecognizer rec;
  // Squeeze at scale 1: clamped to the 1.0 floor (no zoom-out past fit).
  for (const TouchEvent& ev : synthesize_pinch({700, 1200}, 600, 200, 500))
    if (auto pinch = rec.on_touch_event(ev)) mw.on_pinch(*pinch);
  EXPECT_DOUBLE_EQ(mw.viewport_scale(), 1.0);
}

TEST(PinchToMiddleware, SuccessivePinchesCompound) {
  Middleware mw(middleware_params(), column_objects(30),
                BandwidthTrace::constant(1e6), nullptr);
  PinchRecognizer rec;
  for (const TouchEvent& ev : synthesize_pinch({700, 1200}, 200, 400, 500))
    if (auto pinch = rec.on_touch_event(ev)) mw.on_pinch(*pinch);
  for (const TouchEvent& ev : synthesize_pinch({700, 1200}, 200, 400, 2000))
    if (auto pinch = rec.on_touch_event(ev)) mw.on_pinch(*pinch);
  EXPECT_NEAR(mw.viewport_scale(), 4.0, 0.2);
}

}  // namespace
}  // namespace mfhttp
