// Tests for the HTTP/1.1 substrate: headers, URLs, messages, the incremental
// parser (including byte-at-a-time feeds, chunked coding, pipelining and
// malformed input), and the object store.
#include <gtest/gtest.h>

#include "http/header_map.h"
#include "http/message.h"
#include "http/object_store.h"
#include "http/parser.h"
#include "http/url.h"

namespace mfhttp {
namespace {

// ---------- HeaderMap ----------

TEST(HeaderMap, CaseInsensitiveGet) {
  HeaderMap h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("content-length").has_value());
}

TEST(HeaderMap, DuplicatesPreserved) {
  HeaderMap h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2");
  auto all = h.get_all("set-cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2");
  EXPECT_EQ(h.get("Set-Cookie"), "a=1");  // first wins
}

TEST(HeaderMap, SetReplacesAll) {
  HeaderMap h;
  h.add("X", "1");
  h.add("X", "2");
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeaderMap, RemoveCountsRemoved) {
  HeaderMap h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  EXPECT_EQ(h.remove("A"), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.remove("A"), 0u);
}

TEST(HeaderMap, ContentLengthParsing) {
  HeaderMap h;
  h.set("Content-Length", "12345");
  EXPECT_EQ(h.content_length(), 12345);
  h.set("Content-Length", " 99 ");
  EXPECT_EQ(h.content_length(), 99);
  h.set("Content-Length", "12a");
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "-5");
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "");
  EXPECT_FALSE(h.content_length().has_value());
}

// ---------- Url ----------

TEST(Url, ParseBasic) {
  auto u = parse_url("http://example.com/path/to/x?q=1");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme, "http");
  EXPECT_EQ(u->host, "example.com");
  EXPECT_EQ(u->port, 80);
  EXPECT_EQ(u->path, "/path/to/x");
  EXPECT_EQ(u->query, "q=1");
  EXPECT_EQ(u->path_and_query(), "/path/to/x?q=1");
}

TEST(Url, ParsePort) {
  auto u = parse_url("http://example.com:8080/x");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->port, 8080);
  EXPECT_EQ(u->to_string(), "http://example.com:8080/x");
}

TEST(Url, HttpsDefaultPort) {
  auto u = parse_url("https://secure.example");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->port, 443);
  EXPECT_EQ(u->path, "/");
}

TEST(Url, HostLowercased) {
  auto u = parse_url("http://EXAMPLE.Com/X");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->host, "example.com");
  EXPECT_EQ(u->path, "/X");  // path case preserved
}

TEST(Url, RoundTripToString) {
  for (const char* s : {"http://a.example/x/y?z=1", "http://a.example/",
                        "http://a.example:81/p"}) {
    auto u = parse_url(s);
    ASSERT_TRUE(u.has_value()) << s;
    EXPECT_EQ(u->to_string(), s);
  }
}

TEST(Url, Malformed) {
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("example.com/x").has_value());
  EXPECT_FALSE(parse_url("ftp://example.com/").has_value());
  EXPECT_FALSE(parse_url("http://").has_value());
  EXPECT_FALSE(parse_url("http://host:99999/").has_value());
  EXPECT_FALSE(parse_url("http://host:abc/").has_value());
  EXPECT_FALSE(parse_url("http://host:/").has_value());
}

// ---------- Messages ----------

TEST(HttpRequest, GetFactorySetsHostAndTarget) {
  auto req = HttpRequest::get("http://site.example/img/1.jpg?v=2");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/img/1.jpg?v=2");
  EXPECT_EQ(req.headers.get("Host"), "site.example");
  auto url = req.url();
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->to_string(), "http://site.example/img/1.jpg?v=2");
}

TEST(HttpRequest, NonDefaultPortInHost) {
  auto req = HttpRequest::get("http://site.example:8081/x");
  EXPECT_EQ(req.headers.get("Host"), "site.example:8081");
  ASSERT_TRUE(req.url().has_value());
  EXPECT_EQ(req.url()->port, 8081);
}

TEST(HttpRequest, SerializeAddsContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/submit";
  req.headers.set("Host", "h");
  req.body = "hello";
  std::string wire = req.serialize();
  EXPECT_NE(wire.find("POST /submit HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpResponse, MakeSetsReasonAndLength) {
  auto resp = HttpResponse::make(404, "", "gone");
  EXPECT_EQ(resp.reason, "Not Found");
  EXPECT_EQ(resp.headers.get("Content-Length"), "4");
  std::string wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
}

TEST(DefaultReason, CoversCommonCodes) {
  EXPECT_EQ(default_reason(200), "OK");
  EXPECT_EQ(default_reason(403), "Forbidden");
  EXPECT_EQ(default_reason(502), "Bad Gateway");
  EXPECT_EQ(default_reason(299), "Unknown");
}

// ---------- Parser: requests ----------

TEST(HttpParser, SimpleGetRequest) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("GET /x HTTP/1.1\r\nHost: h\r\n\r\n"));
  ASSERT_TRUE(p.has_message());
  HttpRequest req = p.take_request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/x");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.headers.get("Host"), "h");
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpParser, RequestWithBody) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"));
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_request().body, "hello");
}

TEST(HttpParser, ByteAtATime) {
  HttpParser p(HttpParser::Mode::kRequest);
  std::string wire = "POST /s HTTP/1.1\r\nContent-Length: 5\r\nX-A: b\r\n\r\nhello";
  for (char c : wire) ASSERT_TRUE(p.feed(std::string_view(&c, 1)));
  ASSERT_TRUE(p.has_message());
  HttpRequest req = p.take_request();
  EXPECT_EQ(req.body, "hello");
  EXPECT_EQ(req.headers.get("X-A"), "b");
}

TEST(HttpParser, PipelinedRequests) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(p.message_count(), 2u);
  EXPECT_EQ(p.take_request().target, "/1");
  EXPECT_EQ(p.take_request().target, "/2");
}

TEST(HttpParser, ToleratesBareLf) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("GET /x HTTP/1.1\nHost: h\n\n"));
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_request().headers.get("Host"), "h");
}

TEST(HttpParser, SkipsBlankLinesBetweenMessages) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("\r\n\r\nGET /x HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(p.has_message());
}

TEST(HttpParser, MalformedRequestLine) {
  HttpParser p(HttpParser::Mode::kRequest);
  EXPECT_FALSE(p.feed("NONSENSE\r\n\r\n"));
  EXPECT_TRUE(p.has_error());
  // Further input ignored.
  EXPECT_FALSE(p.feed("GET /x HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(p.has_message());
}

TEST(HttpParser, MalformedHeader) {
  HttpParser p(HttpParser::Mode::kRequest);
  EXPECT_FALSE(p.feed("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"));
  EXPECT_TRUE(p.has_error());
}

TEST(HttpParser, HeaderWhitespaceTrimmed) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed("GET /x HTTP/1.1\r\nX-K:   padded value  \r\n\r\n"));
  EXPECT_EQ(p.take_request().headers.get("X-K"), "padded value");
}

// ---------- Parser: responses ----------

TEST(HttpParser, SimpleResponse) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"));
  ASSERT_TRUE(p.has_message());
  HttpResponse resp = p.take_response();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.reason, "OK");
  EXPECT_EQ(resp.body, "abc");
}

TEST(HttpParser, MultiWordReason) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(p.take_response().reason, "Not Found");
}

TEST(HttpParser, BodilessStatuses) {
  for (const char* line :
       {"HTTP/1.1 204 No Content\r\n\r\n", "HTTP/1.1 304 Not Modified\r\n\r\n",
        "HTTP/1.1 100 Continue\r\n\r\n"}) {
    HttpParser p(HttpParser::Mode::kResponse);
    ASSERT_TRUE(p.feed(line)) << line;
    ASSERT_TRUE(p.has_message()) << line;
    EXPECT_TRUE(p.take_response().body.empty());
  }
}

TEST(HttpParser, HeadResponseHasNoBody) {
  HttpParser p(HttpParser::Mode::kResponse);
  p.expect_head_response();
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nContent-Length: 500\r\n\r\n"));
  ASSERT_TRUE(p.has_message());
  EXPECT_TRUE(p.take_response().body.empty());
}

TEST(HttpParser, ReadUntilCloseBody) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\n\r\npartial body"));
  EXPECT_FALSE(p.has_message());  // body open until EOF
  ASSERT_TRUE(p.feed(" more"));
  p.finish();
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_response().body, "partial body more");
}

TEST(HttpParser, ChunkedBody) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(
      p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
             "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"));
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_response().body, "hello world");
}

TEST(HttpParser, ChunkedWithExtensionsAndHexSizes) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(
      p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
             "A;ext=1\r\n0123456789\r\n0\r\n\r\n"));
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_response().body.size(), 10u);
}

TEST(HttpParser, ChunkedWithTrailers) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(
      p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
             "3\r\nabc\r\n0\r\nX-Trailer: yes\r\n\r\n"));
  ASSERT_TRUE(p.has_message());
  HttpResponse resp = p.take_response();
  EXPECT_EQ(resp.body, "abc");
  EXPECT_EQ(resp.headers.get("X-Trailer"), "yes");
}

TEST(HttpParser, ChunkedByteAtATime) {
  HttpParser p(HttpParser::Mode::kResponse);
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nwxyz\r\n0\r\n\r\n";
  for (char c : wire) ASSERT_TRUE(p.feed(std::string_view(&c, 1)));
  ASSERT_TRUE(p.has_message());
  EXPECT_EQ(p.take_response().body, "wxyz");
}

TEST(HttpParser, BadChunkSize) {
  HttpParser p(HttpParser::Mode::kResponse);
  EXPECT_FALSE(
      p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"));
  EXPECT_TRUE(p.has_error());
}

TEST(HttpParser, MissingCrlfAfterChunk) {
  HttpParser p(HttpParser::Mode::kResponse);
  EXPECT_FALSE(
      p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
             "3\r\nabcX\r\n"));
  EXPECT_TRUE(p.has_error());
}

TEST(HttpParser, TruncatedBodyOnFinishIsError) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"));
  p.finish();
  EXPECT_TRUE(p.has_error());
}

TEST(HttpParser, CleanFinishAtMessageBoundary) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"));
  p.finish();
  EXPECT_FALSE(p.has_error());
}

TEST(HttpParser, BadStatusCode) {
  HttpParser p(HttpParser::Mode::kResponse);
  EXPECT_FALSE(p.feed("HTTP/1.1 20x OK\r\n\r\n"));
  EXPECT_TRUE(p.has_error());
}

TEST(HttpParser, SerializeParseRoundTrip) {
  HttpRequest req = HttpRequest::get("http://h.example/a/b?c=d");
  req.headers.add("Accept", "image/*");
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.feed(req.serialize()));
  ASSERT_TRUE(p.has_message());
  HttpRequest back = p.take_request();
  EXPECT_EQ(back.method, req.method);
  EXPECT_EQ(back.target, req.target);
  EXPECT_EQ(back.headers.get("Host"), req.headers.get("Host"));
  EXPECT_EQ(back.headers.get("Accept"), "image/*");
}

TEST(HttpParser, ResponseSerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::make(200, "OK", "payload", "text/plain");
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.feed(resp.serialize()));
  ASSERT_TRUE(p.has_message());
  HttpResponse back = p.take_response();
  EXPECT_EQ(back.status, 200);
  EXPECT_EQ(back.body, "payload");
  EXPECT_EQ(back.headers.get("Content-Type"), "text/plain");
}

// ---------- ObjectStore ----------

TEST(ObjectStore, PutAndFind) {
  ObjectStore store;
  store.put("/img/1.jpg", 1234, "image/jpeg");
  const StoredObject* obj = store.find("/img/1.jpg");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->wire_size(), 1234);
  EXPECT_EQ(obj->content_type, "image/jpeg");
  EXPECT_EQ(store.find("/missing"), nullptr);
}

TEST(ObjectStore, BodyWinsOverSize) {
  ObjectStore store;
  store.put_body("/x", "hello world");
  EXPECT_EQ(store.find("/x")->wire_size(), 11);
}

TEST(ObjectStore, ReplaceExisting) {
  ObjectStore store;
  store.put("/x", 10);
  store.put("/x", 20);
  EXPECT_EQ(store.find("/x")->wire_size(), 20);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStore, TotalBytes) {
  ObjectStore store;
  store.put("/a", 10);
  store.put("/b", 30);
  store.put_body("/c", "xyz");
  EXPECT_EQ(store.total_bytes(), 43);
}

}  // namespace
}  // namespace mfhttp
