// Tests for the overload-protection subsystem (ISSUE 3): token buckets,
// admission control (bounded queues, priority guards, shedding order),
// brownout hysteresis, the JSON config loader, and the multi-session driver
// (determinism, zero stranded requests, protection beating no protection).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "overload/admission.h"
#include "overload/brownout.h"
#include "overload/config.h"
#include "overload/token_bucket.h"
#include "sim/arrivals.h"
#include "sim/multi_session.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mfhttp::overload {
namespace {

// ---------- TokenBucket ----------

TEST(TokenBucket, BurstDrainsThenRefillsAtRate) {
  TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.enabled());
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));  // burst exhausted
  EXPECT_FALSE(bucket.try_take(400));  // 0.8 tokens accrued — not enough
  EXPECT_TRUE(bucket.try_take(500));   // 1.0 token accrued
  EXPECT_FALSE(bucket.try_take(500));
}

TEST(TokenBucket, LevelIsCappedAtBurst) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/3.0);
  EXPECT_DOUBLE_EQ(bucket.level(0), 3.0);
  EXPECT_DOUBLE_EQ(bucket.level(60'000), 3.0);  // idle forever: still 3
  EXPECT_TRUE(bucket.try_take(60'000));
  EXPECT_DOUBLE_EQ(bucket.level(60'000), 2.0);
}

TEST(TokenBucket, DisabledBucketAlwaysAdmits) {
  TokenBucket bucket(/*rate_per_s=*/0, /*burst=*/0);
  EXPECT_FALSE(bucket.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0));
}

TEST(TokenBucket, TimeNeverRunsBackwards) {
  TokenBucket bucket(/*rate_per_s=*/1.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.try_take(1000));
  // A stale timestamp must not mint tokens (or crash).
  EXPECT_FALSE(bucket.try_take(500));
  EXPECT_FALSE(bucket.try_take(1000));
  EXPECT_TRUE(bucket.try_take(2000));
}

// ---------- AdmissionController: rate limiting & determinism ----------

AdmissionParams rate_limited_params() {
  AdmissionParams p;
  p.global_rate_per_s = 10;
  p.global_burst = 4;
  p.session_rate_per_s = 2;
  p.session_burst = 2;
  p.seed = 7;
  return p;
}

TEST(Admission, SessionBucketIsolatesHotNeighbour) {
  AdmissionController admission(rate_limited_params());
  // Session "hot" burns through its own bucket...
  EXPECT_TRUE(admission.on_request("hot", kPriorityViewport, 0).admitted());
  EXPECT_TRUE(admission.on_request("hot", kPriorityViewport, 0).admitted());
  Decision d = admission.on_request("hot", kPriorityViewport, 0);
  EXPECT_EQ(d.verdict, Verdict::kReject);
  EXPECT_STREQ(d.reason, "session_rate");
  // ...but "cold" still has tokens of its own (and the global bucket has 2).
  EXPECT_TRUE(admission.on_request("cold", kPriorityViewport, 0).admitted());
}

TEST(Admission, GlobalBucketCapsAggregateRate) {
  AdmissionParams p = rate_limited_params();
  p.session_rate_per_s = 0;  // sessions unlimited: only the global gate
  AdmissionController admission(p);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    const std::string session = "s" + std::to_string(i);
    if (admission.on_request(session, kPriorityViewport, 0).admitted()) ++admitted;
  }
  EXPECT_EQ(admitted, 4);  // exactly the global burst
  EXPECT_STREQ(admission.on_request("s0", kPriorityViewport, 0).reason,
               "global_rate");
}

// Same seed + same request trace => identical admit trace. The guard jitter
// is the only stochastic ingredient; it must come from the seeded Rng.
TEST(Admission, SameSeedSameAdmitTrace) {
  auto run_trace = [] {
    AdmissionController admission(rate_limited_params());
    std::vector<int> verdicts;
    Rng rng(99);  // request trace generator, independent of the controller
    for (int i = 0; i < 200; ++i) {
      const std::string session = "s" + std::to_string(i % 5);
      const int priority = static_cast<int>(rng.uniform(0, 4));
      const TimeMs now = static_cast<TimeMs>(i * 37 % 5000);
      verdicts.push_back(
          static_cast<int>(admission.on_request(session, priority, now).verdict));
    }
    return verdicts;
  };
  EXPECT_EQ(run_trace(), run_trace());
}

TEST(Admission, PriorityGuardReservesBucketTailForCriticalWork) {
  AdmissionParams p;
  p.global_rate_per_s = 10;
  p.global_burst = 10;
  p.session_rate_per_s = 0;
  p.guard_jitter = 0;  // exact thresholds for the assertion
  AdmissionController admission(p);
  // Drain the global bucket to 4/10 = 40%: below the speculative guard (50%)
  // but above the transient guard (25%).
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(admission.on_request("a", kPriorityViewport, 0).admitted());
  }
  Decision spec = admission.on_request("a", kPrioritySpeculative, 0);
  EXPECT_EQ(spec.verdict, Verdict::kReject);
  EXPECT_STREQ(spec.reason, "priority_guard");
  EXPECT_TRUE(admission.on_request("a", kPriorityTransient, 0).admitted());
  EXPECT_TRUE(admission.on_request("a", kPriorityViewport, 0).admitted());
  // Now at 2/10 = 20%: transient falls below its guard too, viewport passes.
  EXPECT_STREQ(admission.on_request("a", kPriorityTransient, 0).reason,
               "priority_guard");
  EXPECT_TRUE(admission.on_request("a", kPriorityViewport, 0).admitted());
}

// ---------- AdmissionController: bounded queues & concurrency ----------

TEST(Admission, DeferredQueueBoundsPerSessionAndGlobal) {
  AdmissionParams p;
  p.max_deferred_per_session = 2;
  p.max_deferred_global = 3;
  AdmissionController admission(p);
  EXPECT_TRUE(admission.try_defer("a"));
  EXPECT_TRUE(admission.try_defer("a"));
  EXPECT_FALSE(admission.try_defer("a"));  // per-session bound
  EXPECT_TRUE(admission.try_defer("b"));
  EXPECT_FALSE(admission.try_defer("b"));  // global bound (3 parked)
  EXPECT_EQ(admission.deferred_total(), 3);

  admission.on_undefer("a");
  EXPECT_TRUE(admission.try_defer("b"));  // global room again
  admission.on_undefer("missing-session");  // harmless no-op
  EXPECT_EQ(admission.deferred_total(), 3);
}

TEST(Admission, UpstreamSlotsAreAHardCap) {
  AdmissionParams p;
  p.max_inflight_upstream = 2;
  AdmissionController admission(p);
  EXPECT_TRUE(admission.try_acquire_upstream());
  EXPECT_TRUE(admission.try_acquire_upstream());
  EXPECT_FALSE(admission.try_acquire_upstream());
  EXPECT_EQ(admission.inflight_upstream(), 2);
  admission.release_upstream();
  EXPECT_TRUE(admission.try_acquire_upstream());
}

TEST(Admission, DispatchRoomHonoursBound) {
  AdmissionParams p;
  p.max_dispatch_queue = 2;
  AdmissionController admission(p);
  EXPECT_TRUE(admission.has_dispatch_room(0));
  EXPECT_TRUE(admission.has_dispatch_room(1));
  EXPECT_FALSE(admission.has_dispatch_room(2));
  p.max_dispatch_queue = 0;  // unbounded
  AdmissionController unbounded(p);
  EXPECT_TRUE(unbounded.has_dispatch_room(1'000'000));
}

// ---------- AdmissionController: brownout shedding order ----------

TEST(Admission, SheddingOrderSpeculativeFirstStructureNever) {
  AdmissionController admission((AdmissionParams{}));  // only the brownout gate

  admission.set_brownout_level(BrownoutLevel::kNoSpeculation);
  EXPECT_EQ(admission.on_request("s", kPrioritySpeculative, 0).verdict,
            Verdict::kShed);
  EXPECT_TRUE(admission.on_request("s", kPriorityTransient, 0).admitted());
  EXPECT_TRUE(admission.on_request("s", kPriorityViewport, 0).admitted());
  EXPECT_TRUE(admission.on_request("s", kPriorityStructure, 0).admitted());

  admission.set_brownout_level(BrownoutLevel::kLowResOnly);
  EXPECT_EQ(admission.on_request("s", kPrioritySpeculative, 0).verdict,
            Verdict::kShed);
  EXPECT_EQ(admission.on_request("s", kPriorityTransient, 0).verdict,
            Verdict::kShed);
  EXPECT_TRUE(admission.on_request("s", kPriorityViewport, 0).admitted());
  EXPECT_TRUE(admission.on_request("s", kPriorityStructure, 0).admitted());

  admission.set_brownout_level(BrownoutLevel::kShed);
  EXPECT_EQ(admission.on_request("s", kPriorityViewport, 0).verdict,
            Verdict::kShed);
  EXPECT_STREQ(admission.on_request("s", kPriorityViewport, 0).reason,
               "brownout");
  // A page that loads nothing is worse than a slow page: structure survives
  // even the deepest brownout.
  EXPECT_TRUE(admission.on_request("s", kPriorityStructure, 0).admitted());

  admission.set_brownout_level(BrownoutLevel::kNormal);
  EXPECT_TRUE(admission.on_request("s", kPrioritySpeculative, 0).admitted());
}

// ---------- BrownoutSupervisor ----------

struct BrownoutFixture : public ::testing::Test {
  BrownoutParams fast_params() {
    BrownoutParams p;
    p.tick_ms = 100;
    p.queue_depth_high = 10;
    p.deferred_age_high_ms = 1000;
    p.goodput_floor = 50'000;
    p.hysteresis = {/*enter_after=*/2, /*exit_after=*/3};
    return p;
  }

  Simulator sim;
  BrownoutSignals signals;  // mutated by the test; read by the sampler
};

TEST_F(BrownoutFixture, EnterNeedsConsecutiveBadTicks) {
  BrownoutSupervisor supervisor(sim, fast_params(), [this] { return signals; });
  std::vector<int> changes;
  supervisor.start([&](BrownoutLevel l) { changes.push_back(static_cast<int>(l)); });
  ASSERT_EQ(changes.size(), 1u);  // aligned immediately at kNormal
  EXPECT_EQ(changes[0], 0);

  signals.goodput = 100'000;  // healthy link: keep that signal quiet
  signals.queue_depth = 50;   // one threshold breached: pressure 1
  sim.run_until(100);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kNormal);  // 1 bad tick: holds
  EXPECT_EQ(supervisor.last_pressure(), 1);
  sim.run_until(200);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kNoSpeculation);  // 2nd flips
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1], 1);
  supervisor.stop();
}

TEST_F(BrownoutFixture, ExitNeedsLongerGoodStreakThanEntry) {
  BrownoutSupervisor supervisor(sim, fast_params(), [this] { return signals; });
  supervisor.start(nullptr);
  signals.goodput = 100'000;
  signals.queue_depth = 50;
  sim.run_until(200);
  ASSERT_EQ(supervisor.level(), BrownoutLevel::kNoSpeculation);

  signals.queue_depth = 0;  // pressure clears immediately...
  sim.run_until(400);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kNoSpeculation);  // 2 good: holds
  sim.run_until(500);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kNormal);  // 3rd good tick exits
  supervisor.stop();
}

TEST_F(BrownoutFixture, DeepPressureEscalatesOneLevelPerEnterWindow) {
  BrownoutSupervisor supervisor(sim, fast_params(), [this] { return signals; });
  supervisor.start(nullptr);
  // All three thresholds breached at once: queue deep, parked work old, link
  // moving nothing while loaded.
  signals.queue_depth = 50;
  signals.max_deferred_age_ms = 5000;
  signals.goodput = 0;
  signals.inflight = 4;
  sim.run_until(200);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kShed);  // straight to level 3
  EXPECT_EQ(supervisor.last_pressure(), 3);
  supervisor.stop();
}

TEST_F(BrownoutFixture, IdleLinkWithLowGoodputIsNotPressure) {
  BrownoutSupervisor supervisor(sim, fast_params(), [this] { return signals; });
  supervisor.start(nullptr);
  signals.goodput = 0;  // nothing queued, nothing in flight: legitimately idle
  sim.run_until(1000);
  EXPECT_EQ(supervisor.level(), BrownoutLevel::kNormal);
  EXPECT_EQ(supervisor.last_pressure(), 0);
  supervisor.stop();
}

TEST_F(BrownoutFixture, StopCancelsTicksSoTheQueueDrains) {
  BrownoutSupervisor supervisor(sim, fast_params(), [this] { return signals; });
  supervisor.start(nullptr);
  sim.schedule_at(250, [&] { supervisor.stop(); });
  sim.run();  // must terminate — no self-rearming tick may survive stop()
  EXPECT_EQ(sim.now(), 250);
}

// ---------- OverloadConfig ----------

TEST(OverloadConfig, RoundTripsThroughJson) {
  OverloadConfig config;
  config.admission.global_rate_per_s = 120;
  config.admission.global_burst = 40;
  config.admission.max_inflight_upstream = 16;
  config.admission.seed = 99;
  config.brownout.tick_ms = 125;
  config.brownout.queue_depth_high = 7;
  config.brownout.hysteresis = {3, 5};

  std::string error;
  auto parsed = OverloadConfig::from_json(config.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->admission.global_rate_per_s, 120);
  EXPECT_DOUBLE_EQ(parsed->admission.global_burst, 40);
  EXPECT_EQ(parsed->admission.max_inflight_upstream, 16);
  EXPECT_EQ(parsed->admission.seed, 99u);
  EXPECT_EQ(parsed->brownout.tick_ms, 125);
  EXPECT_EQ(parsed->brownout.queue_depth_high, 7);
  EXPECT_EQ(parsed->brownout.hysteresis.enter_after, 3);
  EXPECT_EQ(parsed->brownout.hysteresis.exit_after, 5);
}

TEST(OverloadConfig, AbsentFieldsKeepDefaults) {
  std::string error;
  auto parsed = OverloadConfig::from_json("{}", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const OverloadConfig defaults;
  EXPECT_DOUBLE_EQ(parsed->admission.global_rate_per_s,
                   defaults.admission.global_rate_per_s);
  EXPECT_EQ(parsed->brownout.tick_ms, defaults.brownout.tick_ms);
}

TEST(OverloadConfig, MalformedJsonReportsLineAndColumn) {
  std::string error;
  auto parsed = OverloadConfig::from_json("{\n  \"admission\": {\n    oops\n", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("column"), std::string::npos) << error;
}

TEST(OverloadConfig, SchemaViolationNamesTheField) {
  std::string error;
  auto parsed = OverloadConfig::from_json(
      R"({"admission": {"global_rate_per_s": "fast"}})", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("global_rate_per_s"), std::string::npos) << error;
}

TEST(OverloadConfig, MissingFileReportsPathAndCause) {
  std::string error;
  auto parsed = OverloadConfig::load("/nonexistent/overload.json", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("/nonexistent/overload.json"), std::string::npos) << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---------- Arrival schedules ----------

TEST(Arrivals, PoissonScheduleIsSeedDeterministicAndOrdered) {
  ArrivalParams p{/*rate_per_s=*/5.0, /*start_ms=*/0, /*horizon_ms=*/10'000};
  Rng a(42), b(42), c(43);
  const std::vector<TimeMs> first = poisson_arrivals(p, a);
  EXPECT_EQ(first, poisson_arrivals(p, b));
  EXPECT_NE(first, poisson_arrivals(p, c));
  ASSERT_FALSE(first.empty());
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GT(first[i], first[i - 1]);  // strictly increasing
  }
  EXPECT_LT(first.back(), 10'000);
}

// ---------- Multi-session driver ----------

MultiSessionConfig small_config(Protection arm) {
  MultiSessionConfig config;
  config.sessions = 12;
  config.rate_per_session_per_s = 2.0;
  config.horizon_ms = 3000;
  config.protection = arm;
  return config;
}

TEST(MultiSession, NoArmStrandsARequest) {
  for (Protection arm :
       {Protection::kNone, Protection::kBoundedOnly, Protection::kFull}) {
    MultiSessionResult r = run_multi_session(small_config(arm));
    EXPECT_EQ(r.stranded, 0u) << to_string(arm);
    EXPECT_EQ(r.completed + r.rejected + r.shed + r.failed, r.requests)
        << to_string(arm);
  }
}

TEST(MultiSession, SameSeedSameResult) {
  const MultiSessionResult a = run_multi_session(small_config(Protection::kFull));
  const MultiSessionResult b = run_multi_session(small_config(Protection::kFull));
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(MultiSession, ProtectionBeatsNoProtectionUnderOverload) {
  const MultiSessionResult none = run_multi_session(small_config(Protection::kNone));
  const MultiSessionResult full = run_multi_session(small_config(Protection::kFull));
  EXPECT_GT(full.goodput_bytes_per_s, none.goodput_bytes_per_s);
  EXPECT_GT(full.shed_ratio, 0.0);  // protection is doing something
}

}  // namespace
}  // namespace mfhttp::overload
