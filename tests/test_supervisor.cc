// Tests for the self-healing front door (DESIGN.md §14, ISSUE 7):
//
//   * FrontDoorSupervisor — the healthy → slow → wedged → recovered state
//     machine driven deterministically through sample() with a synthetic
//     clock: threshold edges, hysteresis debouncing, the crash fast path,
//     idle-is-healthy, and the published mask/epoch/callback protocol;
//   * failover_shard_of — rendezvous re-routing is deterministic, lands
//     only on healthy shards, spreads load, and reverts on recovery;
//   * overload::failover_slice / apply_budget — the wedged shard's budget
//     slice is re-distributed over the healthy cohort with the seed keyed
//     to the ORIGINAL shard index;
//   * chaos plans — fault::ShardFault JSON round-trips and rejects
//     malformed entries;
//   * the chaos harness end to end — a crash plan under supervision fails
//     new sessions over and completes at least as much as the
//     unsupervised run, with every event accounted for; and the shards=1
//     byte-identity gate holds with supervision enabled and no faults.
//
// Suite names match the ThreadSanitizer job's -R 'Supervisor|Chaos'
// selection.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "http/frontdoor.h"
#include "http/frontdoor_supervisor.h"
#include "overload/admission.h"
#include "sim/frontdoor_load.h"

namespace mfhttp {
namespace {

constexpr std::uint64_t kMs = 1'000'000ULL;  // synthetic-clock millisecond

// Thresholds small enough to walk through by hand: slow at 20 ms, wedged
// at 60 ms, two consecutive breaching samples to declare, two progressing
// samples to recover.
SupervisorParams tight_params() {
  SupervisorParams p;
  p.enabled = true;
  p.check_interval_ms = 2;
  p.slow_after_ms = 20;
  p.wedged_after_ms = 60;
  p.hysteresis = {2, 2};
  return p;
}

// ---------- The supervisor state machine ----------

TEST(Supervisor, StartsAllHealthyWithFullMask) {
  FrontDoorSupervisor sup(tight_params(), 3);
  EXPECT_EQ(sup.healthy_mask(), 0b111ULL);
  EXPECT_EQ(sup.healthy_count(), 3u);
  EXPECT_EQ(sup.epoch(), 0u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(sup.health(i), ShardHealth::kHealthy);
}

TEST(Supervisor, HealthySlowWedgedRecoveredWalk) {
  FrontDoorSupervisor sup(tight_params(), 2);
  ShardHeartbeat hb;
  hb.busy.store(true);  // mid-event: the idle escape hatch must not apply
  std::size_t depth = 1;
  sup.attach(0, &hb, [&depth] { return depth; });
  hb.fault_onset_ns.store(5 * kMs);  // chaos fault fired at t=5ms

  std::vector<std::pair<std::uint64_t, std::size_t>> mask_changes;
  sup.set_on_mask_change([&](std::uint64_t mask, std::size_t healthy) {
    mask_changes.emplace_back(mask, healthy);
  });

  sup.sample(1 * kMs);  // first look only arms the stall clock
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);

  sup.sample(10 * kMs);  // 9 ms stalled: below every threshold
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);

  sup.sample(25 * kMs);  // 24 ms >= slow_after: slow, but routing untouched
  EXPECT_EQ(sup.health(0), ShardHealth::kSlow);
  EXPECT_EQ(sup.healthy_mask(), 0b11ULL);

  sup.sample(70 * kMs);  // first wedged-breaching sample: hysteresis holds
  EXPECT_EQ(sup.health(0), ShardHealth::kSlow);
  EXPECT_EQ(sup.wedged_declared_total(), 0u);

  sup.sample(75 * kMs);  // second consecutive breach: wedged declared
  EXPECT_EQ(sup.health(0), ShardHealth::kWedged);
  EXPECT_EQ(sup.healthy_mask(), 0b10ULL);
  EXPECT_EQ(sup.healthy_count(), 1u);
  EXPECT_EQ(sup.epoch(), 1u);
  EXPECT_EQ(sup.wedged_declared_total(), 1u);
  ASSERT_EQ(mask_changes.size(), 1u);
  EXPECT_EQ(mask_changes[0].first, 0b10ULL);
  EXPECT_EQ(mask_changes[0].second, 1u);

  hb.progress.fetch_add(1);
  sup.sample(80 * kMs);  // first progressing sample: still wedged
  EXPECT_EQ(sup.health(0), ShardHealth::kWedged);

  hb.progress.fetch_add(1);
  sup.sample(85 * kMs);  // second consecutive: recovered, mask restored
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(sup.healthy_mask(), 0b11ULL);
  EXPECT_EQ(sup.epoch(), 2u);
  EXPECT_EQ(sup.recovered_total(), 1u);
  ASSERT_EQ(mask_changes.size(), 2u);
  EXPECT_EQ(mask_changes[1].first, 0b11ULL);
  EXPECT_EQ(mask_changes[1].second, 2u);

  // Outcome stats: wedged at 75 ms against a 5 ms fault onset, recovered
  // 10 ms later.
  const FrontDoorSupervisor::ShardStats stats = sup.shard_stats(0);
  EXPECT_EQ(stats.wedged_spells, 1u);
  EXPECT_DOUBLE_EQ(stats.time_to_detect_ms, 70.0);
  EXPECT_DOUBLE_EQ(stats.time_to_recover_ms, 10.0);
  // Shard 1 was never attached and never classified.
  EXPECT_EQ(sup.health(1), ShardHealth::kHealthy);
}

TEST(Supervisor, CrashFastPathSkipsHysteresis) {
  FrontDoorSupervisor sup(tight_params(), 2);
  ShardHeartbeat hb;
  sup.attach(0, &hb, {});
  sup.sample(1 * kMs);
  EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);

  // The worker self-reported a crash: one sample is enough, no stall
  // thresholds and no consecutive-breach debouncing apply.
  hb.serving.store(false);
  sup.sample(3 * kMs);
  EXPECT_EQ(sup.health(0), ShardHealth::kWedged);
  EXPECT_EQ(sup.healthy_mask(), 0b10ULL);
  EXPECT_EQ(sup.wedged_declared_total(), 1u);
  EXPECT_EQ(sup.shard_stats(0).wedged_spells, 1u);

  // A crashed shard never recovers, no matter how long we watch.
  sup.sample(500 * kMs);
  EXPECT_EQ(sup.health(0), ShardHealth::kWedged);
  EXPECT_EQ(sup.recovered_total(), 0u);
}

TEST(Supervisor, IdleShardStaysHealthyForever) {
  FrontDoorSupervisor sup(tight_params(), 1);
  ShardHeartbeat hb;  // progress frozen at 0, busy false
  std::size_t depth = 0;
  sup.attach(0, &hb, [&depth] { return depth; });
  sup.sample(1 * kMs);
  // No progress for 10 seconds — but nothing is queued and the worker is
  // between events: genuinely idle, never slow, never wedged.
  for (std::uint64_t t = 100; t <= 10'000; t += 100) {
    sup.sample(t * kMs);
    ASSERT_EQ(sup.health(0), ShardHealth::kHealthy) << "t=" << t;
  }
  EXPECT_EQ(sup.wedged_declared_total(), 0u);
  EXPECT_EQ(sup.healthy_mask(), 0b1ULL);
}

TEST(Supervisor, ProgressBetweenBreachesResetsTheBadStreak) {
  FrontDoorSupervisor sup(tight_params(), 1);
  ShardHeartbeat hb;
  hb.busy.store(true);
  std::size_t depth = 1;
  sup.attach(0, &hb, [&depth] { return depth; });
  sup.sample(1 * kMs);

  // Two wedged-grade stalls separated by real progress: non-consecutive
  // breaches must never add up to a wedged declaration.
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t base = 1 + static_cast<std::uint64_t>(round) * 200;
    sup.sample((base + 70) * kMs);  // one breaching sample (bad streak = 1)
    EXPECT_EQ(sup.health(0), ShardHealth::kSlow);
    hb.progress.fetch_add(1);
    sup.sample((base + 75) * kMs);  // progress resets the streak
    EXPECT_EQ(sup.health(0), ShardHealth::kHealthy);
  }
  EXPECT_EQ(sup.wedged_declared_total(), 0u);
  EXPECT_EQ(sup.epoch(), 0u);
}

TEST(Supervisor, SampleIsPureInObservationsAcrossShards) {
  // Two shards, one wedges, the other keeps moving: classifications are
  // independent and the mask reflects exactly the wedged set.
  FrontDoorSupervisor sup(tight_params(), 2);
  ShardHeartbeat a;
  ShardHeartbeat b;
  a.busy.store(true);
  std::size_t depth_a = 3;
  sup.attach(0, &a, [&depth_a] { return depth_a; });
  sup.attach(1, &b, [] { return std::size_t{0}; });
  sup.sample(1 * kMs);
  for (std::uint64_t t : {70ULL, 75ULL, 80ULL}) {
    b.progress.fetch_add(1);  // shard 1 keeps serving
    sup.sample(t * kMs);
  }
  EXPECT_EQ(sup.health(0), ShardHealth::kWedged);
  EXPECT_EQ(sup.health(1), ShardHealth::kHealthy);
  EXPECT_EQ(sup.healthy_mask(), 0b10ULL);
  EXPECT_EQ(sup.healthy_count(), 1u);
}

// ---------- Rendezvous failover routing ----------

TEST(SupervisorFailover, DeterministicHealthyAndStable) {
  const std::size_t shards = 8;
  const std::uint64_t mask = 0b1101'1011ULL;  // shards 2 and 5 wedged
  for (std::uint64_t session = 0; session < 2000; ++session) {
    const std::size_t pick = failover_shard_of(session, shards, mask);
    ASSERT_LT(pick, shards);
    ASSERT_NE((mask >> pick) & 1ULL, 0ULL) << "routed to a wedged shard";
    // Pure function of (session, shards, mask).
    ASSERT_EQ(pick, failover_shard_of(session, shards, mask));
  }
}

TEST(SupervisorFailover, SpreadsAcrossTheHealthyCohort) {
  const std::size_t shards = 8;
  const std::uint64_t mask = 0b1111'1110ULL;  // shard 0 wedged
  std::vector<std::size_t> hits(shards, 0);
  for (std::uint64_t session = 0; session < 4000; ++session)
    ++hits[failover_shard_of(session, shards, mask)];
  EXPECT_EQ(hits[0], 0u);
  for (std::size_t i = 1; i < shards; ++i)
    EXPECT_GT(hits[i], 4000u / shards / 4) << "shard " << i << " starved";
}

TEST(SupervisorFailover, RecoveryIsMinimalDisruption) {
  // Sessions that rendezvous-picked shard 3 while 0 was down keep their
  // pick when 0 returns ONLY if 3 still wins the full-mask fight — i.e.
  // the full-mask winner changes only for sessions whose winner WAS the
  // wedged shard. Nobody else moves.
  const std::size_t shards = 4;
  const std::uint64_t full = 0b1111ULL;
  const std::uint64_t degraded = 0b1110ULL;
  for (std::uint64_t session = 0; session < 2000; ++session) {
    const std::size_t with_full = failover_shard_of(session, shards, full);
    const std::size_t with_degraded =
        failover_shard_of(session, shards, degraded);
    if (with_full != 0)
      ASSERT_EQ(with_degraded, with_full)
          << "session " << session << " moved though its winner was healthy";
  }
}

TEST(SupervisorFailover, EmptyMaskFallsBackToPrimaryRouting) {
  for (std::uint64_t session = 0; session < 64; ++session)
    EXPECT_EQ(failover_shard_of(session, 4, 0), shard_of(session, 4));
}

// ---------- Budget re-distribution ----------

TEST(SupervisorBudget, FullCohortSliceMatchesShardSlice) {
  overload::AdmissionParams box;
  box.global_rate_per_s = 1000;
  box.global_burst = 250;
  box.max_inflight_upstream = 64;
  box.max_dispatch_queue = 100;
  box.max_deferred_global = 7;
  box.seed = 42;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const overload::AdmissionParams a = overload::shard_slice(box, shard, 4);
    const overload::AdmissionParams b =
        overload::failover_slice(box, shard, 4, 4);
    EXPECT_DOUBLE_EQ(a.global_rate_per_s, b.global_rate_per_s);
    EXPECT_DOUBLE_EQ(a.global_burst, b.global_burst);
    EXPECT_EQ(a.max_inflight_upstream, b.max_inflight_upstream);
    EXPECT_EQ(a.max_dispatch_queue, b.max_dispatch_queue);
    EXPECT_EQ(a.max_deferred_global, b.max_deferred_global);
    EXPECT_EQ(a.seed, b.seed);
  }
}

TEST(SupervisorBudget, DegradedCohortAbsorbsTheWedgedSlice) {
  overload::AdmissionParams box;
  box.global_rate_per_s = 1200;
  box.global_burst = 300;
  box.max_inflight_upstream = 64;
  box.seed = 42;
  // 4 shards, 1 wedged: each survivor's slice grows from 1/4 to 1/3 of the
  // box — the wedged quarter is re-distributed, not stranded.
  const overload::AdmissionParams survivor =
      overload::failover_slice(box, 1, 4, 3);
  EXPECT_DOUBLE_EQ(survivor.global_rate_per_s, 400.0);
  EXPECT_DOUBLE_EQ(survivor.global_burst, 100.0);
  EXPECT_EQ(survivor.max_inflight_upstream, 22);  // ceil(64/3)
  // The jitter seed stays keyed to the ORIGINAL shard index, so re-slicing
  // never causes a guard-threshold discontinuity on a surviving shard.
  EXPECT_EQ(survivor.seed, overload::shard_slice(box, 1, 4).seed);
}

TEST(SupervisorBudget, ApplyBudgetSwapsTheLiveSlice) {
  overload::AdmissionParams box;
  box.global_rate_per_s = 800;
  box.global_burst = 200;
  box.max_inflight_upstream = 40;
  box.seed = 11;
  overload::AdmissionController controller(
      overload::shard_slice(box, 0, 4));
  EXPECT_DOUBLE_EQ(controller.params().global_rate_per_s, 200.0);

  controller.apply_budget(overload::failover_slice(box, 0, 4, 2));
  EXPECT_DOUBLE_EQ(controller.params().global_rate_per_s, 400.0);
  EXPECT_DOUBLE_EQ(controller.params().global_burst, 100.0);
  EXPECT_EQ(controller.params().max_inflight_upstream, 20);

  // And back to the full-cohort slice on recovery.
  controller.apply_budget(overload::failover_slice(box, 0, 4, 4));
  EXPECT_DOUBLE_EQ(controller.params().global_rate_per_s, 200.0);
  EXPECT_DOUBLE_EQ(controller.params().global_burst, 50.0);
}

// ---------- Chaos plans ----------

TEST(ChaosPlan, ShardFaultsRoundTripThroughJson) {
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.name = "chaos-mix";
  fault::ShardFault stall;
  stall.kind = fault::ShardFault::Kind::kStall;
  stall.shard = 1;
  stall.at_event = 40;
  stall.stall_ms = 250;
  plan.frontdoor.push_back(stall);
  fault::ShardFault crash;
  crash.kind = fault::ShardFault::Kind::kCrash;
  crash.shard = -1;  // every shard
  crash.at_event = 500;
  plan.frontdoor.push_back(crash);
  fault::ShardFault slow;
  slow.kind = fault::ShardFault::Kind::kOriginSlow;
  slow.shard = 2;
  slow.factor = 4.0;
  plan.frontdoor.push_back(slow);
  fault::ShardFault burst;
  burst.kind = fault::ShardFault::Kind::kSaturate;
  burst.shard = 0;
  burst.at_event = 10;
  burst.count = 25;
  burst.stall_ms = 2;
  plan.frontdoor.push_back(burst);

  std::string error;
  const auto parsed = fault::FaultPlan::from_json(plan.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->frontdoor.size(), 4u);
  EXPECT_EQ(parsed->frontdoor[0].kind, fault::ShardFault::Kind::kStall);
  EXPECT_EQ(parsed->frontdoor[0].shard, 1);
  EXPECT_EQ(parsed->frontdoor[0].at_event, 40u);
  EXPECT_EQ(parsed->frontdoor[0].stall_ms, 250);
  EXPECT_EQ(parsed->frontdoor[1].kind, fault::ShardFault::Kind::kCrash);
  EXPECT_EQ(parsed->frontdoor[1].shard, -1);
  EXPECT_TRUE(parsed->frontdoor[1].applies_to(0));
  EXPECT_TRUE(parsed->frontdoor[1].applies_to(7));
  EXPECT_EQ(parsed->frontdoor[2].kind, fault::ShardFault::Kind::kOriginSlow);
  EXPECT_DOUBLE_EQ(parsed->frontdoor[2].factor, 4.0);
  EXPECT_EQ(parsed->frontdoor[3].kind, fault::ShardFault::Kind::kSaturate);
  EXPECT_EQ(parsed->frontdoor[3].count, 25u);
  // Round-trip is a fixpoint: serialize-parse-serialize is stable.
  EXPECT_EQ(parsed->to_json(), plan.to_json());
}

TEST(ChaosPlan, RejectsMalformedShardFaults) {
  std::string error;
  EXPECT_FALSE(fault::FaultPlan::from_json(
                   R"({"frontdoor": [{"kind": "meteor"}]})", &error)
                   .has_value());
  EXPECT_NE(error.find("kind"), std::string::npos);
  EXPECT_FALSE(fault::FaultPlan::from_json(
                   R"({"frontdoor": [{"kind": "stall", "stall_ms": 0}]})")
                   .has_value());
  EXPECT_FALSE(fault::FaultPlan::from_json(
                   R"({"frontdoor": [{"kind": "saturate", "stall_ms": 5}]})")
                   .has_value());
  EXPECT_FALSE(fault::FaultPlan::from_json(
                   R"({"frontdoor": [{"kind": "origin_slow", "factor": 0.5}]})")
                   .has_value());
  EXPECT_FALSE(fault::FaultPlan::from_json(
                   R"({"frontdoor": [{"kind": "crash", "shard": -2}]})")
                   .has_value());
  EXPECT_FALSE(
      fault::FaultPlan::from_json(R"({"frontdoor": {}})").has_value());
}

TEST(ChaosPlan, ShardStallFactoryAndFrontdoorOnlyPlansSkipThePipeline) {
  const fault::FaultPlan plan = fault::FaultPlan::shard_stall(0, 30, 400);
  EXPECT_EQ(plan.name, "shard-stall");
  ASSERT_EQ(plan.frontdoor.size(), 1u);
  EXPECT_EQ(plan.frontdoor[0].stall_ms, 400);
  // Shard faults target the worker, not the simulated pipeline: the
  // builder must see this plan as empty and leave the stack undecorated.
  EXPECT_TRUE(plan.pipeline_empty());
  EXPECT_FALSE(plan.empty());
}

// ---------- The chaos harness end to end ----------

sim::FrontDoorLoadConfig chaos_load() {
  sim::FrontDoorLoadConfig load;
  load.sessions = 300;
  load.touches_per_session = 3;
  load.url_universe = 256;
  load.session_arrival_per_s = 300;
  return load;
}

FrontDoorParams chaos_params(bool supervised) {
  FrontDoorParams params;
  params.load = chaos_load();
  params.apply_scaled_admission();
  params.shards = 2;
  params.queue_capacity = 64;       // small: saturation is reachable
  params.enqueue_deadline_ms = 5;   // bounded producer wait
  params.supervisor.enabled = supervised;
  params.supervisor.check_interval_ms = 1;
  params.supervisor.slow_after_ms = 5;
  params.supervisor.wedged_after_ms = 15;
  params.supervisor.hysteresis = {2, 2};
  return params;
}

TEST(ChaosFrontDoor, CrashPlanAccountsForEveryEventAndFailsOver) {
  // Shard 0's worker crashes after 20 events. Supervised: the crash is
  // self-reported, the supervisor force-declares it wedged, and every
  // session first seen afterwards re-routes to shard 1.
  fault::FaultPlan plan;
  plan.name = "crash";
  fault::ShardFault crash;
  crash.kind = fault::ShardFault::Kind::kCrash;
  crash.shard = 0;
  crash.at_event = 20;
  plan.frontdoor.push_back(crash);

  FrontDoorParams supervised = chaos_params(true);
  supervised.fault_plan = plan;
  FrontDoorParams unsupervised = chaos_params(false);
  unsupervised.fault_plan = plan;

  const FrontDoorResult with =
      run_front_door(supervised, FrontDoorMode::kThreaded);
  const FrontDoorResult without =
      run_front_door(unsupervised, FrontDoorMode::kThreaded);

  const std::size_t total_events =
      chaos_load().sessions * chaos_load().touches_per_session;
  for (const FrontDoorResult* r : {&with, &without}) {
    // Nothing vanishes under chaos: every produced event is consumed or
    // shed, and every request resolves to exactly one verdict.
    EXPECT_EQ(r->events, total_events);
    EXPECT_EQ(r->completed + r->rejected + r->failed, r->requests);
  }
  // Both arms lose shard 0 at event 20 and shed its backlog.
  EXPECT_GT(with.shed_events, 0u);
  EXPECT_GT(without.shed_events, 0u);
  EXPECT_TRUE(with.supervised);
  EXPECT_FALSE(without.supervised);
  // Failover only ever adds capacity: the supervised run serves at least
  // what the unsupervised run manages.
  EXPECT_GE(with.completed, without.completed);
  EXPECT_EQ(without.failover_sessions, 0u);
}

TEST(ChaosFrontDoor, StallPlanIsDetectedAndShedsInsteadOfLivelocking) {
  FrontDoorParams params = chaos_params(true);
  // Shard 0 sleeps 300 ms after its 10th event — far past wedged_after, so
  // the watchdog has dozens of sampling periods to see the freeze.
  params.fault_plan = fault::FaultPlan::shard_stall(0, 10, 300);

  const FrontDoorResult r = run_front_door(params, FrontDoorMode::kThreaded);

  EXPECT_EQ(r.events,
            chaos_load().sessions * chaos_load().touches_per_session);
  EXPECT_EQ(r.completed + r.rejected + r.failed, r.requests);
  // The stall was detected (time-to-detect measured from fault onset) and
  // the producer's deadline bounded its wait: no event cost more than
  // roughly deadline + stall, and sheds happened instead of livelock.
  EXPECT_GE(r.wedged_declared, 1u);
  EXPECT_GT(r.first_detect_ms, 0.0);
  EXPECT_GT(r.shed_events, 0u);
  EXPECT_GT(r.deadline_shed_events, 0u);
  EXPECT_GT(r.completed, 0u);
  ASSERT_EQ(r.per_shard.size(), 2u);
  EXPECT_GE(r.per_shard[0].wedged_spells, 1u);
}

TEST(ChaosFrontDoor, SupervisionOnWithNoFaultsKeepsByteIdentity) {
  // The §13 gate, extended: shards=1 threaded must stay byte-identical to
  // inline with the supervisor WATCHING (generous thresholds so a slow CI
  // machine can never trip a spurious wedge — with no fault injected the
  // worker always progresses or idles).
  FrontDoorParams params;
  params.load = chaos_load();
  params.apply_scaled_admission();
  params.shards = 1;
  params.supervisor.enabled = true;
  params.supervisor.check_interval_ms = 2;
  params.supervisor.slow_after_ms = 5'000;
  params.supervisor.wedged_after_ms = 10'000;

  const FrontDoorResult inline_run =
      run_front_door(params, FrontDoorMode::kInline);
  const FrontDoorResult threaded_run =
      run_front_door(params, FrontDoorMode::kThreaded);

  EXPECT_EQ(inline_run.deterministic_json(), threaded_run.deterministic_json());
  EXPECT_EQ(inline_run.fingerprint, threaded_run.fingerprint);
  EXPECT_EQ(threaded_run.shed_events, 0u);
  EXPECT_EQ(threaded_run.failover_sessions, 0u);
  EXPECT_EQ(threaded_run.wedged_declared, 0u);
}

}  // namespace
}  // namespace mfhttp
