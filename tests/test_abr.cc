// Tests for the ABR baselines (rate-based, buffer-based/BBA, and the
// MF-HTTP+BBA extension) and the radio energy cost model.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/flow_controller.h"
#include "core/middleware.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "video/abr.h"
#include "video/player.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

VideoAsset asset(int seconds = 20) {
  VideoAsset::Params p;
  p.duration_s = seconds;
  return VideoAsset(p);
}

std::vector<bool> forward_visible(const VideoAsset& video) {
  return video.grid().visible_tiles({0, 0}, FieldOfView{});
}

// ---------- RateBasedTileScheduler ----------

TEST(RateBased, PicksHighestNominalRungUnderEstimate) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  RateBasedTileScheduler sched(0.9);
  SchedulerContext ctx;
  ctx.budget = 1;  // ignored once est_rate is known
  ctx.est_rate = kb_per_sec(400);  // 0.9*400 = 360 KB/s >= 720s rung (300)
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_EQ(plan.viewport_quality, 2);  // 720s
  for (int q : plan.tile_quality) EXPECT_EQ(q, 2);
}

TEST(RateBased, FallsBackToBudgetWithoutEstimate) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  RateBasedTileScheduler sched;
  SchedulerContext ctx;
  ctx.budget = static_cast<Bytes>(kb_per_sec(250));
  ctx.est_rate = 0;
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_EQ(plan.viewport_quality, 1);  // 480s nominal 200 <= 250
}

TEST(RateBased, NaBelowFloorRate) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  RateBasedTileScheduler sched;
  SchedulerContext ctx;
  ctx.est_rate = kb_per_sec(50);  // below the 100 KB/s floor
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_TRUE(plan.stalled());
}

// ---------- BufferBasedTileScheduler ----------

TEST(BufferBased, QualityMapEndpoints) {
  BufferBasedTileScheduler sched;
  EXPECT_EQ(sched.quality_for_buffer(0.0, 4), 0);
  EXPECT_EQ(sched.quality_for_buffer(1.0, 4), 0);   // at the reservoir
  EXPECT_EQ(sched.quality_for_buffer(3.0, 4), 3);   // at the cushion
  EXPECT_EQ(sched.quality_for_buffer(10.0, 4), 3);
}

TEST(BufferBased, QualityMapMonotone) {
  BufferBasedTileScheduler sched;
  int prev = -1;
  for (double b = 0; b <= 4.0; b += 0.25) {
    int q = sched.quality_for_buffer(b, 4);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(BufferBased, PlanFollowsBufferNotBudget) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  BufferBasedTileScheduler sched;
  SchedulerContext starved;
  starved.budget = 1;  // BBA famously ignores throughput
  starved.buffer_s = 5.0;
  TilePlan plan = sched.plan_segment(video, 0, visible, starved);
  EXPECT_EQ(plan.viewport_quality, video.quality_count() - 1);
}

// ---------- MfHttpBufferedScheduler ----------

TEST(MfHttpBuffered, ViewportAtBbaTargetRestAtFloor) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  MfHttpBufferedScheduler sched;
  SchedulerContext ctx;
  ctx.budget = static_cast<Bytes>(kb_per_sec(1000));
  ctx.buffer_s = 5.0;  // above cushion -> target = top
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_EQ(plan.viewport_quality, video.quality_count() - 1);
  for (int t = 0; t < video.grid().tile_count(); ++t) {
    int q = plan.tile_quality[static_cast<std::size_t>(t)];
    if (visible[static_cast<std::size_t>(t)])
      EXPECT_EQ(q, plan.viewport_quality);
    else
      EXPECT_EQ(q, 0);
  }
  EXPECT_LE(plan.bytes, ctx.budget);
}

TEST(MfHttpBuffered, BudgetCapsBbaAmbition) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  MfHttpBufferedScheduler sched;
  SchedulerContext ctx;
  ctx.buffer_s = 5.0;            // BBA wants the top...
  ctx.budget = static_cast<Bytes>(kb_per_sec(150));  // ...the budget says no
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_LT(plan.viewport_quality, video.quality_count() - 1);
  EXPECT_GE(plan.viewport_quality, 0);
  if (plan.bytes > static_cast<Bytes>(kb_per_sec(150))) {
    EXPECT_EQ(plan.viewport_quality, 0);  // only the q=0 shed path may exceed
  }
}

TEST(MfHttpBuffered, LowBufferMeansFloor) {
  VideoAsset video = asset();
  auto visible = forward_visible(video);
  MfHttpBufferedScheduler sched;
  SchedulerContext ctx;
  ctx.budget = static_cast<Bytes>(kb_per_sec(2000));
  ctx.buffer_s = 0.5;  // under the reservoir
  TilePlan plan = sched.plan_segment(video, 0, visible, ctx);
  EXPECT_EQ(plan.viewport_quality, 0);
}

// ---------- player integration with the ABR baselines ----------

ViewportTrace drag_trace(std::uint64_t seed, TimeMs duration_ms) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);
  VideoDragSource src(kDevice, {}, Rng(seed));
  GestureRecognizer rec(kDevice);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = rec.on_touch_event(ev)) vt.add_gesture(*g);
  }
  return vt;
}

TEST(AbrInPlayer, BufferBasedRampsUpFromFloor) {
  VideoAsset video = asset(20);
  ViewportTrace vt = drag_trace(3, 20'000);
  BufferBasedTileScheduler bba;
  auto result = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(1200)),
                                     bba, BufferedPlayerParams{});
  // Starts conservatively (empty buffer => floor), ends at a higher rung.
  EXPECT_EQ(result.segments.front().scheduled_quality, 0);
  EXPECT_GT(result.segments.back().scheduled_quality, 0);
}

TEST(AbrInPlayer, MfBbaBeatsWholeFrameBbaOnViewportQuality) {
  VideoAsset video = asset(30);
  ViewportTrace vt = drag_trace(5, 30'000);
  BufferBasedTileScheduler bba;
  MfHttpBufferedScheduler mf_bba;
  auto bw = BandwidthTrace::constant(kb_per_sec(300));
  auto r_bba = run_buffered_session(video, vt, bw, bba, BufferedPlayerParams{});
  auto r_mf = run_buffered_session(video, vt, bw, mf_bba, BufferedPlayerParams{});
  EXPECT_GE(r_mf.mean_scheduled_resolution(video),
            r_bba.mean_scheduled_resolution(video));
  EXPECT_LE(r_mf.total_bytes, r_bba.total_bytes);
}

// ---------- radio energy cost ----------

TEST(RadioEnergy, ZeroBytesCostNothing) {
  CostFunction c = radio_energy_cost(RadioEnergyParams::lte());
  EXPECT_DOUBLE_EQ(c(0), 0.0);
}

TEST(RadioEnergy, AffineInSize) {
  RadioEnergyParams lte = RadioEnergyParams::lte();
  CostFunction c = radio_energy_cost(lte);
  double fixed = lte.promotion_joules + lte.tail_joules;
  EXPECT_NEAR(c(1'000'000), fixed + 12.0, 1e-9);
  EXPECT_NEAR(c(2'000'000) - c(1'000'000), 12.0, 1e-9);
}

TEST(RadioEnergy, SmallObjectsDominatedByFixedCosts) {
  CostFunction c = radio_energy_cost(RadioEnergyParams::lte());
  // A 10 KB fetch costs almost the same as a 1 KB fetch: the tail dominates.
  EXPECT_NEAR(c(10'000) / c(1'000), 1.0, 0.05);
}

TEST(RadioEnergy, WifiCheaperThanLte) {
  CostFunction wifi = radio_energy_cost(RadioEnergyParams::wifi());
  CostFunction lte = radio_energy_cost(RadioEnergyParams::lte());
  for (Bytes f : {10'000, 100'000, 1'000'000, 10'000'000})
    EXPECT_LT(wifi(f), lte(f));
}

TEST(RadioEnergy, OptimizerDownloadsFewerObjectsUnderEnergyCost) {
  // Under the affine energy model each extra *object* carries a fixed
  // penalty, so the optimizer drops marginal transients that the linear
  // model would fetch.
  std::vector<MediaObject> objects;
  for (int i = 0; i < 60; ++i)
    objects.push_back(make_single_version_object(
        "o" + std::to_string(i), Rect{100, i * 600.0, 800, 400}, 30'000,
        "http://s/i" + std::to_string(i)));
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = 4.0;
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -16000};
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  ScrollAnalysis analysis = tracker.analyze(pred, objects);

  FlowController::Params linear_params;
  // A light cost touch: enough for the energy model's fixed per-object
  // charge to matter, light enough that byte-linear cost does not already
  // prune the transients.
  linear_params.weights = {1.0, 0.1};
  linear_params.ignore_bandwidth_constraint = true;
  FlowController::Params energy_params = linear_params;
  energy_params.cost = radio_energy_cost(RadioEnergyParams::lte());

  auto bw = BandwidthTrace::constant(2e6);
  DownloadPolicy p_lin = FlowController(linear_params).optimize(analysis, objects, bw);
  DownloadPolicy p_nrg = FlowController(energy_params).optimize(analysis, objects, bw);

  auto count = [](const DownloadPolicy& p) {
    std::size_t n = 0;
    for (const DownloadDecision& d : p.decisions)
      if (d.download()) ++n;
    return n;
  };
  EXPECT_LT(count(p_nrg), count(p_lin));
  EXPECT_GT(count(p_nrg), 0u);  // but the final viewport still gets served
}

}  // namespace
}  // namespace mfhttp
