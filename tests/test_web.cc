// Tests for the web case study: corpus statistics (the Fig. 6 invariants),
// the browser loading model, the §5.1.2 block-list controller, and the
// end-to-end browsing session (MF-HTTP must beat the baseline on viewport
// load time).
#include <gtest/gtest.h>

#include <optional>

#include "core/middleware.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "web/blocklist_controller.h"
#include "web/browser.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

// ---------- corpus / Fig. 6 invariants ----------

TEST(Corpus, TwentyFiveSites) {
  EXPECT_EQ(alexa25_specs().size(), 25u);
}

TEST(Corpus, ElevenFullFourteenLimited) {
  int full = 0, limited = 0;
  for (const SiteSpec& s : alexa25_specs())
    (s.viewport_ratio >= 1.0 ? full : limited)++;
  EXPECT_EQ(full, 11);
  EXPECT_EQ(limited, 14);
}

TEST(Corpus, MinimumRatioMatchesPaper) {
  double min_ratio = 1.0;
  std::string min_site;
  for (const SiteSpec& s : alexa25_specs())
    if (s.viewport_ratio < min_ratio) {
      min_ratio = s.viewport_ratio;
      min_site = s.name;
    }
  EXPECT_NEAR(min_ratio, 0.041, 1e-9);  // the paper's Sohu observation
  EXPECT_EQ(min_site, "sohu");
}

TEST(Corpus, GeneratedPageMatchesSpec) {
  Rng rng(1);
  const SiteSpec& spec = alexa25_specs()[11];  // first limited site
  WebPage page = generate_page(spec, kDevice, rng);
  EXPECT_EQ(page.site, spec.name);
  EXPECT_EQ(page.images.size(), static_cast<std::size_t>(spec.image_count));
  EXPECT_DOUBLE_EQ(page.width, kDevice.screen_w_px);
  EXPECT_NEAR(page.viewport_ratio(kDevice.screen_h_px), spec.viewport_ratio, 1e-9);
  ASSERT_GE(page.structure.size(), 2u);
  EXPECT_EQ(page.structure[0].kind, ResourceKind::kHtml);
}

TEST(Corpus, ImagesInsidePageBounds) {
  Rng rng(2);
  for (const WebPage& page : generate_corpus(kDevice, rng)) {
    for (const MediaObject& img : page.images) {
      EXPECT_GE(img.rect.x, 0) << page.site;
      EXPECT_LE(img.rect.right(), page.width + 1e-6) << page.site;
      EXPECT_GE(img.rect.y, -1e-6) << page.site;
      EXPECT_LE(img.rect.bottom(), page.height + 1e-6) << page.site;
      EXPECT_GT(img.top_version().size, 0) << page.site;
    }
  }
}

TEST(Corpus, DeterministicForSeed) {
  Rng a(7), b(7);
  auto ca = generate_corpus(kDevice, a);
  auto cb = generate_corpus(kDevice, b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ASSERT_EQ(ca[i].images.size(), cb[i].images.size());
    for (std::size_t k = 0; k < ca[i].images.size(); ++k) {
      EXPECT_EQ(ca[i].images[k].rect, cb[i].images[k].rect);
      EXPECT_EQ(ca[i].images[k].top_version().size,
                cb[i].images[k].top_version().size);
    }
  }
}

TEST(Corpus, FullViewportSitesHaveNoBelowFoldImages) {
  Rng rng(3);
  for (const SiteSpec& spec : alexa25_specs()) {
    if (spec.viewport_ratio < 1.0) continue;
    Rng site_rng = rng.fork();
    WebPage page = generate_page(spec, kDevice, site_rng);
    Rect viewport{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
    EXPECT_EQ(page.images_in(viewport).size(), page.images.size()) << spec.name;
  }
}

TEST(WebPage, ImagesInViewportQuery) {
  WebPage page;
  page.width = 1000;
  page.height = 10'000;
  page.images.push_back(make_single_version_object("a", {0, 100, 500, 300}, 1, "u"));
  page.images.push_back(make_single_version_object("b", {0, 5000, 500, 300}, 1, "u"));
  auto in = page.images_in({0, 0, 1000, 2000});
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], 0u);
}

// ---------- Browser over the simulated stack ----------

struct WebFixture : public ::testing::Test {
  void SetUp() override {
    Rng rng(5);
    page = generate_page(alexa25_specs()[19], kDevice, rng);  // sohu-like

    Link::Params cp;
    cp.bandwidth = BandwidthTrace::constant(2e6);
    cp.latency_ms = 8;
    cp.sharing = Link::Sharing::kFairShare;
    client_link.emplace(sim, cp);

    Link::Params sp;
    sp.bandwidth = BandwidthTrace::constant(12.5e6);
    sp.latency_ms = 4;
    sp.sharing = Link::Sharing::kFairShare;
    server_link.emplace(sim, sp);

    for (const PageResource& r : page.structure)
      store.put(parse_url(r.url)->path, r.size);
    for (const MediaObject& img : page.images)
      store.put(parse_url(img.top_version().url)->path, img.top_version().size);

    origin.emplace(sim, &store, &*server_link);
    proxy.emplace(sim, &*origin, &*client_link);
  }

  Simulator sim;
  WebPage page;
  ObjectStore store;
  std::optional<Link> client_link, server_link;
  std::optional<SimHttpOrigin> origin;
  std::optional<MitmProxy> proxy;
};

TEST_F(WebFixture, BrowserLoadsWholePageEventually) {
  Browser browser(sim, &*proxy, page);
  browser.load();
  sim.run();
  EXPECT_TRUE(browser.structure_complete());
  EXPECT_EQ(browser.images_completed(), page.images.size());
  EXPECT_EQ(browser.images_blocked(), 0u);
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  EXPECT_GT(browser.viewport_load_time(vp), 0);
  EXPECT_DOUBLE_EQ(browser.viewport_fill_fraction(vp), 1.0);
}

TEST_F(WebFixture, ImagesWaitForHtml) {
  Browser browser(sim, &*proxy, page);
  browser.load();
  // Before the HTML completes no image request exists.
  sim.run_until(5);
  for (const ResourceLoadState& s : browser.image_states())
    EXPECT_FALSE(s.requested());
  sim.run();
  for (const ResourceLoadState& s : browser.image_states())
    EXPECT_TRUE(s.requested());
}

TEST_F(WebFixture, ViewportLoadTimeIncompleteIsMinusOne) {
  Browser browser(sim, &*proxy, page);
  browser.load();
  sim.run_until(20);
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  EXPECT_EQ(browser.viewport_load_time(vp), -1);
}

TEST_F(WebFixture, FillFractionGrowsMonotonically) {
  Browser browser(sim, &*proxy, page);
  browser.load();
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  double prev = -1;
  for (TimeMs t = 0; t <= 20'000; t += 500) {
    sim.run_until(t);
    double f = browser.viewport_fill_fraction(vp);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST_F(WebFixture, EmptyViewportFillIsOne) {
  Browser browser(sim, &*proxy, page);
  // A region with no images counts as fully filled.
  EXPECT_DOUBLE_EQ(browser.viewport_fill_fraction({-5000, -5000, 10, 10}), 1.0);
}

// ---------- BlockListController ----------

TEST_F(WebFixture, BlockListStartsWithOutOfViewportImages) {
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  BlockListController controller(page, vp, &*proxy);
  std::size_t out_of_vp = page.images.size() - page.images_in(vp).size();
  EXPECT_EQ(controller.block_list_size(), out_of_vp);
  for (std::size_t i : page.images_in(vp))
    EXPECT_FALSE(controller.is_blocked(page.images[i].top_version().url));
}

TEST_F(WebFixture, InterceptorDefersBlockedAllowsRest) {
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  BlockListController controller(page, vp, &*proxy);
  // Structural resource: allowed.
  auto d = controller.on_request(HttpRequest::get(page.structure[0].url));
  EXPECT_EQ(d.action, InterceptDecision::Action::kAllow);
  // In-viewport image: allowed.
  std::size_t in_idx = page.images_in(vp).front();
  d = controller.on_request(HttpRequest::get(page.images[in_idx].top_version().url));
  EXPECT_EQ(d.action, InterceptDecision::Action::kAllow);
  // Below-the-fold image: deferred.
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < page.images.size(); ++i)
    if (!vp.overlaps(page.images[i].rect)) out_idx = i;
  d = controller.on_request(HttpRequest::get(page.images[out_idx].top_version().url));
  EXPECT_EQ(d.action, InterceptDecision::Action::kDefer);
}

TEST_F(WebFixture, PolicyReleasesScrollRelevantImages) {
  Rect vp{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  BlockListController controller(page, vp, &*proxy);
  std::size_t blocked_before = controller.block_list_size();

  // Build a scroll analysis with the real tracker.
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = page.bounds();
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -8000};
  ScrollPrediction pred = tracker.predict(g, vp);
  ScrollAnalysis analysis = tracker.analyze(pred, page.images);
  FlowController::Params fp;
  fp.weights = {1.0, 0.0};
  fp.ignore_bandwidth_constraint = true;
  DownloadPolicy policy =
      FlowController(fp).optimize(analysis, page.images, BandwidthTrace::constant(2e6));

  controller.on_policy(analysis, policy);
  EXPECT_LT(controller.block_list_size(), blocked_before);
  // Everything in the final viewport is now unblocked.
  for (std::size_t i : page.images_in(pred.final_viewport()))
    EXPECT_FALSE(controller.is_blocked(page.images[i].top_version().url)) << i;
  // Images far beyond the sweep stay blocked.
  for (std::size_t i = 0; i < page.images.size(); ++i) {
    if (page.images[i].rect.y > pred.final_viewport().bottom() + 10) {
      EXPECT_TRUE(controller.is_blocked(page.images[i].top_version().url)) << i;
    }
  }
}

// ---------- end-to-end browsing sessions ----------

TEST(BrowsingSession, MfHttpReducesViewportLoadTime) {
  Rng rng(11);
  WebPage page = generate_page(alexa25_specs()[19], kDevice, rng);  // sohu-like
  BrowsingSessionConfig base;
  base.enable_mfhttp = false;
  base.fill_sample_ms = 0;
  BrowsingSessionConfig treat = base;
  treat.enable_mfhttp = true;

  BrowsingSessionResult r_base = run_browsing_session(page, base);
  BrowsingSessionResult r_mf = run_browsing_session(page, treat);

  ASSERT_GT(r_base.initial_viewport_load_ms, 0);
  ASSERT_GT(r_mf.initial_viewport_load_ms, 0);
  // The headline effect: prioritizing viewport objects cuts viewport load
  // time substantially (the paper reports 44.3% on average).
  EXPECT_LT(r_mf.initial_viewport_load_ms, r_base.initial_viewport_load_ms * 0.8);
  // And MF-HTTP transfers fewer bytes (never-visible images stay parked).
  EXPECT_LT(r_mf.bytes_downloaded, r_base.bytes_downloaded);
  EXPECT_GT(r_mf.images_avoided, 0u);
  EXPECT_EQ(r_base.images_avoided, 0u);
}

TEST(BrowsingSession, FullViewportSiteUnaffected) {
  Rng rng(11);
  WebPage page = generate_page(alexa25_specs()[0], kDevice, rng);  // google-like
  BrowsingSessionConfig base;
  base.enable_mfhttp = false;
  base.fill_sample_ms = 0;
  BrowsingSessionConfig treat = base;
  treat.enable_mfhttp = true;

  BrowsingSessionResult r_base = run_browsing_session(page, base);
  BrowsingSessionResult r_mf = run_browsing_session(page, treat);
  ASSERT_GT(r_base.initial_viewport_load_ms, 0);
  ASSERT_GT(r_mf.initial_viewport_load_ms, 0);
  // Nothing to block: load times within a whisker of each other.
  EXPECT_NEAR(static_cast<double>(r_mf.initial_viewport_load_ms),
              static_cast<double>(r_base.initial_viewport_load_ms),
              static_cast<double>(r_base.initial_viewport_load_ms) * 0.05 + 20);
  EXPECT_EQ(r_mf.images_avoided, 0u);
}

TEST(BrowsingSession, FinalViewportLoadsAfterScroll) {
  Rng rng(13);
  WebPage page = generate_page(alexa25_specs()[15], kDevice, rng);
  BrowsingSessionConfig cfg;
  cfg.enable_mfhttp = true;
  cfg.fill_sample_ms = 0;
  BrowsingSessionResult r = run_browsing_session(page, cfg);
  ASSERT_GT(r.final_viewport_load_ms, 0);
  EXPECT_GE(r.final_viewport_load_ms, r.initial_viewport_load_ms);
  EXPECT_GT(r.final_viewport.y, r.initial_viewport.y);  // it did scroll
}

TEST(BrowsingSession, FillTimelineRecordedAndMonotoneBeforeScroll) {
  Rng rng(17);
  WebPage page = generate_page(alexa25_specs()[12], kDevice, rng);
  BrowsingSessionConfig cfg;
  cfg.enable_mfhttp = true;
  cfg.fill_sample_ms = 100;
  BrowsingSessionResult r = run_browsing_session(page, cfg);
  ASSERT_FALSE(r.fill_timeline.empty());
  // Samples cover the session and end fully loaded in the final viewport.
  EXPECT_EQ(r.fill_timeline.front().first, 0);
  EXPECT_NEAR(r.fill_timeline.back().second, 1.0, 1e-9);
}

TEST(BrowsingSession, DeterministicForSeed) {
  Rng rng(23);
  WebPage page = generate_page(alexa25_specs()[14], kDevice, rng);
  BrowsingSessionConfig cfg;
  cfg.enable_mfhttp = true;
  cfg.seed = 99;
  cfg.fill_sample_ms = 0;
  BrowsingSessionResult a = run_browsing_session(page, cfg);
  BrowsingSessionResult b = run_browsing_session(page, cfg);
  EXPECT_EQ(a.initial_viewport_load_ms, b.initial_viewport_load_ms);
  EXPECT_EQ(a.final_viewport_load_ms, b.final_viewport_load_ms);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
}

}  // namespace
}  // namespace mfhttp
