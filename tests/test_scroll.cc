// Tests for the Android fling model (Eqs. 1-5), the drag model, and the
// unified ScrollAnimation — including identity and monotonicity properties
// swept over velocity and pixel density.
#include <gtest/gtest.h>

#include <cmath>

#include "scroll/animation.h"
#include "scroll/device_profile.h"
#include "scroll/drag.h"
#include "scroll/fling.h"

namespace mfhttp {
namespace {

FlingParams nexus6_params() {
  FlingParams p;
  p.ppi = 493;
  return p;
}

// ---------- DeviceProfile ----------

TEST(DeviceProfile, DensityScaling) {
  DeviceProfile d = DeviceProfile::nexus6();
  EXPECT_NEAR(d.density(), 493.0 / 160.0, 1e-12);
  EXPECT_NEAR(d.min_fling_velocity_px_s(), 50.0 * 493.0 / 160.0, 1e-9);
  EXPECT_GT(d.max_fling_velocity_px_s(), d.min_fling_velocity_px_s());
  EXPECT_GT(d.touch_slop_px(), 0);
}

TEST(DeviceProfile, HigherPpiHigherThreshold) {
  EXPECT_GT(DeviceProfile::nexus6().min_fling_velocity_px_s(),
            DeviceProfile::lowend().min_fling_velocity_px_s());
}

// ---------- FlingModel: the paper's equations ----------

TEST(FlingModel, DecelerationRateConstant) {
  EXPECT_NEAR(fling_deceleration_rate(), std::log(0.78) / std::log(0.9), 1e-15);
  EXPECT_NEAR(fling_deceleration_rate(), 2.358, 1e-3);
}

TEST(FlingModel, PhysicalCoefficient) {
  FlingParams p = nexus6_params();
  // P_COEF = 9.80665 * 39.37 * ppi * 0.84.
  EXPECT_NEAR(p.physical_coefficient(), 9.80665 * 39.37 * 493 * 0.84, 1e-6);
}

TEST(FlingModel, Equation1LogTerm) {
  FlingParams p = nexus6_params();
  FlingModel m(3000, p);
  double coeff = p.friction * p.physical_coefficient();
  EXPECT_NEAR(m.log_term(), std::log(0.35 * 3000 / coeff), 1e-12);
}

TEST(FlingModel, Equation2Duration) {
  FlingParams p = nexus6_params();
  FlingModel m(3000, p);
  double decel = fling_deceleration_rate();
  EXPECT_NEAR(m.duration_ms(), 1000.0 * std::exp(m.log_term() / (decel - 1)), 1e-9);
}

TEST(FlingModel, Equation3Distance) {
  FlingParams p = nexus6_params();
  FlingModel m(3000, p);
  double decel = fling_deceleration_rate();
  double coeff = p.friction * p.physical_coefficient();
  EXPECT_NEAR(m.total_distance_px(),
              coeff * std::exp(decel / (decel - 1) * m.log_term()), 1e-9);
}

TEST(FlingModel, Equation4Identity) {
  // D(v) == Fric * P_COEF * (T(v)/1000)^DECEL — Eq. (4).
  FlingParams p = nexus6_params();
  for (double v : {200.0, 1000.0, 3000.0, 8000.0, 20000.0}) {
    FlingModel m(v, p);
    double coeff = p.friction * p.physical_coefficient();
    double rhs = coeff * std::pow(m.duration_ms() / 1000.0, fling_deceleration_rate());
    EXPECT_NEAR(m.total_distance_px(), rhs, rhs * 1e-12) << "v=" << v;
  }
}

TEST(FlingModel, Equation5Boundaries) {
  FlingModel m(3000, nexus6_params());
  EXPECT_NEAR(m.distance_at(0), 0.0, 1e-9);
  EXPECT_NEAR(m.distance_at(m.duration_ms()), m.total_distance_px(), 1e-9);
  // Clamping beyond the animation.
  EXPECT_NEAR(m.distance_at(m.duration_ms() * 2), m.total_distance_px(), 1e-9);
  EXPECT_NEAR(m.distance_at(-50), 0.0, 1e-9);
}

TEST(FlingModel, SpeedBoundaries) {
  FlingModel m(3000, nexus6_params());
  EXPECT_GT(m.speed_at(0), 0);
  EXPECT_DOUBLE_EQ(m.speed_at(m.duration_ms()), 0.0);
  EXPECT_DOUBLE_EQ(m.speed_at(m.duration_ms() + 1), 0.0);
}

TEST(FlingModel, SpeedIsDerivativeOfDistance) {
  FlingModel m(4000, nexus6_params());
  for (double t : {10.0, 100.0, 500.0, m.duration_ms() * 0.9}) {
    double h = 0.01;
    double numeric = (m.distance_at(t + h) - m.distance_at(t - h)) / (2 * h) * 1000.0;
    EXPECT_NEAR(m.speed_at(t), numeric, std::max(1.0, numeric * 1e-3)) << "t=" << t;
  }
}

TEST(FlingModel, Nexus6RealisticMagnitudes) {
  // Sanity for the test device: a 3000 px/s fling travels on the order of a
  // screen height and lasts 1-3 seconds.
  FlingModel m(3000, nexus6_params());
  EXPECT_GT(m.total_distance_px(), 300);
  EXPECT_LT(m.total_distance_px(), 5000);
  EXPECT_GT(m.duration_ms(), 500);
  EXPECT_LT(m.duration_ms(), 5000);
}

class FlingVelocitySweep : public ::testing::TestWithParam<double> {};

TEST_P(FlingVelocitySweep, DistanceMonotoneInTime) {
  FlingModel m(GetParam(), nexus6_params());
  double prev = -1;
  for (double t = 0; t <= m.duration_ms(); t += m.duration_ms() / 200) {
    double d = m.distance_at(t);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_P(FlingVelocitySweep, SpeedMonotoneDecreasing) {
  FlingModel m(GetParam(), nexus6_params());
  double prev = m.speed_at(0) + 1;
  for (double t = 0; t < m.duration_ms(); t += m.duration_ms() / 100) {
    double s = m.speed_at(t);
    EXPECT_LE(s, prev + 1e-9);
    prev = s;
  }
}

TEST_P(FlingVelocitySweep, FasterFlingGoesFartherAndLonger) {
  FlingModel slow(GetParam(), nexus6_params());
  FlingModel fast(GetParam() * 1.5, nexus6_params());
  EXPECT_GT(fast.total_distance_px(), slow.total_distance_px());
  EXPECT_GT(fast.duration_ms(), slow.duration_ms());
}

INSTANTIATE_TEST_SUITE_P(Velocities, FlingVelocitySweep,
                         ::testing::Values(200.0, 500.0, 1000.0, 2000.0, 4000.0,
                                           8000.0, 16000.0));

class FlingPpiSweep : public ::testing::TestWithParam<double> {};

TEST_P(FlingPpiSweep, HigherPpiShortensDistance) {
  // More pixels per inch => the same physical friction removes more px/s^2,
  // so the fling covers fewer *pixels*... actually the coefficient scales
  // distance down. Verify the direction explicitly.
  FlingParams lo;
  lo.ppi = GetParam();
  FlingParams hi;
  hi.ppi = GetParam() * 1.5;
  FlingModel m_lo(3000, lo), m_hi(3000, hi);
  EXPECT_GT(m_lo.total_distance_px(), m_hi.total_distance_px());
  EXPECT_GT(m_lo.duration_ms(), m_hi.duration_ms());
}

TEST_P(FlingPpiSweep, Equation4HoldsAcrossPpi) {
  FlingParams p;
  p.ppi = GetParam();
  FlingModel m(2500, p);
  double coeff = p.friction * p.physical_coefficient();
  double rhs = coeff * std::pow(m.duration_ms() / 1000.0, fling_deceleration_rate());
  EXPECT_NEAR(m.total_distance_px(), rhs, rhs * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ppis, FlingPpiSweep,
                         ::testing::Values(160.0, 294.0, 445.0, 493.0, 640.0));

// ---------- DragModel ----------

TEST(DragModel, UniformDecelerationKinematics) {
  DragParams p;
  p.deceleration_px_s2 = 1000;
  DragModel m(100, p);  // v=100 px/s, a=1000 px/s^2
  EXPECT_NEAR(m.duration_ms(), 100.0, 1e-9);             // T = v/a = 0.1 s
  EXPECT_NEAR(m.total_distance_px(), 5.0, 1e-9);         // D = v^2/2a
  EXPECT_NEAR(m.distance_at(50), 100 * 0.05 - 0.5 * 1000 * 0.0025, 1e-9);
  EXPECT_NEAR(m.speed_at(50), 50.0, 1e-9);
  EXPECT_NEAR(m.distance_at(100), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.speed_at(100), 0.0);
}

TEST(DragModel, ZeroSpeedDegenerate) {
  DragModel m(0, DragParams{});
  EXPECT_DOUBLE_EQ(m.duration_ms(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_distance_px(), 0.0);
  EXPECT_DOUBLE_EQ(m.distance_at(10), 0.0);
}

TEST(DragModel, ClampsOutsideAnimation) {
  DragModel m(200, DragParams{});
  EXPECT_DOUBLE_EQ(m.distance_at(-5), 0.0);
  EXPECT_NEAR(m.distance_at(1e9), m.total_distance_px(), 1e-9);
}

TEST(DragModel, ShortComparedToFling) {
  // The paper's rationale for focusing on flings: drag deceleration has very
  // limited impact on viewport movement.
  DeviceProfile d = DeviceProfile::nexus6();
  double v = d.min_fling_velocity_px_s() * 0.99;  // fastest possible drag
  DragModel drag(v, DragParams{});
  FlingModel fling(d.min_fling_velocity_px_s() * 10, nexus6_params());
  EXPECT_LT(drag.total_distance_px(), fling.total_distance_px() / 10);
}

// ---------- ScrollAnimation ----------

ScrollConfig nexus6_config() { return ScrollConfig(DeviceProfile::nexus6()); }

TEST(ScrollAnimation, ZeroVelocityIsNone) {
  ScrollAnimation a({0, 0}, nexus6_config());
  EXPECT_EQ(a.kind(), ScrollKind::kNone);
  EXPECT_DOUBLE_EQ(a.duration_ms(), 0.0);
  EXPECT_EQ(a.total_displacement(), Vec2{});
  EXPECT_EQ(a.displacement_at(100), Vec2{});
}

TEST(ScrollAnimation, DefaultConstructedIsNone) {
  ScrollAnimation a;
  EXPECT_EQ(a.kind(), ScrollKind::kNone);
}

TEST(ScrollAnimation, ThresholdClassification) {
  ScrollConfig cfg = nexus6_config();
  double threshold = cfg.device.min_fling_velocity_px_s();
  EXPECT_EQ(ScrollAnimation({0, threshold * 0.9}, cfg).kind(), ScrollKind::kDrag);
  EXPECT_EQ(ScrollAnimation({0, threshold * 1.1}, cfg).kind(), ScrollKind::kFling);
  EXPECT_EQ(ScrollAnimation({0, threshold}, cfg).kind(), ScrollKind::kFling);
}

TEST(ScrollAnimation, VelocityCappedAtMax) {
  ScrollConfig cfg = nexus6_config();
  ScrollAnimation capped({0, cfg.device.max_fling_velocity_px_s() * 10}, cfg);
  ScrollAnimation at_max({0, cfg.device.max_fling_velocity_px_s()}, cfg);
  EXPECT_NEAR(capped.total_distance(), at_max.total_distance(), 1e-9);
}

TEST(ScrollAnimation, DisplacementFollowsDirection) {
  ScrollConfig cfg = nexus6_config();
  ScrollAnimation a({3000, -4000}, cfg);
  Vec2 total = a.total_displacement();
  // Direction preserved: (3,-4)/5.
  EXPECT_NEAR(total.x / total.norm(), 0.6, 1e-12);
  EXPECT_NEAR(total.y / total.norm(), -0.8, 1e-12);
  // d_x(t) = d(t) * v_x / v as in §3.3.2.
  Vec2 mid = a.displacement_at(a.duration_ms() / 3);
  EXPECT_NEAR(mid.x / a.distance_at(a.duration_ms() / 3), 0.6, 1e-12);
}

TEST(ScrollAnimation, NegativeAxisDisplacement) {
  ScrollAnimation a({-2000, 0}, nexus6_config());
  EXPECT_LT(a.total_displacement().x, 0);
  EXPECT_DOUBLE_EQ(a.total_displacement().y, 0);
}

TEST(ScrollAnimation, TimeForDistanceInvertsDistanceAt) {
  ScrollAnimation a({0, 5000}, nexus6_config());
  for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double dist = a.total_distance() * frac;
    double t = a.time_for_distance(dist);
    EXPECT_NEAR(a.distance_at(t), dist, a.total_distance() * 0.002)
        << "frac=" << frac;
  }
}

TEST(ScrollAnimation, TimeForDistanceBoundaries) {
  ScrollAnimation a({0, 5000}, nexus6_config());
  EXPECT_DOUBLE_EQ(a.time_for_distance(0), 0.0);
  EXPECT_DOUBLE_EQ(a.time_for_distance(-5), 0.0);
  EXPECT_DOUBLE_EQ(a.time_for_distance(a.total_distance() * 2), a.duration_ms());
}

TEST(ScrollAnimation, DragTimeForDistance) {
  ScrollConfig cfg = nexus6_config();
  ScrollAnimation a({0, cfg.device.min_fling_velocity_px_s() * 0.5}, cfg);
  ASSERT_EQ(a.kind(), ScrollKind::kDrag);
  double half = a.total_distance() / 2;
  double t = a.time_for_distance(half);
  EXPECT_NEAR(a.distance_at(t), half, 0.5);
}

}  // namespace
}  // namespace mfhttp
