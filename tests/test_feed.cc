// Tests for the social-feed case study: feed generation, the
// version-selecting controller, and end-to-end instant-playback sessions.
#include <gtest/gtest.h>

#include "feed/feed.h"
#include "feed/feed_controller.h"
#include "feed/feed_experiment.h"
#include "http/sim_http.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

Feed make_feed(std::uint64_t seed = 3, int posts = 50) {
  FeedSpec spec;
  spec.post_count = posts;
  Rng rng(seed);
  return generate_feed(spec, kDevice, rng);
}

// ---------- generation ----------

TEST(Feed, GeneratesRequestedPosts) {
  Feed feed = make_feed();
  EXPECT_EQ(feed.posts.size(), 50u);
  EXPECT_EQ(feed.media.size(), 50u);
  EXPECT_DOUBLE_EQ(feed.width, kDevice.screen_w_px);
  EXPECT_GT(feed.height, kDevice.screen_h_px * 10);
}

TEST(Feed, ClipsHaveThumbAndFullVersions) {
  Feed feed = make_feed();
  std::size_t clips = 0;
  for (std::size_t i = 0; i < feed.posts.size(); ++i) {
    const MediaObject& m = feed.media[feed.posts[i].media_index];
    EXPECT_TRUE(m.versions_sorted()) << i;
    if (feed.posts[i].kind == PostKind::kClip) {
      ++clips;
      ASSERT_EQ(m.versions.size(), 2u);
      EXPECT_LT(m.versions[0].size, m.versions[1].size);  // thumb << clip
      EXPECT_NE(m.versions[0].url, m.versions[1].url);
    } else {
      EXPECT_EQ(m.versions.size(), 1u);
    }
  }
  EXPECT_EQ(clips, feed.clip_count());
  // Roughly the configured clip fraction.
  EXPECT_GT(clips, 10u);
  EXPECT_LT(clips, 35u);
}

TEST(Feed, PostsOrderedDownTheTimeline) {
  Feed feed = make_feed();
  double prev_y = -1;
  for (const FeedPost& p : feed.posts) {
    EXPECT_GT(p.rect.y, prev_y);
    prev_y = p.rect.y;
    EXPECT_GE(p.rect.x, 0);
    EXPECT_LE(p.rect.right(), feed.width + 1e-6);
  }
}

TEST(Feed, DeterministicForSeed) {
  Feed a = make_feed(9), b = make_feed(9);
  ASSERT_EQ(a.media.size(), b.media.size());
  for (std::size_t i = 0; i < a.media.size(); ++i) {
    EXPECT_EQ(a.media[i].rect, b.media[i].rect);
    EXPECT_EQ(a.media[i].top_version().size, b.media[i].top_version().size);
  }
}

// ---------- controller ----------

struct FeedControllerFixture : public ::testing::Test {
  FeedControllerFixture()
      : feed(make_feed()),
        client_link(sim, Link::Params{}),
        server_link(sim, Link::Params{}),
        origin(sim, &store, &server_link),
        proxy(sim, &origin, &client_link),
        vp0{0, 0, kDevice.screen_w_px, kDevice.screen_h_px} {
    for (const MediaObject& m : feed.media)
      for (const MediaVersion& v : m.versions) store.put(parse_url(v.url)->path, v.size);
  }

  Simulator sim;
  Feed feed;
  ObjectStore store;
  Link client_link, server_link;
  SimHttpOrigin origin;
  MitmProxy proxy;
  Rect vp0;
};

TEST_F(FeedControllerFixture, InitialViewportMediaNotBlocked) {
  FeedController controller(feed, vp0, &proxy);
  for (const MediaObject& m : feed.media) {
    bool in_vp = vp0.overlaps(m.rect);
    EXPECT_EQ(controller.is_blocked(m.top_version().url), !in_vp) << m.id;
  }
}

TEST_F(FeedControllerFixture, PolicyGivesSettledClipsFullVersion) {
  FeedController controller(feed, vp0, &proxy);
  proxy.set_interceptor(&controller);

  // Park every blocked media at the proxy (the app requested everything).
  for (const MediaObject& m : feed.media) {
    FetchCallbacks cbs;
    cbs.on_complete = [](const FetchResult&) {};
    proxy.fetch(HttpRequest::get(m.top_version().url), std::move(cbs));
  }
  sim.run_until(10);

  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = feed.bounds();
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -9000};
  ScrollPrediction pred = tracker.predict(g, vp0);
  ScrollAnalysis analysis = tracker.analyze(pred, feed.media);
  FlowController::Params fp;
  fp.weights = {1.0, 0.3};
  fp.ignore_bandwidth_constraint = true;
  DownloadPolicy policy =
      FlowController(fp).optimize(analysis, feed.media, BandwidthTrace::constant(2e6));

  controller.on_policy(analysis, policy);
  sim.run();

  // Everything overlapping the final viewport got its FULL version.
  Rect final_vp = pred.final_viewport();
  for (const MediaObject& m : feed.media) {
    if (!final_vp.overlaps(m.rect)) continue;
    EXPECT_FALSE(controller.is_blocked(m.top_version().url)) << m.id;
  }
  EXPECT_GT(controller.stats().full_releases, 0u);
}

TEST_F(FeedControllerFixture, GlimpsedClipsGetThumbnails) {
  FeedController controller(feed, vp0, &proxy);
  proxy.set_interceptor(&controller);
  std::unordered_map<std::string, Bytes> delivered;
  for (const MediaObject& m : feed.media) {
    FetchCallbacks cbs;
    std::string url = m.top_version().url;
    cbs.on_complete = [&delivered, url](const FetchResult& r) {
      delivered[url] = r.body_size;
    };
    proxy.fetch(HttpRequest::get(url), std::move(cbs));
  }
  sim.run_until(10);

  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = feed.bounds();
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -20000};  // violent fling: long transit corridor
  ScrollPrediction pred = tracker.predict(g, vp0);
  ScrollAnalysis analysis = tracker.analyze(pred, feed.media);
  FlowController::Params fp;
  fp.weights = {1.0, 0.6};  // enough cost pressure to prefer thumbnails
  fp.ignore_bandwidth_constraint = true;
  DownloadPolicy policy =
      FlowController(fp).optimize(analysis, feed.media, BandwidthTrace::constant(2e6));
  controller.on_policy(analysis, policy);
  sim.run();

  if (controller.stats().thumb_releases > 0) {
    // Substituted clips completed with their *thumbnail* sizes.
    std::size_t thumb_sized = 0;
    for (const MediaObject& m : feed.media) {
      if (m.versions.size() < 2) continue;
      auto it = delivered.find(m.top_version().url);
      if (it != delivered.end() && it->second == m.versions[0].size) ++thumb_sized;
    }
    EXPECT_EQ(thumb_sized, controller.stats().thumb_releases);
  }
}

// ---------- end-to-end session ----------

TEST(FeedSession, MfHttpImprovesInstantPlayback) {
  // A feed long enough that "just download everything" cannot finish within
  // the session — the regime the paper's motivation (Fig. 3) lives in.
  Feed feed = make_feed(21, 120);
  FeedSessionConfig cfg;
  cfg.seed = 5;
  cfg.enable_mfhttp = false;
  FeedSessionResult base = run_feed_session(feed, cfg);
  cfg.enable_mfhttp = true;
  FeedSessionResult mf = run_feed_session(feed, cfg);

  ASSERT_GT(base.clips_settled, 0u);
  ASSERT_EQ(mf.clips_settled, base.clips_settled);  // same trajectory
  // The headline: the user settles on clips that are already playable.
  EXPECT_GT(mf.instant_play_rate, base.instant_play_rate);
  // And the bill is smaller.
  EXPECT_LT(mf.bytes_downloaded, base.bytes_downloaded);
  EXPECT_GT(mf.media_avoided, 0u);
}

TEST(FeedSession, DeterministicForSeed) {
  Feed feed = make_feed(31, 40);
  FeedSessionConfig cfg;
  cfg.seed = 9;
  FeedSessionResult a = run_feed_session(feed, cfg);
  FeedSessionResult b = run_feed_session(feed, cfg);
  EXPECT_EQ(a.clips_instant, b.clips_instant);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.thumbs_substituted, b.thumbs_substituted);
}

TEST(FeedSession, CostPressureProducesThumbnailSubstitutions) {
  Feed feed = make_feed(41, 80);
  FeedSessionConfig cfg;
  cfg.seed = 13;
  cfg.enable_mfhttp = true;
  cfg.weights = {1.0, 0.6};
  cfg.fling_speed_px_s = 20000;  // long corridors, many glimpsed clips
  FeedSessionResult r = run_feed_session(feed, cfg);
  EXPECT_GT(r.thumbs_substituted, 0u);
}

}  // namespace
}  // namespace mfhttp
