// Cross-module integration tests: the full MF-HTTP pipeline from raw touch
// events through gesture recognition, scroll prediction, flow control, the
// MITM proxy, and the simulated network — for both case studies.
#include <gtest/gtest.h>

#include <optional>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "util/stats.h"
#include "video/session.h"
#include "web/blocklist_controller.h"
#include "web/browser.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

TEST(Integration, WebPipelineReleasesImagesOnScroll) {
  // Hand-wired version of the experiment runner, asserting intermediate
  // state at every stage.
  Simulator sim;
  Rng rng(21);
  WebPage page = generate_page(alexa25_specs()[16], kDevice, rng);  // qq-like

  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(2e6);
  cp.latency_ms = 8;
  cp.sharing = Link::Sharing::kFairShare;
  Link client_link(sim, cp);
  Link::Params sp;
  sp.bandwidth = BandwidthTrace::constant(12.5e6);
  sp.latency_ms = 4;
  Link server_link(sim, sp);

  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);

  Rect vp0{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  Middleware::Params mp;
  mp.tracker.scroll = ScrollConfig(kDevice);
  mp.tracker.coverage_step_ms = 4.0;
  mp.tracker.content_bounds = page.bounds();
  mp.flow.weights = {1.0, 0.0};
  mp.flow.ignore_bandwidth_constraint = true;
  mp.initial_viewport = vp0;
  Middleware middleware(mp, page.images, BandwidthTrace::constant(2e6), &sim);
  BlockListController controller(page, vp0, &proxy);
  proxy.set_interceptor(&controller);
  middleware.set_policy_callback(
      [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
        controller.on_policy(a, p);
      });
  TouchEventMonitor monitor(kDevice, [&](const Gesture& g) { middleware.on_gesture(g); });

  Browser browser(sim, &proxy, page);
  sim.schedule_at(0, [&] { browser.load(); });

  const std::size_t blocked_at_start = controller.block_list_size();
  ASSERT_GT(blocked_at_start, 0u);

  // Fire a strong downward scroll at t=1500ms.
  SwipeSpec spec;
  spec.start = {700, 1900};
  spec.direction = {0, -1};
  spec.speed_px_s = 9000;
  spec.start_time_ms = 1500;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    sim.schedule_at(ev.time_ms, [&, ev] { monitor.on_touch_event(ev); });

  // Before the scroll: the proxy holds deferred image requests.
  sim.run_until(1400);
  EXPECT_FALSE(proxy.deferred_urls().empty());
  std::size_t deferred_before = proxy.deferred_urls().size();

  sim.run_until(60'000);

  // The scroll released some images...
  EXPECT_GT(controller.releases(), 0u);
  EXPECT_LT(controller.block_list_size(), blocked_at_start);
  EXPECT_LT(proxy.deferred_urls().size(), deferred_before);
  // ...and the middleware produced a real prediction.
  ASSERT_TRUE(middleware.last_analysis().has_value());
  EXPECT_GT(middleware.last_analysis()->prediction.displacement.y, 0);

  // Everything in the final viewport is loaded by session end.
  Rect final_vp = middleware.viewport_at(60'000);
  EXPECT_GT(browser.viewport_load_time(final_vp), 0);

  // Images that never appeared remain parked at the proxy, never transferred.
  EXPECT_GT(proxy.deferred_urls().size(), 0u);
  EXPECT_EQ(proxy.stats().blocked, 0u);
}

TEST(Integration, MultipleGesturesProgressivelyUnblock) {
  Rng rng(31);
  WebPage page = generate_page(alexa25_specs()[19], kDevice, rng);  // sohu-like
  Simulator sim;
  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(2e6);
  cp.sharing = Link::Sharing::kFairShare;
  Link client_link(sim, cp);
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);

  Rect vp0{0, 0, kDevice.screen_w_px, kDevice.screen_h_px};
  Middleware::Params mp;
  mp.tracker.scroll = ScrollConfig(kDevice);
  mp.tracker.coverage_step_ms = 8.0;
  mp.tracker.content_bounds = page.bounds();
  mp.flow.ignore_bandwidth_constraint = true;
  mp.flow.weights = {1.0, 0.0};
  mp.initial_viewport = vp0;
  Middleware middleware(mp, page.images, BandwidthTrace::constant(2e6), &sim);
  BlockListController controller(page, vp0, &proxy);
  proxy.set_interceptor(&controller);
  middleware.set_policy_callback(
      [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
        controller.on_policy(a, p);
      });
  TouchEventMonitor monitor(kDevice, [&](const Gesture& g) { middleware.on_gesture(g); });

  Browser browser(sim, &proxy, page);
  sim.schedule_at(0, [&] { browser.load(); });

  // Three successive swipes walk down the page.
  std::vector<std::size_t> blocked_after;
  TimeMs t = 1000;
  for (int i = 0; i < 3; ++i) {
    SwipeSpec spec;
    spec.start = {700, 1900};
    spec.direction = {0, -1};
    spec.speed_px_s = 8000;
    spec.start_time_ms = t;
    for (const TouchEvent& ev : synthesize_swipe(spec))
      sim.schedule_at(ev.time_ms, [&, ev] { monitor.on_touch_event(ev); });
    t += 4000;
    sim.run_until(t - 100);
    blocked_after.push_back(controller.block_list_size());
  }
  // Monotone shrinking of the block list as the user explores the page.
  EXPECT_GT(blocked_after[0], blocked_after[1]);
  EXPECT_GE(blocked_after[1], blocked_after[2]);
  EXPECT_GT(controller.releases(), 3u);
}

TEST(Integration, Fig7StyleSweepShowsConsistentImprovement) {
  // Mini version of the Fig. 7 experiment over 5 limited-viewport sites.
  Rng rng(4);
  auto corpus = generate_corpus(kDevice, rng);
  RunningStats reduction;
  int sites = 0;
  for (const WebPage& page : corpus) {
    if (page.viewport_ratio(kDevice.screen_h_px) >= 1.0) continue;
    if (++sites > 5) break;
    BrowsingSessionConfig cfg;
    cfg.fill_sample_ms = 0;
    cfg.seed = 7;
    cfg.enable_mfhttp = false;
    auto base = run_browsing_session(page, cfg);
    cfg.enable_mfhttp = true;
    auto mf = run_browsing_session(page, cfg);
    ASSERT_GT(base.initial_viewport_load_ms, 0) << page.site;
    ASSERT_GT(mf.initial_viewport_load_ms, 0) << page.site;
    double r = 1.0 - static_cast<double>(mf.initial_viewport_load_ms) /
                         static_cast<double>(base.initial_viewport_load_ms);
    EXPECT_GT(r, 0.0) << page.site;
    reduction.add(r);
  }
  ASSERT_EQ(sites, 6);  // 5 measured + the break increment
  // Mean reduction in the paper's ballpark (44.3%); accept a broad band.
  EXPECT_GT(reduction.mean(), 0.25);
  EXPECT_LT(reduction.mean(), 0.8);
}

TEST(Integration, VideoPipelineTouchToReplayConsistency) {
  // Drag gestures -> viewport trace -> MF-HTTP plans -> HTTP replay; the
  // bytes the plans claim must equal the bytes the proxy actually moves.
  VideoAsset::Params vp;
  vp.duration_s = 20;
  VideoAsset video(vp);

  ViewportTrace::Params tp;
  tp.device = kDevice;
  ViewportTrace trace(tp);
  VideoDragSource src(kDevice, {}, Rng(13));
  GestureRecognizer rec(kDevice);
  TimeMs now = 0;
  while (now < 20'000) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = rec.on_touch_event(ev)) trace.add_gesture(*g);
  }

  MfHttpTileScheduler sched;
  auto bw = BandwidthTrace::constant(kb_per_sec(750));
  auto session = run_streaming_session(video, trace, bw, sched,
                                       StreamingSessionParams{});
  Bytes plan_bytes = 0;
  for (const SegmentRecord& r : session.segments) plan_bytes += r.bytes;
  EXPECT_EQ(plan_bytes, session.total_bytes);

  auto completion = replay_session_over_http(video, session, bw);
  int fetched_segments = 0;
  for (std::size_t i = 0; i < completion.size(); ++i)
    if (completion[i] >= 0) ++fetched_segments;
  int planned_segments = 0;
  for (const SegmentRecord& r : session.segments)
    if (r.viewport_quality >= 0) ++planned_segments;
  EXPECT_EQ(fetched_segments, planned_segments);
}

TEST(Integration, WholePipelineDeterministic) {
  Rng rng(8);
  WebPage page = generate_page(alexa25_specs()[13], kDevice, rng);
  BrowsingSessionConfig cfg;
  cfg.seed = 5;
  cfg.fill_sample_ms = 250;
  auto a = run_browsing_session(page, cfg);
  auto b = run_browsing_session(page, cfg);
  EXPECT_EQ(a.initial_viewport_load_ms, b.initial_viewport_load_ms);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  ASSERT_EQ(a.fill_timeline.size(), b.fill_timeline.size());
  for (std::size_t i = 0; i < a.fill_timeline.size(); ++i)
    EXPECT_DOUBLE_EQ(a.fill_timeline[i].second, b.fill_timeline[i].second);
}

}  // namespace
}  // namespace mfhttp
