// Tests for the obs metrics registry: counter/gauge/histogram semantics,
// bucket boundaries, snapshot JSON shape, the shared CLI flag extraction
// (--metrics-json via util/cli_options.h), and the instrumentation wired
// through the Middleware assembly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "obs/metrics.h"
#include "util/cli_options.h"
#include "util/json.h"

namespace mfhttp {
namespace {

// The registry is process-global; every test starts from zeroed values.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::metrics().reset(); }
};

// ---------- Counter / Gauge ----------

TEST_F(MetricsTest, CounterIncrementsAndResets) {
  obs::Counter& c = obs::metrics().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(obs::metrics().counter_value("test.counter"), 42u);
  obs::metrics().reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterReferenceIsStableAcrossLookups) {
  obs::Counter& a = obs::metrics().counter("test.stable");
  obs::Counter& b = obs::metrics().counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricsTest, GaugeTracksLevel) {
  obs::Gauge& g = obs::metrics().gauge("test.gauge");
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(obs::metrics().gauge_value("test.gauge"), -7);
}

TEST_F(MetricsTest, UnregisteredNamesReadZero) {
  EXPECT_EQ(obs::metrics().counter_value("test.never_registered"), 0u);
  EXPECT_EQ(obs::metrics().gauge_value("test.never_registered"), 0);
  EXPECT_EQ(obs::metrics().find_histogram("test.never_registered"), nullptr);
}

// ---------- Histogram ----------

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  obs::Histogram& h =
      obs::metrics().histogram("test.hist", std::vector<double>{1.0, 10.0, 100.0});
  // "le" semantics: each observation lands in the first bucket with v <= bound.
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (boundary is inclusive)
  h.observe(1.001);  // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(100.1);  // overflow
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);  // overflow bucket at bounds().size()
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 100.1 + 1e9, 1e-6);
  EXPECT_NEAR(h.mean(), h.sum() / 7.0, 1e-9);
}

TEST_F(MetricsTest, HistogramResetZeroesBucketsAndSum) {
  obs::Histogram& h =
      obs::metrics().histogram("test.hist_reset", std::vector<double>{1.0});
  h.observe(0.5);
  h.observe(2.0);
  obs::metrics().reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  // Bounds survive a reset; only values are zeroed.
  EXPECT_EQ(h.bounds(), std::vector<double>{1.0});
}

TEST_F(MetricsTest, HistogramBoundsFixedByFirstRegistration) {
  obs::Histogram& a =
      obs::metrics().histogram("test.hist_bounds", std::vector<double>{1.0, 2.0});
  obs::Histogram& b = obs::metrics().histogram("test.hist_bounds");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(MetricsTest, BoundGenerators) {
  EXPECT_EQ(obs::exponential_bounds(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(obs::linear_bounds(0.0, 1.0, 3), (std::vector<double>{0.0, 1.0, 2.0}));
  // Default latency bounds are strictly ascending (valid histogram bounds).
  const std::vector<double>& lat = obs::latency_ms_bounds();
  ASSERT_GT(lat.size(), 1u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_LT(lat[i - 1], lat[i]);
}

// ---------- Snapshot JSON ----------

TEST_F(MetricsTest, SnapshotJsonShape) {
  obs::metrics().counter("test.snap_counter").inc(3);
  obs::metrics().gauge("test.snap_gauge").set(-2);
  obs::Histogram& h =
      obs::metrics().histogram("test.snap_hist", std::vector<double>{1.0, 2.0});
  h.observe(0.5);
  h.observe(99.0);

  const std::string json = obs::metrics().snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_gauge\":-2"), std::string::npos);
  // Histogram entry carries count, sum, and per-bucket "le" bounds; the
  // overflow bucket's bound serializes as null.
  EXPECT_NE(json.find("\"test.snap_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"le\":null"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotMatchesHandWrittenWriter) {
  // write_snapshot into a caller-supplied writer == snapshot_json round-trip.
  obs::metrics().counter("test.rt").inc(7);
  JsonWriter w;
  obs::metrics().write_snapshot(w);
  EXPECT_EQ(w.str(), obs::metrics().snapshot_json());
}

// ---------- --metrics-json flag extraction ----------

// argv must be mutable (main()'s is); build it from owned strings.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (std::string& a : storage) ptrs.push_back(a.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  char** data() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
};

TEST_F(MetricsTest, ExtractFlagWithSeparateValue) {
  Argv a({"prog", "--foo", "--metrics-json", "/tmp/m.json", "bar"});
  std::string path;
  CliOptions options("prog");
  options.add_string("--metrics-json", "path", "snapshot path", &path);
  ASSERT_TRUE(options.parse(a.argc, a.data()));
  EXPECT_EQ(path, "/tmp/m.json");
  ASSERT_EQ(a.argc, 3);
  EXPECT_STREQ(a.data()[0], "prog");
  EXPECT_STREQ(a.data()[1], "--foo");
  EXPECT_STREQ(a.data()[2], "bar");
}

TEST_F(MetricsTest, ExtractFlagWithEqualsValue) {
  Argv a({"prog", "--metrics-json=/tmp/m.json"});
  std::string path;
  CliOptions options("prog");
  options.add_string("--metrics-json", "path", "snapshot path", &path);
  ASSERT_TRUE(options.parse(a.argc, a.data()));
  EXPECT_EQ(path, "/tmp/m.json");
  EXPECT_EQ(a.argc, 1);
}

TEST_F(MetricsTest, ExtractFlagAbsentLeavesArgvAlone) {
  Argv a({"prog", "--benchmark_filter=all"});
  std::string path;
  CliOptions options("prog");
  options.add_string("--metrics-json", "path", "snapshot path", &path);
  ASSERT_TRUE(options.parse(a.argc, a.data()));
  EXPECT_EQ(path, "");
  EXPECT_EQ(a.argc, 2);
}

// ---------- Middleware integration ----------

TEST_F(MetricsTest, MiddlewareGestureIncrementsPipelineCounters) {
  const DeviceProfile device = DeviceProfile::nexus6();
  const Rect viewport{0, 0, 1440, 2560};
  Middleware::Params params;
  params.tracker.scroll = ScrollConfig(device);
  params.tracker.coverage_step_ms = 4.0;
  params.tracker.content_bounds = Rect{0, 0, 1440, 40'000};
  params.initial_viewport = viewport;

  std::vector<MediaObject> objects;
  for (int i = 0; i < 20; ++i)
    objects.push_back(make_single_version_object(
        "o" + std::to_string(i), Rect{100, i * 600.0, 800, 400}, 50'000, "u"));
  Middleware mw(params, std::move(objects), BandwidthTrace::constant(1e6),
                nullptr);

  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 850;
  g.up_time_ms = 1000;
  g.down_pos = {700, 1800};
  g.up_pos = {700, 1800};
  g.release_velocity = {0, -4000};
  mw.on_gesture(g);

  // One gesture walks the whole pipeline: monitor -> tracker -> optimizer.
  obs::Registry& reg = obs::metrics();
  EXPECT_EQ(reg.counter_value("core.middleware.gestures_total"), 1u);
  EXPECT_EQ(reg.counter_value("core.middleware.scrolls_total"), 1u);
  EXPECT_EQ(reg.counter_value("core.tracker.predictions_total"), 1u);
  EXPECT_EQ(reg.counter_value("core.tracker.analyses_total"), 1u);
  EXPECT_EQ(reg.counter_value("core.flow.policies_total"), 1u);
  EXPECT_GT(reg.counter_value("core.flow.objects_allowed_total"), 0u);
  const obs::Histogram* solve = reg.find_histogram("core.flow.solve_ms");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->count(), 1u);

  // A second fling mid-animation inherits flywheel velocity.
  Gesture g2 = g;
  g2.down_time_ms = 1150;
  g2.up_time_ms = 1300;
  mw.on_gesture(g2);
  EXPECT_EQ(reg.counter_value("core.middleware.gestures_total"), 2u);
  EXPECT_EQ(reg.counter_value("core.middleware.flywheel_inherits_total"), 1u);
}

}  // namespace
}  // namespace mfhttp
