// Tests for ViewportState, TouchEventMonitor, and the Middleware assembly
// (Fig. 5): gesture -> tracker -> flow controller -> policy callback, with
// animation interruption on new touches (§4.2).
#include <gtest/gtest.h>

#include "core/middleware.h"
#include "gesture/synthetic.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();
const Rect kViewport{0, 0, 1440, 2560};
const Rect kPage{0, 0, 1440, 40'000};

Gesture fling_gesture(Vec2 v, TimeMs up, Vec2 finger_travel = {}) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = up - 150;
  g.up_time_ms = up;
  g.down_pos = {700, 1800};
  g.up_pos = g.down_pos + finger_travel;
  g.release_velocity = v;
  return g;
}

ScrollTracker::Params tracker_params() {
  ScrollTracker::Params p;
  p.scroll = ScrollConfig(kDevice);
  p.coverage_step_ms = 4.0;
  p.content_bounds = kPage;
  return p;
}

// ---------- ViewportState ----------

TEST(ViewportState, StaticWithoutAnimation) {
  ViewportState state(kViewport, kPage);
  EXPECT_EQ(state.at(0), kViewport);
  EXPECT_EQ(state.at(99'999), kViewport);
}

TEST(ViewportState, ContactPanMovesOppositeFinger) {
  ViewportState state(kViewport, kPage);
  Gesture g = fling_gesture({0, -3000}, 1000, {0, -500});  // finger up 500 px
  state.apply_contact_pan(g);
  EXPECT_DOUBLE_EQ(state.base_viewport().y, 500);  // page scrolled down
}

TEST(ViewportState, ContactPanClampedAtTop) {
  ViewportState state(kViewport, kPage);
  Gesture g = fling_gesture({0, 3000}, 1000, {0, 800});  // finger down at top
  state.apply_contact_pan(g);
  EXPECT_DOUBLE_EQ(state.base_viewport().y, 0);  // cannot scroll above page
}

TEST(ViewportState, AnimationAdvancesViewport) {
  ViewportState state(kViewport, kPage);
  ScrollTracker tracker(tracker_params());
  Gesture g = fling_gesture({0, -4000}, 1000);
  ScrollPrediction pred = tracker.predict(g, kViewport);
  state.begin_animation(pred);

  Rect early = state.at(1000 + 50);
  Rect late = state.at(1000 + static_cast<TimeMs>(pred.duration_ms));
  EXPECT_GT(early.y, 0);
  EXPECT_GT(late.y, early.y);
  // `late` samples at the integer millisecond just below the real-valued
  // animation duration, so allow sub-pixel slack.
  EXPECT_NEAR(late.y, pred.final_viewport().y, 0.05);
  // Before the animation: initial viewport.
  EXPECT_EQ(state.at(900), kViewport);
}

TEST(ViewportState, InterruptFreezesMidAnimation) {
  ViewportState state(kViewport, kPage);
  ScrollTracker tracker(tracker_params());
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -4000}, 1000), kViewport);
  state.begin_animation(pred);

  TimeMs mid = 1000 + static_cast<TimeMs>(pred.duration_ms / 3);
  Rect at_interrupt = state.interrupt(mid);
  EXPECT_GT(at_interrupt.y, 0);
  EXPECT_LT(at_interrupt.y, pred.final_viewport().y);
  // Frozen thereafter.
  EXPECT_EQ(state.at(mid + 10'000), at_interrupt);
  EXPECT_FALSE(state.active_animation().has_value());
}

// ---------- TouchEventMonitor ----------

TEST(TouchEventMonitor, EmitsGesturesFromTraces) {
  std::vector<Gesture> gestures;
  TouchEventMonitor monitor(kDevice, [&](const Gesture& g) { gestures.push_back(g); });
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.speed_px_s = 4000;
  monitor.feed(synthesize_swipe(spec));
  ASSERT_EQ(gestures.size(), 1u);
  EXPECT_EQ(gestures[0].kind, GestureKind::kFling);

  monitor.feed(synthesize_tap({700, 1200}, 3000));
  ASSERT_EQ(gestures.size(), 2u);
  EXPECT_EQ(gestures[1].kind, GestureKind::kClick);
}

// ---------- Middleware ----------

std::vector<MediaObject> column_objects(int count) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i)
    objects.push_back(make_single_version_object(
        "o" + std::to_string(i), Rect{100, i * 600.0, 800, 400}, 50'000,
        "http://s.example/i" + std::to_string(i)));
  return objects;
}

Middleware::Params middleware_params() {
  Middleware::Params p;
  p.tracker = tracker_params();
  p.flow.weights = {1.0, 0.0};
  p.initial_viewport = kViewport;
  return p;
}

TEST(Middleware, ScrollGestureProducesPolicy) {
  Middleware mw(middleware_params(), column_objects(30),
                BandwidthTrace::constant(1e6), nullptr);
  int calls = 0;
  mw.set_policy_callback([&](const ScrollAnalysis& a, const DownloadPolicy& p) {
    ++calls;
    EXPECT_FALSE(p.decisions.empty());
    EXPECT_GT(a.prediction.displacement.norm(), 0);
  });
  mw.on_gesture(fling_gesture({0, -4000}, 1000));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(mw.last_policy().has_value());
  EXPECT_TRUE(mw.last_analysis().has_value());
}

TEST(Middleware, ClickDoesNotProducePolicy) {
  Middleware mw(middleware_params(), column_objects(10),
                BandwidthTrace::constant(1e6), nullptr);
  int calls = 0;
  mw.set_policy_callback([&](const ScrollAnalysis&, const DownloadPolicy&) { ++calls; });
  Gesture click;
  click.kind = GestureKind::kClick;
  click.down_time_ms = 100;
  click.up_time_ms = 160;
  mw.on_gesture(click);
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(mw.last_policy().has_value());
}

TEST(Middleware, ViewportTracksAcrossGestures) {
  Middleware mw(middleware_params(), column_objects(60),
                BandwidthTrace::constant(1e6), nullptr);
  mw.on_gesture(fling_gesture({0, -4000}, 1000, {0, -300}));
  const ScrollPrediction pred1 = mw.last_analysis()->prediction;  // copy
  // Contact pan (300 px) applied before the animation.
  EXPECT_DOUBLE_EQ(pred1.viewport0.y, 300);

  // Second gesture long after the first settled: starts from its rest.
  TimeMs later = 1000 + static_cast<TimeMs>(pred1.duration_ms) + 2000;
  mw.on_gesture(fling_gesture({0, -4000}, later, {0, -300}));
  const ScrollPrediction& pred2 = mw.last_analysis()->prediction;
  EXPECT_NEAR(pred2.viewport0.y, pred1.final_viewport().y + 300, 0.05);
}

TEST(Middleware, NewGestureInterruptsAnimation) {
  Middleware mw(middleware_params(), column_objects(60),
                BandwidthTrace::constant(1e6), nullptr);
  mw.on_gesture(fling_gesture({0, -8000}, 1000));
  const ScrollPrediction pred1 = mw.last_analysis()->prediction;

  // Second touch lands mid-animation: §4.2 aborts the simulation there.
  TimeMs interrupt_down = 1000 + static_cast<TimeMs>(pred1.duration_ms / 4);
  Gesture g2 = fling_gesture({0, -4000}, interrupt_down + 150);
  g2.down_time_ms = interrupt_down;
  mw.on_gesture(g2);
  const ScrollPrediction& pred2 = mw.last_analysis()->prediction;
  double frozen_y = pred1.viewport_at(static_cast<double>(pred1.duration_ms) / 4).y;
  EXPECT_NEAR(pred2.viewport0.y, frozen_y, 2.0);
  EXPECT_LT(pred2.viewport0.y, pred1.final_viewport().y);
}

TEST(Middleware, GestureUplinkDelayDefersProcessing) {
  Simulator sim;
  Middleware::Params params = middleware_params();
  params.gesture_uplink_ms = 25;
  Middleware mw(params, column_objects(20), BandwidthTrace::constant(1e6), &sim);
  int calls = 0;
  mw.set_policy_callback([&](const ScrollAnalysis&, const DownloadPolicy&) { ++calls; });
  sim.schedule_at(100, [&] { mw.on_gesture(fling_gesture({0, -4000}, 100)); });
  sim.run_until(124);
  EXPECT_EQ(calls, 0);  // still in flight to the middleware server
  sim.run_until(126);
  EXPECT_EQ(calls, 1);
}

TEST(Middleware, SetObjectsResetsState) {
  Middleware mw(middleware_params(), column_objects(10),
                BandwidthTrace::constant(1e6), nullptr);
  mw.on_gesture(fling_gesture({0, -4000}, 1000));
  ASSERT_TRUE(mw.last_policy().has_value());
  mw.set_objects(column_objects(5), kViewport);
  EXPECT_FALSE(mw.last_policy().has_value());
  EXPECT_EQ(mw.objects().size(), 5u);
  EXPECT_EQ(mw.viewport_at(99'999), kViewport);
}

TEST(Middleware, FlywheelCompoundsSuccessiveFlings) {
  // A second same-direction fling launched mid-animation inherits the
  // remaining speed (Android OverScroller flywheel).
  Middleware::Params with = middleware_params();
  Middleware::Params without = middleware_params();
  without.enable_flywheel = false;

  auto run = [](Middleware::Params params) {
    Middleware mw(params, column_objects(60), BandwidthTrace::constant(1e6),
                  nullptr);
    mw.on_gesture(fling_gesture({0, -8000}, 1000));
    TimeMs mid = 1000 + static_cast<TimeMs>(
                            mw.last_analysis()->prediction.duration_ms / 4);
    Gesture g2 = fling_gesture({0, -8000}, mid + 150);
    g2.down_time_ms = mid;
    mw.on_gesture(g2);
    return mw.last_analysis()->prediction.displacement.y;
  };
  double boosted = run(with);
  double plain = run(without);
  EXPECT_GT(boosted, plain * 1.2);
}

TEST(Middleware, FlywheelIgnoresOppositeDirection) {
  Middleware mw(middleware_params(), column_objects(60),
                BandwidthTrace::constant(1e6), nullptr);
  mw.on_gesture(fling_gesture({0, -8000}, 1000));
  TimeMs mid =
      1000 + static_cast<TimeMs>(mw.last_analysis()->prediction.duration_ms / 4);
  // Reverse flick: no inherited speed; displacement magnitude is just the
  // plain fling's.
  Gesture g2 = fling_gesture({0, 8000}, mid + 150);
  g2.down_time_ms = mid;
  mw.on_gesture(g2);
  const ScrollPrediction& pred2 = mw.last_analysis()->prediction;
  EXPECT_LT(pred2.displacement.y, 0);  // scrolling back up
  // No inherited speed: the reverse fling would cover its plain distance,
  // but the page top is closer, so it clamps exactly there.
  EXPECT_NEAR(-pred2.displacement.y, pred2.viewport0.y, 1e-6);
  ScrollAnimation reference({0, 8000}, ScrollConfig(kDevice));
  EXPECT_LE(-pred2.displacement.y, reference.total_distance());
}

TEST(Middleware, FlywheelNotAppliedAfterSettle) {
  Middleware mw(middleware_params(), column_objects(60),
                BandwidthTrace::constant(1e6), nullptr);
  mw.on_gesture(fling_gesture({0, -8000}, 1000));
  TimeMs later = 1000 +
                 static_cast<TimeMs>(mw.last_analysis()->prediction.duration_ms) +
                 500;
  Gesture g2 = fling_gesture({0, -8000}, later + 150);
  g2.down_time_ms = later;
  mw.on_gesture(g2);
  ScrollAnimation reference({0, 8000}, ScrollConfig(kDevice));
  EXPECT_NEAR(mw.last_analysis()->prediction.displacement.y,
              reference.total_distance(), 1.0);
}

TEST(Middleware, ViewportScaleShrinksViewport) {
  Middleware mw(middleware_params(), column_objects(60),
                BandwidthTrace::constant(1e6), nullptr);
  EXPECT_DOUBLE_EQ(mw.viewport_scale(), 1.0);
  mw.set_viewport_scale(2.0, 0);
  EXPECT_DOUBLE_EQ(mw.viewport_scale(), 2.0);
  Rect vp = mw.viewport_at(0);
  EXPECT_DOUBLE_EQ(vp.w, kViewport.w / 2);
  EXPECT_DOUBLE_EQ(vp.h, kViewport.h / 2);
  // Centered on the previous viewport's center, clamped into the page.
  EXPECT_GE(vp.x, 0);
  EXPECT_GE(vp.y, 0);
}

TEST(Middleware, ZoomedFlingCoversLessContent) {
  // The same finger flick pans half the content distance at 2x zoom.
  auto displacement_at_scale = [&](double scale) {
    Middleware mw(middleware_params(), column_objects(60),
                  BandwidthTrace::constant(1e6), nullptr);
    if (scale != 1.0) mw.set_viewport_scale(scale, 0);
    mw.on_gesture(fling_gesture({0, -8000}, 1000));
    return mw.last_analysis()->prediction.displacement.norm();
  };
  double normal = displacement_at_scale(1.0);
  double zoomed = displacement_at_scale(2.0);
  EXPECT_LT(zoomed, normal);
  // Content velocity halves; fling distance scales superlinearly in v, so
  // the zoomed displacement is well under half.
  EXPECT_LT(zoomed, normal * 0.55);
}

TEST(Middleware, ZoomedViewportInvolvesFewerObjects) {
  Middleware normal(middleware_params(), column_objects(60),
                    BandwidthTrace::constant(1e6), nullptr);
  Middleware zoomed(middleware_params(), column_objects(60),
                    BandwidthTrace::constant(1e6), nullptr);
  zoomed.set_viewport_scale(3.0, 0);
  normal.on_gesture(fling_gesture({0, -6000}, 1000));
  zoomed.on_gesture(fling_gesture({0, -6000}, 1000));
  EXPECT_LT(zoomed.last_policy()->decisions.size(),
            normal.last_policy()->decisions.size());
}

TEST(Middleware, EndToEndFromRawTouches) {
  // Full client-side path: raw events -> monitor -> middleware policy.
  Middleware mw(middleware_params(), column_objects(40),
                BandwidthTrace::constant(1e6), nullptr);
  int policies = 0;
  mw.set_policy_callback([&](const ScrollAnalysis&, const DownloadPolicy& p) {
    ++policies;
    EXPECT_GT(p.decisions.size(), 2u);
  });
  TouchEventMonitor monitor(kDevice, [&](const Gesture& g) { mw.on_gesture(g); });
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.direction = {0, -1};
  spec.speed_px_s = 5000;
  spec.start_time_ms = 500;
  monitor.feed(synthesize_swipe(spec));
  EXPECT_EQ(policies, 1);
}

}  // namespace
}  // namespace mfhttp
