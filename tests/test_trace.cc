// Tests for trace CSV I/O round-trips and malformed-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gesture/synthetic.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

TEST(TouchTraceIo, RoundTrip) {
  SwipeSpec spec;
  spec.start = {712.5, 1800.25};
  spec.speed_px_s = 3333;
  TouchTrace original = synthesize_swipe(spec);

  std::stringstream ss;
  write_touch_trace(ss, original);
  auto back = read_touch_trace(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*back)[i].time_ms, original[i].time_ms);
    EXPECT_EQ((*back)[i].action, original[i].action);
    EXPECT_NEAR((*back)[i].pos.x, original[i].pos.x, 1e-6);
    EXPECT_NEAR((*back)[i].pos.y, original[i].pos.y, 1e-6);
  }
}

TEST(TouchTraceIo, EmptyTrace) {
  std::stringstream ss;
  write_touch_trace(ss, {});
  auto back = read_touch_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(TouchTraceIo, RejectsBadAction) {
  std::stringstream ss("time_ms,action,x,y\n100,WIGGLE,1,2\n");
  EXPECT_FALSE(read_touch_trace(ss).has_value());
}

TEST(TouchTraceIo, RejectsBadNumbers) {
  std::stringstream ss("100,DOWN,abc,2\n");
  EXPECT_FALSE(read_touch_trace(ss).has_value());
}

TEST(TouchTraceIo, RejectsWrongFieldCount) {
  std::stringstream ss("100,DOWN,1\n");
  EXPECT_FALSE(read_touch_trace(ss).has_value());
}

TEST(TouchTraceIo, RejectsOutOfOrderTimestamps) {
  std::stringstream ss("100,DOWN,1,2\n50,MOVE,1,3\n");
  EXPECT_FALSE(read_touch_trace(ss).has_value());
}

TEST(TouchTraceIo, SkipsBlankLinesAndHeader) {
  std::stringstream ss("time_ms,action,x,y\n\n10,DOWN,1,2\n\n20,UP,1,2\n");
  auto back = read_touch_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 2u);
}

TEST(BandwidthTraceIo, RoundTrip) {
  Rng rng(3);
  auto original = BandwidthTrace::random_walk(rng, 500e3, 100e3, 100e3, 900e3, 30, 500);
  std::stringstream ss;
  write_bandwidth_trace(ss, original);
  auto back = read_bandwidth_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->slot_ms(), 500);
  ASSERT_EQ(back->slot_count(), 30u);
  for (std::size_t i = 0; i < 30; ++i)
    EXPECT_NEAR(back->slots()[i], original.slots()[i], original.slots()[i] * 1e-6);
}

TEST(BandwidthTraceIo, RejectsMissingHeader) {
  std::stringstream ss("1000\n2000\n");
  EXPECT_FALSE(read_bandwidth_trace(ss).has_value());
}

TEST(BandwidthTraceIo, RejectsNegativeRate) {
  std::stringstream ss("slot_ms=1000\n100\n-5\n");
  EXPECT_FALSE(read_bandwidth_trace(ss).has_value());
}

TEST(BandwidthTraceIo, RejectsEmptyBody) {
  std::stringstream ss("slot_ms=1000\n");
  EXPECT_FALSE(read_bandwidth_trace(ss).has_value());
}

TEST(TraceFileIo, SaveAndLoadFiles) {
  std::string touch_path = testing::TempDir() + "/mfhttp_touch.csv";
  std::string bw_path = testing::TempDir() + "/mfhttp_bw.csv";

  SwipeSpec spec;
  spec.start = {10, 20};
  TouchTrace trace = synthesize_swipe(spec);
  ASSERT_TRUE(save_touch_trace(touch_path, trace));
  auto back = load_touch_trace(touch_path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), trace.size());

  auto bw = BandwidthTrace::from_slots({1000, 2000}, 250);
  ASSERT_TRUE(save_bandwidth_trace(bw_path, bw));
  auto bw_back = load_bandwidth_trace(bw_path);
  ASSERT_TRUE(bw_back.has_value());
  EXPECT_EQ(bw_back->slot_count(), 2u);
  EXPECT_EQ(bw_back->slot_ms(), 250);

  std::remove(touch_path.c_str());
  std::remove(bw_path.c_str());
}

TEST(TraceFileIo, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(load_touch_trace("/nonexistent/path.csv").has_value());
  EXPECT_FALSE(load_bandwidth_trace("/nonexistent/path.csv").has_value());
}

}  // namespace
}  // namespace mfhttp
