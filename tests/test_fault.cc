// Tests for the deterministic fault-injection subsystem: FaultPlan schema /
// JSON round-trip / bandwidth shaping, the FaultyLink and FaultyFetcher
// decorators, and end-to-end determinism of faulted browsing sessions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/faulty_fetcher.h"
#include "fault/faulty_link.h"
#include "http/sim_http.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

using fault::FaultPlan;
using fault::FaultyFetcher;
using fault::FaultyLink;
using fault::LinkFaultWindow;

// ---------- FaultPlan: windows and shaping ----------

TEST(FaultPlan, EmptyPlanHasNoEffect) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.horizon_ms(), 0);
  EXPECT_FALSE(plan.in_outage(0));
  EXPECT_EQ(plan.extra_latency_at(1234), 0);
  BandwidthTrace base = BandwidthTrace::constant(1e6);
  BandwidthTrace shaped = plan.shape(base);
  EXPECT_DOUBLE_EQ(shaped.rate_at(500), 1e6);
}

TEST(FaultPlan, RepeatingWindowCoversEachOccurrence) {
  LinkFaultWindow w;
  w.kind = LinkFaultWindow::Kind::kOutage;
  w.at_ms = 1000;
  w.duration_ms = 500;
  w.repeat = 3;
  w.period_ms = 2000;
  EXPECT_FALSE(w.active_at(999));
  EXPECT_TRUE(w.active_at(1000));
  EXPECT_TRUE(w.active_at(1499));
  EXPECT_FALSE(w.active_at(1500));
  EXPECT_TRUE(w.active_at(3200));   // second occurrence
  EXPECT_TRUE(w.active_at(5400));   // third occurrence
  EXPECT_FALSE(w.active_at(7400));  // no fourth
  EXPECT_EQ(w.end_ms(), 1000 + 2 * 2000 + 500);
}

TEST(FaultPlan, ShapeZeroesOutagesAndScalesCollapses) {
  FaultPlan plan;
  LinkFaultWindow outage;
  outage.kind = LinkFaultWindow::Kind::kOutage;
  outage.at_ms = 1000;
  outage.duration_ms = 1000;
  plan.link.push_back(outage);
  LinkFaultWindow collapse;
  collapse.kind = LinkFaultWindow::Kind::kCollapse;
  collapse.at_ms = 3000;
  collapse.duration_ms = 1000;
  collapse.factor = 0.25;
  plan.link.push_back(collapse);

  BandwidthTrace shaped = plan.shape(BandwidthTrace::constant(1e6));
  EXPECT_DOUBLE_EQ(shaped.rate_at(500), 1e6);
  EXPECT_DOUBLE_EQ(shaped.rate_at(1500), 0.0);
  EXPECT_DOUBLE_EQ(shaped.rate_at(2500), 1e6);
  EXPECT_DOUBLE_EQ(shaped.rate_at(3500), 0.25e6);
  // Past the horizon the base trace continues.
  EXPECT_DOUBLE_EQ(shaped.rate_at(60'000), 1e6);
}

TEST(FaultPlan, LatencySpikesSum) {
  FaultPlan plan;
  LinkFaultWindow spike;
  spike.kind = LinkFaultWindow::Kind::kLatencySpike;
  spike.at_ms = 0;
  spike.duration_ms = 1000;
  spike.extra_latency_ms = 300;
  plan.link.push_back(spike);
  plan.link.push_back(spike);  // two overlapping spikes
  EXPECT_EQ(plan.extra_latency_at(500), 600);
  EXPECT_EQ(plan.extra_latency_at(1500), 0);
}

// ---------- FaultPlan: JSON ----------

TEST(FaultPlanJson, RoundTripPreservesEveryField) {
  FaultPlan plan = FaultPlan::lossy_cellular(/*seed=*/99);
  std::optional<FaultPlan> back = FaultPlan::from_json(plan.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 99u);
  EXPECT_EQ(back->name, "lossy-cellular");
  ASSERT_EQ(back->link.size(), plan.link.size());
  EXPECT_EQ(back->link[0].kind, plan.link[0].kind);
  EXPECT_EQ(back->link[0].at_ms, plan.link[0].at_ms);
  EXPECT_EQ(back->link[0].duration_ms, plan.link[0].duration_ms);
  EXPECT_EQ(back->link[0].repeat, plan.link[0].repeat);
  EXPECT_EQ(back->link[0].period_ms, plan.link[0].period_ms);
  EXPECT_DOUBLE_EQ(back->transfer.stall_rate, plan.transfer.stall_rate);
  EXPECT_EQ(back->transfer.stall_ms, plan.transfer.stall_ms);
  EXPECT_DOUBLE_EQ(back->origin.error_rate, plan.origin.error_rate);
  EXPECT_EQ(back->origin.error_statuses, plan.origin.error_statuses);
  EXPECT_DOUBLE_EQ(back->origin.abrupt_close_rate, plan.origin.abrupt_close_rate);
  // And a second trip is byte-identical.
  EXPECT_EQ(back->to_json(), plan.to_json());
}

TEST(FaultPlanJson, RejectsSchemaViolations) {
  // Unknown window kind.
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"link": [{"kind": "meteor", "at_ms": 0, "duration_ms": 5}]})"));
  // Rate outside [0, 1].
  EXPECT_FALSE(FaultPlan::from_json(R"({"transfer": {"stall_rate": 1.5}})"));
  EXPECT_FALSE(FaultPlan::from_json(R"({"origin": {"error_rate": -0.1}})"));
  // Collapse factor must stay below 1.
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"link": [{"kind": "collapse", "duration_ms": 5, "factor": 1.0}]})"));
  // Repeats may not overlap: period < duration.
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"link": [{"kind": "outage", "duration_ms": 100, "repeat": 2,
                    "period_ms": 50}]})"));
  // Error statuses must be 4xx/5xx.
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"origin": {"error_rate": 0.5, "error_statuses": [200]}})"));
  // Not an object / not JSON at all.
  EXPECT_FALSE(FaultPlan::from_json("[1, 2]"));
  EXPECT_FALSE(FaultPlan::from_json("{nope"));
}

TEST(FaultPlanJson, LoadReadsFileAndFailsGracefully) {
  std::string path = ::testing::TempDir() + "/fault_plan_test.json";
  {
    std::ofstream out(path);
    out << FaultPlan::lossy_cellular().to_json();
  }
  std::optional<FaultPlan> plan = FaultPlan::load(path);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->name, "lossy-cellular");
  std::remove(path.c_str());

  EXPECT_FALSE(FaultPlan::load(path).has_value());  // gone now
}

TEST(FaultPlanJson, GlobalPlanInstallAndClear) {
  EXPECT_EQ(fault::global_plan(), nullptr);
  fault::set_global_plan(FaultPlan::lossy_cellular());
  ASSERT_NE(fault::global_plan(), nullptr);
  EXPECT_EQ(fault::global_plan()->name, "lossy-cellular");
  fault::set_global_plan(std::nullopt);
  EXPECT_EQ(fault::global_plan(), nullptr);
}

// ---------- FaultyLink ----------

struct FaultyLinkFixture : public ::testing::Test {
  FaultyLink& make_link(const FaultPlan& plan) {
    Link::Params p;
    p.bandwidth = BandwidthTrace::constant(100'000);
    p.latency_ms = 0;
    link.emplace(sim, p, plan);
    return *link;
  }

  Simulator sim;
  std::optional<FaultyLink> link;
};

TEST_F(FaultyLinkFixture, CertainTruncationDeliversOnlyPrefix) {
  FaultPlan plan;
  plan.transfer.truncate_rate = 1.0;
  plan.transfer.truncate_fraction = 0.5;
  FaultyLink& l = make_link(plan);

  Bytes delivered = 0;
  int completes = 0;
  l.submit(50'000, [&](Bytes chunk, bool complete) {
    delivered += chunk;
    if (complete) ++completes;
  });
  sim.run();
  EXPECT_EQ(completes, 1);
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 50'000);
}

TEST_F(FaultyLinkFixture, CertainStallDelaysButDeliversEverything) {
  FaultPlan stall_plan;
  stall_plan.transfer.stall_rate = 1.0;
  stall_plan.transfer.stall_ms = 700;
  FaultyLink& l = make_link(stall_plan);
  Bytes delivered = 0;
  TimeMs done_at = -1;
  l.submit(50'000, [&](Bytes chunk, bool complete) {
    delivered += chunk;
    if (complete) done_at = sim.now();
  });
  sim.run();
  EXPECT_EQ(delivered, 50'000);
  // 50 KB at 100 KB/s is 500 ms unfaulted; the stall adds its full pause.
  EXPECT_GE(done_at, 500 + 700);
}

TEST_F(FaultyLinkFixture, LatencySpikeDefersTransferStart) {
  FaultPlan plan;
  LinkFaultWindow spike;
  spike.kind = LinkFaultWindow::Kind::kLatencySpike;
  spike.at_ms = 0;
  spike.duration_ms = 10'000;
  spike.extra_latency_ms = 400;
  plan.link.push_back(spike);
  FaultyLink& l = make_link(plan);
  TimeMs first_byte = -1;
  l.submit(10'000, [&](Bytes, bool) {
    if (first_byte < 0) first_byte = sim.now();
  });
  sim.run();
  EXPECT_GE(first_byte, 400);
}

TEST_F(FaultyLinkFixture, CancelSilencesFaultedTransfer) {
  FaultPlan plan;
  plan.transfer.stall_rate = 1.0;
  plan.transfer.stall_ms = 400;
  FaultyLink& l = make_link(plan);
  int calls_after_cancel = 0;
  bool cancelled = false;
  auto id = l.submit(50'000, [&](Bytes, bool) {
    if (cancelled) ++calls_after_cancel;
  });
  sim.schedule_at(50, [&] {
    cancelled = true;
    EXPECT_TRUE(l.cancel(id));
  });
  sim.run();
  EXPECT_EQ(calls_after_cancel, 0);
}

TEST_F(FaultyLinkFixture, SamePlanSameSeedSameByteTrace) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    FaultPlan plan;
    plan.seed = seed;
    plan.transfer.truncate_rate = 0.4;
    plan.transfer.stall_rate = 0.4;
    plan.transfer.stall_ms = 300;
    Link::Params p;
    p.bandwidth = BandwidthTrace::constant(100'000);
    FaultyLink link(sim, p, plan);
    std::vector<std::pair<TimeMs, Bytes>> trace;
    for (int i = 0; i < 8; ++i) {
      link.submit(10'000 + i * 1000, [&trace, &sim](Bytes chunk, bool) {
        trace.emplace_back(sim.now(), chunk);
      });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));  // the seed is the only difference
}

// ---------- FaultyFetcher ----------

struct FaultyFetcherFixture : public ::testing::Test {
  void SetUp() override {
    Link::Params p;
    p.bandwidth = BandwidthTrace::constant(100'000);
    server_link.emplace(sim, p);
    store.put("/img/a.jpg", 40'000, "image/jpeg");
    origin.emplace(sim, &store, &*server_link);
  }

  Simulator sim;
  ObjectStore store;
  std::optional<Link> server_link;
  std::optional<SimHttpOrigin> origin;
  std::optional<FaultyFetcher> fetcher;
};

TEST_F(FaultyFetcherFixture, CertainErrorSynthesizesStatusFromSet) {
  FaultPlan plan;
  plan.origin.error_rate = 1.0;
  plan.origin.error_statuses = {503};
  fetcher.emplace(sim, &*origin, plan);
  std::optional<FetchResult> out;
  std::optional<SimResponseMeta> meta;
  FetchCallbacks cbs;
  cbs.on_headers = [&](const SimResponseMeta& m) { meta = m; };
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  fetcher->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->status, 503);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 503);
  EXPECT_GT(out->body_size, 0);  // small error body
  EXPECT_EQ(fetcher->inflight(), 0u);
}

TEST_F(FaultyFetcherFixture, CertainAbruptCloseDiesMidBodyExactlyOnce) {
  FaultPlan plan;
  plan.origin.abrupt_close_rate = 1.0;
  plan.origin.abrupt_close_fraction = 0.5;
  fetcher.emplace(sim, &*origin, plan);
  int completes = 0;
  Bytes received = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_progress = [&](Bytes chunk, Bytes, Bytes) { received += chunk; };
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  fetcher->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  EXPECT_EQ(completes, 1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 0);  // connection-reset sentinel
  EXPECT_GT(out->body_size, 0);
  EXPECT_LT(out->body_size, 40'000);
  EXPECT_EQ(out->body_size, received);
  EXPECT_EQ(fetcher->inflight(), 0u);
  EXPECT_EQ(origin->inflight(), 0u);  // inner fetch torn down
}

TEST_F(FaultyFetcherFixture, NoOriginFaultsPassesThrough) {
  FaultPlan plan;  // link/transfer faults only are irrelevant here
  plan.transfer.stall_rate = 1.0;
  plan.transfer.stall_ms = 500;
  fetcher.emplace(sim, &*origin, plan);
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  fetcher->fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 40'000);
}

TEST_F(FaultyFetcherFixture, CancelBeforeSynthesizedErrorSilences) {
  FaultPlan plan;
  plan.origin.error_rate = 1.0;
  plan.origin.error_delay_ms = 50;
  fetcher.emplace(sim, &*origin, plan);
  int calls = 0;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult&) { ++calls; };
  auto id = fetcher->fetch(HttpRequest::get("http://s.example/img/a.jpg"),
                           std::move(cbs));
  sim.schedule_at(1, [&] { EXPECT_TRUE(fetcher->cancel(id)); });
  sim.run();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(fetcher->inflight(), 0u);
}

// ---------- End-to-end determinism ----------

TEST(FaultDeterminism, IdenticalFaultedSessionsProduceIdenticalResults) {
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng r = rng.fork();
    if (spec.name == "sohu") page = generate_page(spec, device, r);
  }
  FaultPlan plan = FaultPlan::lossy_cellular();
  BrowsingSessionConfig config;
  config.fault_plan = &plan;
  config.session_ms = 20'000;
  config.fill_sample_ms = 0;
  BrowsingSessionResult a = run_browsing_session(page, config);
  BrowsingSessionResult b = run_browsing_session(page, config);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace mfhttp
