// Tests for the flow controller (§3.4): policy structure, weight behavior,
// bandwidth constraints, multi-version selection, and the web-case
// "bandwidth constraint released" mode.
#include <gtest/gtest.h>

#include "core/flow_controller.h"
#include "core/middleware.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();
const Rect kViewport{0, 0, 1440, 2560};

Gesture fling_gesture(Vec2 v, TimeMs up = 0) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = up - 150;
  g.up_time_ms = up;
  g.down_pos = {700, 1800};
  g.up_pos = g.down_pos + v * 0.15;
  g.release_velocity = v;
  return g;
}

ScrollTracker::Params tracker_params() {
  ScrollTracker::Params p;
  p.scroll = ScrollConfig(kDevice);
  p.coverage_step_ms = 4.0;
  return p;
}

std::vector<MediaObject> single_version_column(int count, Bytes size = 50'000) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i)
    objects.push_back(make_single_version_object(
        "o" + std::to_string(i), Rect{100, i * 600.0, 800, 400}, size,
        "http://s.example/i" + std::to_string(i)));
  return objects;
}

std::vector<MediaObject> multi_version_column(int count) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i) {
    MediaObject obj;
    obj.id = "o" + std::to_string(i);
    obj.rect = {100, i * 600.0, 800, 400};
    obj.versions = {{360, 10'000, "http://s/l" + std::to_string(i)},
                    {720, 40'000, "http://s/m" + std::to_string(i)},
                    {1080, 120'000, "http://s/h" + std::to_string(i)}};
    objects.push_back(obj);
  }
  return objects;
}

ScrollAnalysis analyze(const std::vector<MediaObject>& objects, Vec2 velocity) {
  ScrollTracker tracker(tracker_params());
  ScrollPrediction pred = tracker.predict(fling_gesture(velocity), kViewport);
  return tracker.analyze(pred, objects);
}

TEST(FlowController, DecisionsCoverInvolvedObjectsInEntryOrder) {
  auto objects = single_version_column(30);
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(1e9));

  auto involved = analysis.involved_by_entry_time();
  ASSERT_EQ(policy.decisions.size(), involved.size());
  for (std::size_t k = 0; k < involved.size(); ++k)
    EXPECT_EQ(policy.decisions[k].object_index, involved[k]);
  double prev = -1;
  for (const DownloadDecision& d : policy.decisions) {
    EXPECT_GE(d.entry_time_ms, prev);
    prev = d.entry_time_ms;
  }
}

TEST(FlowController, AbundantBandwidthDownloadsAllEnteringObjects) {
  auto objects = single_version_column(30);
  ScrollAnalysis analysis = analyze(objects, {0, -12000});
  FlowController::Params params;
  params.weights = {1.0, 0.0};  // q = 0: QoE only
  FlowController fc(params);
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(1e9));
  int entering = 0;
  for (const DownloadDecision& d : policy.decisions) {
    if (d.entry_time_ms > 0) {
      // Every object that enters during the scroll is worth downloading.
      EXPECT_TRUE(d.download()) << d.object_index;
      ++entering;
    } else {
      // Eq. 13: an object already in the viewport at release has zero
      // accumulated bandwidth by its entry time — the optimizer cannot help
      // it (the case-study workflows release such objects directly).
      EXPECT_FALSE(d.download()) << d.object_index;
    }
  }
  EXPECT_GE(entering, 5);
  EXPECT_GT(policy.total_bytes, 0);
}

TEST(FlowController, ZeroBandwidthDownloadsNothing) {
  auto objects = single_version_column(30);
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(0));
  for (const DownloadDecision& d : policy.decisions) EXPECT_FALSE(d.download());
  EXPECT_EQ(policy.total_bytes, 0);
}

TEST(FlowController, PolicyRespectsPrefixBandwidth) {
  auto objects = single_version_column(30, 100'000);
  ScrollAnalysis analysis = analyze(objects, {0, -5000});
  FlowController fc(FlowController::Params{});
  auto bw = BandwidthTrace::constant(200'000);  // 200 KB/s
  DownloadPolicy policy = fc.optimize(analysis, objects, bw);

  // Check Eq. 13 directly on the emitted policy.
  Bytes prefix = 0;
  for (const DownloadDecision& d : policy.decisions) {
    if (d.download())
      prefix += objects[d.object_index]
                    .versions[static_cast<std::size_t>(d.version)]
                    .size;
    double cap = bw.bytes_between(
        analysis.prediction.start_time_ms,
        analysis.prediction.start_time_ms +
            static_cast<TimeMs>(std::ceil(d.entry_time_ms)));
    EXPECT_LE(static_cast<double>(prefix), cap + 1e-6) << d.object_index;
  }
}

TEST(FlowController, TightBandwidthPrefersCheaperVersions) {
  auto objects = multi_version_column(20);
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController::Params params;
  params.weights = {1.0, 0.0};
  FlowController fc(params);

  DownloadPolicy rich = fc.optimize(analysis, objects, BandwidthTrace::constant(1e9));
  DownloadPolicy poor = fc.optimize(analysis, objects, BandwidthTrace::constant(150'000));

  auto mean_version = [](const DownloadPolicy& p) {
    double sum = 0;
    int n = 0;
    for (const DownloadDecision& d : p.decisions)
      if (d.download()) {
        sum += d.version;
        ++n;
      }
    return n ? sum / n : -1.0;
  };
  EXPECT_GT(mean_version(rich), mean_version(poor));
  EXPECT_GT(poor.total_bytes, 0);
  EXPECT_LT(poor.total_bytes, rich.total_bytes);
}

TEST(FlowController, CostWeightSuppressesMarginalObjects) {
  auto objects = single_version_column(60);
  ScrollAnalysis analysis = analyze(objects, {0, -12000});

  FlowController::Params qoe_only;
  qoe_only.weights = {1.0, 0.0};
  FlowController::Params cost_heavy;
  cost_heavy.weights = {1.0, 3.0};

  auto bw = BandwidthTrace::constant(5e6);
  DownloadPolicy p_free = FlowController(qoe_only).optimize(analysis, objects, bw);
  DownloadPolicy p_pay = FlowController(cost_heavy).optimize(analysis, objects, bw);

  auto downloads = [](const DownloadPolicy& p) {
    std::size_t n = 0;
    for (const DownloadDecision& d : p.decisions)
      if (d.download()) ++n;
    return n;
  };
  EXPECT_LT(downloads(p_pay), downloads(p_free));
  // With cost pressure, objects that barely appear get dropped while
  // final-viewport objects (Q2 = 1) that enter during the scroll survive.
  for (const DownloadDecision& d : p_pay.decisions) {
    if (analysis.coverages[d.object_index].in_final_viewport &&
        d.entry_time_ms > 0) {
      EXPECT_TRUE(d.download()) << d.object_index;
    }
  }
}

TEST(FlowController, IgnoreBandwidthConstraintDownloadsAllWithQZero) {
  auto objects = single_version_column(40, 500'000);  // heavy images
  ScrollAnalysis analysis = analyze(objects, {0, -6000});
  FlowController::Params params;
  params.weights = {1.0, 0.0};
  params.ignore_bandwidth_constraint = true;
  FlowController fc(params);
  // Even with a starved trace, the web mode ignores Eq. 13.
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(10));
  for (const DownloadDecision& d : policy.decisions) EXPECT_TRUE(d.download());
}

TEST(FlowController, GreedyModeProducesFeasibleLowerBound) {
  auto objects = multi_version_column(15);
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  auto bw = BandwidthTrace::constant(300'000);

  FlowController::Params dp_params;
  FlowController::Params greedy_params;
  greedy_params.use_greedy = true;

  DownloadPolicy dp = FlowController(dp_params).optimize(analysis, objects, bw);
  DownloadPolicy greedy = FlowController(greedy_params).optimize(analysis, objects, bw);
  EXPECT_LE(greedy.objective, dp.objective + 1e-9);
}

TEST(FlowController, EmptyAnalysisEmptyPolicy) {
  std::vector<MediaObject> objects;
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(1e6));
  EXPECT_TRUE(policy.decisions.empty());
  EXPECT_DOUBLE_EQ(policy.objective, 0);
}

TEST(FlowController, NoInvolvedObjectsEmptyPolicy) {
  // All objects far to the right of a vertical scroll.
  std::vector<MediaObject> objects;
  objects.push_back(make_single_version_object("far", Rect{50'000, 0, 100, 100},
                                               1000, "http://s/x"));
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(1e6));
  EXPECT_TRUE(policy.decisions.empty());
}

TEST(FlowController, FindLocatesDecision) {
  auto objects = single_version_column(10);
  ScrollAnalysis analysis = analyze(objects, {0, -3000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy = fc.optimize(analysis, objects, BandwidthTrace::constant(1e9));
  ASSERT_FALSE(policy.decisions.empty());
  std::size_t idx = policy.decisions.front().object_index;
  ASSERT_NE(policy.find(idx), nullptr);
  EXPECT_EQ(policy.find(idx)->object_index, idx);
  EXPECT_EQ(policy.find(9999), nullptr);
}

TEST(FlowController, ObjectiveMatchesDecisionValues) {
  auto objects = multi_version_column(12);
  ScrollAnalysis analysis = analyze(objects, {0, -4000});
  FlowController fc(FlowController::Params{});
  DownloadPolicy policy =
      fc.optimize(analysis, objects, BandwidthTrace::constant(400'000));
  double sum = 0;
  for (const DownloadDecision& d : policy.decisions)
    if (d.download()) sum += d.value;
  EXPECT_NEAR(policy.objective, sum, 1e-9);
}

TEST(FlowController, HigherResolutionScoresHigherQoeSameObject) {
  auto objects = multi_version_column(8);
  ScrollAnalysis analysis = analyze(objects, {0, -3000});
  // Force the optimizer to evaluate versions by checking the QoE model
  // through two bandwidths where different versions win.
  FlowController fc(FlowController::Params{});
  DownloadPolicy rich =
      fc.optimize(analysis, objects, BandwidthTrace::constant(1e9));
  for (const DownloadDecision& d : rich.decisions) {
    if (!d.download()) continue;
    // With p=q=1 and abundant bandwidth, c_M is the sum of top versions; the
    // chosen version's value must be the max across versions.
    EXPECT_GE(d.value, -1e-12);
  }
}

}  // namespace
}  // namespace mfhttp
