// Tests for the QoE and cost models of §3.4.1 (Eqs. 7-10).
#include <gtest/gtest.h>

#include "core/qoe.h"

namespace mfhttp {
namespace {

ObjectCoverage coverage(double integral, double final_cov, bool involved = true) {
  ObjectCoverage c;
  c.involved = involved;
  c.coverage_integral = integral;
  c.final_coverage = final_cov;
  return c;
}

// ---------- Q1 (Eq. 7) ----------

TEST(Q1, FullViewportFullDurationTopResolutionIsOne) {
  // Object covers the whole viewport for the whole scroll at r_m.
  double S = 1000 * 2000, T = 500;
  EXPECT_DOUBLE_EQ(q1_coverage(coverage(S * T, S), S, T, 1080, 1080), 1.0);
}

TEST(Q1, ScalesLinearlyWithResolution) {
  double S = 100, T = 10;
  double full = q1_coverage(coverage(S * T, S), S, T, 1080, 1080);
  double half = q1_coverage(coverage(S * T, S), S, T, 540, 1080);
  EXPECT_NEAR(half, full / 2, 1e-12);
}

TEST(Q1, ScalesLinearlyWithCoverage) {
  double S = 100, T = 10;
  EXPECT_NEAR(q1_coverage(coverage(S * T / 4, S), S, T, 1080, 1080), 0.25, 1e-12);
}

TEST(Q1, ZeroDurationIsZero) {
  EXPECT_DOUBLE_EQ(q1_coverage(coverage(100, 1), 100, 0, 1080, 1080), 0.0);
  EXPECT_DOUBLE_EQ(q1_coverage(coverage(100, 1), 100, -5, 1080, 1080), 0.0);
}

TEST(Q1, ClampedToUnitInterval) {
  // Numerical overshoot in the integral must not push Q1 above 1.
  double S = 100, T = 10;
  EXPECT_DOUBLE_EQ(q1_coverage(coverage(S * T * 1.01, S), S, T, 1080, 1080), 1.0);
}

// ---------- Q2 (Eq. 8) ----------

TEST(Q2, IndicatorOnFinalCoverage) {
  EXPECT_DOUBLE_EQ(q2_final_viewport(coverage(0, 10)), 1.0);
  EXPECT_DOUBLE_EQ(q2_final_viewport(coverage(500, 0)), 0.0);
  EXPECT_DOUBLE_EQ(q2_final_viewport(coverage(0, 0.001)), 1.0);
}

// ---------- Q (Eq. 9) ----------

TEST(QoeScore, EqualWeightsAverageQ1Q2) {
  QoEParams params;  // a = b = 1/2
  double S = 100, T = 10;
  // Q1 = 0.5 (half coverage), Q2 = 1 -> Q = 0.75.
  double q = qoe_score(params, coverage(S * T / 2, S), S, T, 1080, 1080);
  EXPECT_NEAR(q, 0.75, 1e-12);
}

TEST(QoeScore, BoundedByUnit) {
  QoEParams params;
  double S = 100, T = 10;
  double q = qoe_score(params, coverage(S * T, S), S, T, 1080, 1080);
  EXPECT_LE(q, 1.0);
  EXPECT_GE(qoe_score(params, coverage(0, 0), S, T, 1080, 1080), 0.0);
}

TEST(QoeScore, FinalViewportNeverScoresBelowTransient) {
  // The paper's design goal for a=b=1/2: any object in the final viewport
  // scores >= any object not in it.
  QoEParams params;
  double S = 100, T = 10;
  double in_final_worst = qoe_score(params, coverage(0, 1), S, T, 1, 1080);
  double transient_best = qoe_score(params, coverage(S * T, 0), S, T, 1080, 1080);
  EXPECT_GE(in_final_worst + 1e-12, transient_best);
}

TEST(QoeScore, CustomWeights) {
  QoEParams params;
  params.a = 1.0;
  params.b = 0.0;
  double S = 100, T = 10;
  EXPECT_NEAR(qoe_score(params, coverage(S * T / 2, S), S, T, 1080, 1080), 0.5,
              1e-12);
}

// ---------- cost functions ----------

TEST(CostFunction, LinearIsIdentityOnBytes) {
  CostFunction c = linear_cost();
  EXPECT_DOUBLE_EQ(c(0), 0.0);
  EXPECT_DOUBLE_EQ(c(12345), 12345.0);
}

TEST(CostFunction, CappedChargesOverageMultiplier) {
  CostFunction c = capped_cost(1000, 3.0);
  EXPECT_DOUBLE_EQ(c(500), 500.0);
  EXPECT_DOUBLE_EQ(c(1000), 1000.0);
  EXPECT_DOUBLE_EQ(c(1500), 1000.0 + 3.0 * 500);
}

TEST(CostFunction, CappedIsMonotone) {
  CostFunction c = capped_cost(5000, 2.0);
  double prev = -1;
  for (Bytes f = 0; f <= 20'000; f += 500) {
    double v = c(f);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

// ---------- c_M (Eq. 10 normalizer) ----------

std::vector<MediaObject> two_objects() {
  MediaObject a;
  a.id = "a";
  a.rect = {0, 0, 10, 10};
  a.versions = {{480, 1000, "u1"}, {1080, 4000, "u2"}};
  MediaObject b;
  b.id = "b";
  b.rect = {0, 0, 10, 10};
  b.versions = {{1080, 6000, "u3"}};
  return {a, b};
}

TEST(MaxCost, AllTopVersionsWhenBandwidthAbundant) {
  auto objects = two_objects();
  auto bw = BandwidthTrace::constant(1e9);
  double cm = max_cost(linear_cost(), objects, {0, 1}, bw, 0, 1000);
  EXPECT_DOUBLE_EQ(cm, 4000 + 6000);
}

TEST(MaxCost, BandwidthLimitedWhenScarce) {
  auto objects = two_objects();
  auto bw = BandwidthTrace::constant(1000);  // 1000 bytes over the 1 s scroll
  double cm = max_cost(linear_cost(), objects, {0, 1}, bw, 0, 1000);
  EXPECT_DOUBLE_EQ(cm, 1000);
}

TEST(MaxCost, OnlyInvolvedObjectsCount) {
  auto objects = two_objects();
  auto bw = BandwidthTrace::constant(1e9);
  EXPECT_DOUBLE_EQ(max_cost(linear_cost(), objects, {0}, bw, 0, 1000), 4000);
  EXPECT_DOUBLE_EQ(max_cost(linear_cost(), objects, {}, bw, 0, 1000), 0);
}

TEST(MaxCost, UsesBandwidthFromScrollStart) {
  auto objects = two_objects();
  // 0 B/s for the first second, then plenty.
  auto bw = BandwidthTrace::from_slots({0, 1e9}, 1000);
  double starved = max_cost(linear_cost(), objects, {0, 1}, bw, 0, 500);
  EXPECT_DOUBLE_EQ(starved, 0);
  double fed = max_cost(linear_cost(), objects, {0, 1}, bw, 1000, 500);
  EXPECT_DOUBLE_EQ(fed, 10'000);
}

}  // namespace
}  // namespace mfhttp
