// Tests for the touch pipeline: velocity tracking, gesture recognition, and
// the synthetic gesture sources.
#include <gtest/gtest.h>

#include <cmath>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "gesture/velocity_tracker.h"
#include "scroll/device_profile.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

TouchTrace constant_velocity_trace(Vec2 start, Vec2 v_px_s, TimeMs duration_ms,
                                   TimeMs step_ms = 8) {
  TouchTrace t;
  t.push_back({0, start, TouchAction::kDown});
  for (TimeMs ms = step_ms; ms < duration_ms; ms += step_ms)
    t.push_back({ms, start + v_px_s * (static_cast<double>(ms) / 1000.0),
                 TouchAction::kMove});
  t.push_back({duration_ms, start + v_px_s * (static_cast<double>(duration_ms) / 1000.0),
               TouchAction::kUp});
  return t;
}

// ---------- VelocityTracker ----------

class VelocityStrategySweep : public ::testing::TestWithParam<VelocityStrategy> {};

TEST_P(VelocityStrategySweep, ConstantVelocityRecovered) {
  VelocityTracker tracker(GetParam());
  Vec2 v{1500, -2500};
  for (const TouchEvent& ev : constant_velocity_trace({500, 1500}, v, 160))
    tracker.add(ev);
  Vec2 est = tracker.velocity();
  EXPECT_NEAR(est.x, v.x, std::abs(v.x) * 0.05 + 1);
  EXPECT_NEAR(est.y, v.y, std::abs(v.y) * 0.05 + 1);
}

TEST_P(VelocityStrategySweep, StationaryFingerZeroVelocity) {
  VelocityTracker tracker(GetParam());
  tracker.add({0, {100, 100}, TouchAction::kDown});
  for (TimeMs t = 8; t <= 96; t += 8) tracker.add({t, {100, 100}, TouchAction::kMove});
  Vec2 est = tracker.velocity();
  EXPECT_NEAR(est.x, 0, 1e-6);
  EXPECT_NEAR(est.y, 0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Strategies, VelocityStrategySweep,
                         ::testing::Values(VelocityStrategy::kLsq2,
                                           VelocityStrategy::kLsq1,
                                           VelocityStrategy::kEndpoints));

TEST(VelocityTracker, TooFewSamplesIsZero) {
  VelocityTracker tracker;
  EXPECT_EQ(tracker.velocity(), Vec2{});
  tracker.add({0, {10, 10}, TouchAction::kDown});
  EXPECT_EQ(tracker.velocity(), Vec2{});
}

TEST(VelocityTracker, DownResetsHistory) {
  VelocityTracker tracker;
  for (const TouchEvent& ev : constant_velocity_trace({0, 0}, {5000, 0}, 100))
    tracker.add(ev);
  tracker.add({200, {0, 0}, TouchAction::kDown});
  EXPECT_EQ(tracker.sample_count(), 1u);
  EXPECT_EQ(tracker.velocity(), Vec2{});
}

TEST(VelocityTracker, StaleSamplesDropped) {
  VelocityTracker tracker(VelocityStrategy::kLsq2, 100);
  tracker.add({0, {0, 0}, TouchAction::kDown});
  tracker.add({10, {10, 0}, TouchAction::kMove});
  tracker.add({500, {20, 0}, TouchAction::kMove});  // >100ms later
  EXPECT_EQ(tracker.sample_count(), 1u);
}

TEST(VelocityTracker, Lsq2TracksDeceleratingFinger) {
  // A linearly decelerating finger: LSQ2 should report (near) the
  // instantaneous release velocity, not the window average.
  VelocityTracker lsq2(VelocityStrategy::kLsq2);
  VelocityTracker endpoints(VelocityStrategy::kEndpoints);
  double v0 = 4000, a = 20000;  // px/s, px/s^2 deceleration
  for (TimeMs t = 0; t <= 96; t += 8) {
    double ts = static_cast<double>(t) / 1000;
    double x = v0 * ts - 0.5 * a * ts * ts;
    TouchEvent ev{t, {x, 0}, t == 0 ? TouchAction::kDown : TouchAction::kMove};
    lsq2.add(ev);
    endpoints.add(ev);
  }
  double v_end = v0 - a * 0.096;  // instantaneous at last sample
  EXPECT_NEAR(lsq2.velocity().x, v_end, 120);
  // Endpoints averages over the window and overestimates.
  EXPECT_GT(endpoints.velocity().x, v_end + 500);
}

// ---------- GestureRecognizer ----------

TEST(GestureRecognizer, TapIsClick) {
  GestureRecognizer rec(kDevice);
  std::optional<Gesture> g;
  for (const TouchEvent& ev : synthesize_tap({700, 1200}, 100))
    if (auto out = rec.on_touch_event(ev)) g = out;
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, GestureKind::kClick);
  EXPECT_FALSE(g->scrolls());
  EXPECT_EQ(g->release_velocity, Vec2{});
}

TEST(GestureRecognizer, FastSwipeIsFling) {
  GestureRecognizer rec(kDevice);
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.direction = {0, -1};
  spec.speed_px_s = 4000;
  std::optional<Gesture> g;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (auto out = rec.on_touch_event(ev)) g = out;
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, GestureKind::kFling);
  EXPECT_NEAR(g->release_velocity.y, -4000, 200);
  EXPECT_NEAR(g->release_velocity.x, 0, 50);
}

TEST(GestureRecognizer, SlowSwipeIsDrag) {
  GestureRecognizer rec(kDevice);
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.direction = {0, -1};
  spec.speed_px_s = 100;  // below nexus6 threshold (~154 px/s)
  spec.contact_ms = 400;
  std::optional<Gesture> g;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (auto out = rec.on_touch_event(ev)) g = out;
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, GestureKind::kDrag);
}

TEST(GestureRecognizer, DeceleratedReleaseIsDrag) {
  GestureRecognizer rec(kDevice);
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.direction = {1, 0};
  spec.speed_px_s = 900;  // fast finger...
  spec.decelerate_before_release = true;  // ...but slow release
  spec.contact_ms = 400;
  std::optional<Gesture> g;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (auto out = rec.on_touch_event(ev)) g = out;
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, GestureKind::kDrag);
}

TEST(GestureRecognizer, GestureTimesAndPositions) {
  GestureRecognizer rec(kDevice);
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.start_time_ms = 5000;
  spec.contact_ms = 160;
  spec.speed_px_s = 3000;
  std::optional<Gesture> g;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (auto out = rec.on_touch_event(ev)) g = out;
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->down_time_ms, 5000);
  EXPECT_EQ(g->up_time_ms, 5160);
  EXPECT_EQ(g->contact_duration_ms(), 160);
  EXPECT_EQ(g->down_pos, (Vec2{700, 1800}));
  EXPECT_LT(g->finger_displacement().y, 0);  // finger moved up
}

TEST(GestureRecognizer, StrayMoveIgnored) {
  GestureRecognizer rec(kDevice);
  EXPECT_FALSE(rec.on_touch_event({0, {1, 1}, TouchAction::kMove}).has_value());
  EXPECT_FALSE(rec.on_touch_event({1, {1, 1}, TouchAction::kUp}).has_value());
}

TEST(GestureRecognizer, TwoSequentialGestures) {
  GestureRecognizer rec(kDevice);
  int gestures = 0;
  SwipeSpec spec;
  spec.start = {700, 1800};
  spec.speed_px_s = 3000;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (rec.on_touch_event(ev)) ++gestures;
  spec.start_time_ms = 2000;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    if (rec.on_touch_event(ev)) ++gestures;
  EXPECT_EQ(gestures, 2);
}

// ---------- Synthetic sources ----------

TEST(SynthesizeSwipe, TraceWellFormed) {
  SwipeSpec spec;
  spec.start = {100, 100};
  spec.contact_ms = 100;
  spec.sample_interval_ms = 10;
  TouchTrace t = synthesize_swipe(spec);
  ASSERT_GE(t.size(), 3u);
  EXPECT_EQ(t.front().action, TouchAction::kDown);
  EXPECT_EQ(t.back().action, TouchAction::kUp);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].time_ms, t[i - 1].time_ms);
    EXPECT_EQ(t[i].action, i + 1 == t.size() ? TouchAction::kUp : TouchAction::kMove);
  }
}

TEST(SynthesizeSwipe, TravelMatchesSpeedTimesTime) {
  SwipeSpec spec;
  spec.start = {0, 0};
  spec.direction = {1, 0};
  spec.speed_px_s = 2000;
  spec.contact_ms = 200;
  TouchTrace t = synthesize_swipe(spec);
  EXPECT_NEAR(t.back().pos.x, 2000 * 0.2, 1.0);
}

TEST(BrowsingGestureSource, ProducesFlingsAfterThinkTime) {
  BrowsingGestureSource src(kDevice, {}, Rng(3));
  GestureRecognizer rec(kDevice);
  TimeMs now = 0;
  int flings = 0;
  for (int i = 0; i < 20; ++i) {
    TouchTrace t = src.next_swipe(now);
    ASSERT_FALSE(t.empty());
    EXPECT_GE(t.front().time_ms, now);  // respects not_before
    std::optional<Gesture> g;
    for (const TouchEvent& ev : t)
      if (auto out = rec.on_touch_event(ev)) g = out;
    ASSERT_TRUE(g.has_value());
    if (g->kind == GestureKind::kFling) ++flings;
    now = t.back().time_ms;
  }
  EXPECT_GE(flings, 15);  // browsing swipes are overwhelmingly flings
}

TEST(BrowsingGestureSource, MostSwipesScrollDown) {
  BrowsingGestureSource::Params params;
  params.p_scroll_up = 0.1;
  BrowsingGestureSource src(kDevice, params, Rng(9));
  int down = 0, total = 40;
  TimeMs now = 0;
  for (int i = 0; i < total; ++i) {
    TouchTrace t = src.next_swipe(now);
    if (t.back().pos.y < t.front().pos.y) ++down;  // finger moved up = scroll down
    now = t.back().time_ms;
  }
  EXPECT_GT(down, total * 3 / 4);
}

TEST(VideoDragSource, DragsDominate) {
  VideoDragSource src(kDevice, {}, Rng(5));
  GestureRecognizer rec(kDevice);
  int drags = 0, total = 40;
  TimeMs now = 0;
  for (int i = 0; i < total; ++i) {
    TouchTrace t = src.next_gesture(now);
    std::optional<Gesture> g;
    for (const TouchEvent& ev : t)
      if (auto out = rec.on_touch_event(ev)) g = out;
    ASSERT_TRUE(g.has_value());
    if (g->kind == GestureKind::kDrag) ++drags;
    now = t.back().time_ms;
  }
  // §5.2.2: "360-degree video users produce much more drag events than
  // fling events".
  EXPECT_GE(drags, total * 7 / 10);
}

TEST(VideoDragSource, HeadingIsUnitAndPersistent) {
  VideoDragSource::Params params;
  params.heading_persistence = 0.95;
  VideoDragSource src(kDevice, params, Rng(5));
  Vec2 prev = src.heading();
  EXPECT_NEAR(prev.norm(), 1.0, 1e-9);
  TimeMs now = 0;
  for (int i = 0; i < 10; ++i) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    Vec2 h = src.heading();
    EXPECT_NEAR(h.norm(), 1.0, 1e-9);
    // High persistence: successive headings stay correlated.
    EXPECT_GT(h.dot(prev), 0.5);
    prev = h;
  }
}

TEST(SyntheticSources, Reproducible) {
  BrowsingGestureSource a(kDevice, {}, Rng(77));
  BrowsingGestureSource b(kDevice, {}, Rng(77));
  for (int i = 0; i < 5; ++i) {
    TouchTrace ta = a.next_swipe(i * 1000);
    TouchTrace tb = b.next_swipe(i * 1000);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t k = 0; k < ta.size(); ++k) EXPECT_EQ(ta[k], tb[k]);
  }
}

}  // namespace
}  // namespace mfhttp
