// Decision-parity suite for the SoA hot path (DESIGN.md §17): the arena
// overloads of ScrollTracker::analyze, ObjectIntervalIndex, and
// FlowController::optimize/replan must produce bit-identical results to the
// AoS paths across the fig7 corpus and the scenario device grid, and the
// one-pass tile scheduler must match a trial-vector reference
// reimplementation of the pre-arena algorithm.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flow_controller.h"
#include "core/object_arena.h"
#include "core/scroll_tracker.h"
#include "scenario/scenario_spec.h"
#include "util/rng.h"
#include "video/dash.h"
#include "video/scheduler.h"
#include "web/corpus.h"

namespace mfhttp {
namespace {

// The PR-9 scenario device grid — every registered device class.
const char* const kDeviceClasses[] = {"phone_flagship", "phone_midrange",
                                      "phone_lowend", "tablet10"};

Gesture fling_gesture(Vec2 v, const Rect& viewport) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = -150;
  g.up_time_ms = 0;
  g.down_pos = {viewport.w / 2, viewport.h * 0.7};
  g.up_pos = g.down_pos + v * 0.15;
  g.release_velocity = v;
  return g;
}

ScrollTracker::Params tracker_params(const DeviceProfile& device) {
  ScrollTracker::Params p;
  p.scroll = ScrollConfig(device);
  p.coverage_step_ms = 4.0;
  return p;
}

void expect_coverage_eq(const ObjectCoverage& a, const ObjectCoverage& b,
                        const std::string& where) {
  EXPECT_EQ(a.object_index, b.object_index) << where;
  EXPECT_EQ(a.involved, b.involved) << where;
  EXPECT_EQ(a.entry_time_ms, b.entry_time_ms) << where;
  EXPECT_EQ(a.coverage_integral, b.coverage_integral) << where;
  EXPECT_EQ(a.final_coverage, b.final_coverage) << where;
  EXPECT_EQ(a.in_initial_viewport, b.in_initial_viewport) << where;
  EXPECT_EQ(a.in_final_viewport, b.in_final_viewport) << where;
}

void expect_analysis_eq(const ScrollAnalysis& a, const ScrollAnalysis& b,
                        const std::string& where) {
  ASSERT_EQ(a.coverages.size(), b.coverages.size()) << where;
  for (std::size_t i = 0; i < a.coverages.size(); ++i)
    expect_coverage_eq(a.coverages[i], b.coverages[i],
                       where + " object " + std::to_string(i));
}

void expect_policy_eq(const DownloadPolicy& a, const DownloadPolicy& b,
                      const std::string& where) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << where;
  for (std::size_t k = 0; k < a.decisions.size(); ++k) {
    const DownloadDecision& da = a.decisions[k];
    const DownloadDecision& db = b.decisions[k];
    const std::string at = where + " decision " + std::to_string(k);
    EXPECT_EQ(da.object_index, db.object_index) << at;
    EXPECT_EQ(da.version, db.version) << at;
    EXPECT_EQ(da.entry_time_ms, db.entry_time_ms) << at;
    EXPECT_EQ(da.qoe, db.qoe) << at;
    EXPECT_EQ(da.cost, db.cost) << at;
    EXPECT_EQ(da.value, db.value) << at;
  }
  EXPECT_EQ(a.objective, b.objective) << where;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << where;
}

// One corpus instantiation per device class, deterministic by construction.
std::vector<WebPage> corpus_for(const scenario::DeviceClassSpec& device) {
  Rng rng(0xA23Au ^ static_cast<std::uint64_t>(device.profile.screen_w_px));
  return generate_corpus(device.profile, rng);
}

// Per-repeat swipe speeds follow the device's deterministic ramp (the fig7
// harness sequence), both directions.
std::vector<Vec2> swipe_velocities(const scenario::DeviceClassSpec& device) {
  std::vector<Vec2> v;
  for (int r = 0; r < 3; ++r) {
    double speed = device.swipe_speed_base_px_s + device.swipe_speed_step_px_s * r;
    v.push_back({0, -speed});
  }
  v.push_back({0, device.swipe_speed_base_px_s});  // upward scroll
  v.push_back({-400, -device.swipe_speed_base_px_s});  // slight diagonal
  return v;
}

TEST(ArenaParity, AnalyzeMatchesAosAcrossCorpusAndDeviceGrid) {
  for (const char* name : kDeviceClasses) {
    auto device = scenario::DeviceClassSpec::named(name);
    ASSERT_TRUE(device.has_value()) << name;
    ScrollTracker tracker(tracker_params(device->profile));
    const Rect viewport{0, 0, device->profile.screen_w_px, device->profile.screen_h_px};
    for (const WebPage& page : corpus_for(*device)) {
      ObjectArena arena(page.images);
      ASSERT_EQ(arena.size(), page.images.size());
      for (const Vec2& v : swipe_velocities(*device)) {
        ScrollPrediction pred = tracker.predict(fling_gesture(v, viewport), viewport);
        ScrollAnalysis aos = tracker.analyze(pred, page.images);
        ScrollAnalysis soa = tracker.analyze(pred, arena);
        expect_analysis_eq(aos, soa, std::string(name) + "/" + page.site);
      }
    }
  }
}

TEST(ArenaParity, IndexedAnalyzeMatchesAosIndexedPath) {
  auto device = scenario::DeviceClassSpec::named("phone_flagship");
  ASSERT_TRUE(device.has_value());
  ScrollTracker tracker(tracker_params(device->profile));
  const Rect viewport{0, 0, device->profile.screen_w_px, device->profile.screen_h_px};
  for (const WebPage& page : corpus_for(*device)) {
    ObjectArena arena(page.images);
    ObjectIntervalIndex aos_index(page.images);
    ObjectIntervalIndex soa_index;
    soa_index.rebuild(arena);
    ASSERT_EQ(aos_index.size(), soa_index.size());
    for (const Vec2& v : swipe_velocities(*device)) {
      ScrollPrediction pred = tracker.predict(fling_gesture(v, viewport), viewport);
      ScrollAnalysis aos = tracker.analyze(pred, page.images, aos_index);
      ScrollAnalysis soa = tracker.analyze(pred, arena, soa_index);
      expect_analysis_eq(aos, soa, "indexed/" + page.site);
      // The indexed and full paths must themselves agree (pruning is an
      // optimization, not a semantic).
      expect_analysis_eq(tracker.analyze(pred, arena), soa,
                         "full-vs-indexed/" + page.site);
    }
  }
}

TEST(ArenaParity, IntervalIndexQueriesMatchAfterArenaRebuild) {
  auto device = scenario::DeviceClassSpec::named("phone_midrange");
  ASSERT_TRUE(device.has_value());
  Rng rng(99);
  for (const WebPage& page : corpus_for(*device)) {
    ObjectArena arena(page.images);
    ObjectIntervalIndex aos_index(page.images);
    ObjectIntervalIndex soa_index;
    soa_index.rebuild(arena);
    std::vector<std::size_t> a, b;
    for (int i = 0; i < 32; ++i) {
      double lo = rng.uniform(-500.0, page.bounds().bottom());
      double hi = lo + rng.uniform(0.0, 4000.0);
      a.clear();
      b.clear();
      aos_index.query(lo, hi, a);
      soa_index.query(lo, hi, b);
      EXPECT_EQ(a, b) << page.site << " window [" << lo << ", " << hi << "]";
    }
  }
}

TEST(ArenaParity, FlowOptimizeMatchesAosAcrossCorpusAndDeviceGrid) {
  for (const char* name : kDeviceClasses) {
    auto device = scenario::DeviceClassSpec::named(name);
    ASSERT_TRUE(device.has_value()) << name;
    ScrollTracker tracker(tracker_params(device->profile));
    const Rect viewport{0, 0, device->profile.screen_w_px, device->profile.screen_h_px};
    FlowController fc(FlowController::Params{});
    fc.set_arena_parity_check(true);  // internal CHECK against the AoS plan
    const auto bandwidth = BandwidthTrace::constant(500'000);
    for (const WebPage& page : corpus_for(*device)) {
      ObjectArena arena(page.images);
      for (const Vec2& v : swipe_velocities(*device)) {
        ScrollPrediction pred = tracker.predict(fling_gesture(v, viewport), viewport);
        ScrollAnalysis analysis = tracker.analyze(pred, arena);
        DownloadPolicy aos = fc.optimize(analysis, page.images, bandwidth);
        DownloadPolicy soa = fc.optimize(analysis, arena, bandwidth);
        expect_policy_eq(aos, soa, std::string(name) + "/" + page.site);
      }
    }
  }
}

TEST(ArenaParity, ReplanMatchesAcrossGestureSequenceAndBandwidths) {
  auto device = scenario::DeviceClassSpec::named("phone_lowend");
  ASSERT_TRUE(device.has_value());
  ScrollTracker tracker(tracker_params(device->profile));
  const Rect viewport{0, 0, device->profile.screen_w_px, device->profile.screen_h_px};
  const BytesPerSec rates[] = {120'000, 250'000, 1'000'000};
  for (const WebPage& page : corpus_for(*device)) {
    ObjectArena arena(page.images);
    // Separate controllers so each scratch sees its own stream; the arena one
    // additionally self-checks against the stateless AoS plan every call.
    FlowController fc_aos{FlowController::Params{}};
    FlowController fc_arena{FlowController::Params{}};
    fc_arena.set_arena_parity_check(true);
    for (BytesPerSec rate : rates) {
      const auto bandwidth = BandwidthTrace::constant(rate);
      for (const Vec2& v : swipe_velocities(*device)) {
        ScrollPrediction pred = tracker.predict(fling_gesture(v, viewport), viewport);
        ScrollAnalysis analysis = tracker.analyze(pred, arena);
        DownloadPolicy aos = fc_aos.replan(analysis, page.images, bandwidth);
        DownloadPolicy soa = fc_arena.replan(analysis, arena, bandwidth);
        expect_policy_eq(aos, soa, page.site + " @" + std::to_string(rate));
      }
    }
  }
}

// Reference reimplementation of the pre-arena MF-HTTP tile planner: build a
// full trial quality vector per candidate and price it tile by tile through
// segment_size(), exactly as the old per-quality loop did.
TilePlan reference_tile_plan(const VideoAsset& video, int segment,
                             const std::vector<bool>& visible,
                             const SchedulerContext& context) {
  const Bytes budget = context.budget;
  const int tiles = video.grid().tile_count();
  TilePlan plan;
  plan.tile_quality.assign(static_cast<std::size_t>(tiles), -1);
  plan.visible_count = TileGrid::count_visible(visible);
  auto cost_of = [&](const std::vector<int>& tq) {
    Bytes total = 0;
    for (int t = 0; t < tiles; ++t)
      if (tq[static_cast<std::size_t>(t)] >= 0)
        total += video.segment_size(t, segment, tq[static_cast<std::size_t>(t)]);
    return total;
  };
  auto trial = [&](int visible_q, int invisible_q) {
    std::vector<int> tq(static_cast<std::size_t>(tiles));
    for (int t = 0; t < tiles; ++t)
      tq[static_cast<std::size_t>(t)] =
          visible[static_cast<std::size_t>(t)] ? visible_q : invisible_q;
    return tq;
  };
  if (context.degraded || context.brownout >= 2) {
    auto tq = trial(0, -1);
    Bytes cost = cost_of(tq);
    if (cost <= budget) {
      plan.tile_quality = tq;
      plan.viewport_quality = 0;
      plan.bytes = cost;
    }
    return plan;
  }
  for (int q = video.quality_count() - 1; q >= 0; --q) {
    auto tq = trial(q, 0);
    Bytes cost = cost_of(tq);
    if (cost <= budget) {
      plan.tile_quality = tq;
      plan.viewport_quality = q;
      plan.bytes = cost;
      return plan;
    }
  }
  auto tq = trial(0, -1);
  Bytes cost = cost_of(tq);
  if (cost <= budget) {
    plan.tile_quality = tq;
    plan.viewport_quality = 0;
    plan.bytes = cost;
  }
  return plan;
}

TEST(ArenaParity, TileSchedulerMatchesTrialVectorReference) {
  VideoAsset::Params vp;
  vp.duration_s = 20;
  vp.seed = 21;
  VideoAsset video(vp);
  MfHttpTileScheduler scheduler;
  Rng rng(7);
  const int tiles = video.grid().tile_count();
  for (int segment = 0; segment < video.segment_count(); ++segment) {
    std::vector<bool> visible(static_cast<std::size_t>(tiles));
    for (int t = 0; t < tiles; ++t)
      visible[static_cast<std::size_t>(t)] = rng.chance(0.4);
    for (Bytes budget :
         {Bytes{20'000}, Bytes{120'000}, Bytes{400'000}, Bytes{2'000'000}}) {
      for (int mode = 0; mode < 3; ++mode) {
        SchedulerContext context;
        context.budget = budget;
        context.degraded = mode == 1;
        context.brownout = mode == 2 ? 2 : 0;
        TilePlan got = scheduler.plan_segment(video, segment, visible, context);
        TilePlan want = reference_tile_plan(video, segment, visible, context);
        const std::string at = "segment " + std::to_string(segment) + " budget " +
                               std::to_string(budget) + " mode " + std::to_string(mode);
        EXPECT_EQ(got.tile_quality, want.tile_quality) << at;
        EXPECT_EQ(got.viewport_quality, want.viewport_quality) << at;
        EXPECT_EQ(got.bytes, want.bytes) << at;
        EXPECT_EQ(got.visible_count, want.visible_count) << at;
      }
    }
  }
}

TEST(ArenaParity, TileArenaRowsMatchScalarAccessor) {
  VideoAsset::Params vp;
  vp.duration_s = 8;
  vp.seed = 5;
  VideoAsset video(vp);
  for (int s = 0; s < video.segment_count(); ++s) {
    for (int q = 0; q < video.quality_count(); ++q) {
      const Bytes* row = video.segment_sizes(s, q);
      Bytes frame_total = 0;
      for (int t = 0; t < video.grid().tile_count(); ++t) {
        EXPECT_EQ(row[t], video.segment_size(t, s, q));
        frame_total += row[t];
      }
      EXPECT_EQ(frame_total, video.whole_frame_segment_size(s, q));
    }
  }
}

TEST(ArenaParity, ArenaAccessorsMirrorSourceObjects) {
  auto device = scenario::DeviceClassSpec::named("tablet10");
  ASSERT_TRUE(device.has_value());
  const WebPage page = corpus_for(*device).front();
  ObjectArena arena(page.images);
  ASSERT_TRUE(arena.has_source());
  EXPECT_EQ(&arena.source(), &page.images);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    const MediaObject& obj = page.images[i];
    EXPECT_EQ(arena.x0(i), obj.rect.x);
    EXPECT_EQ(arena.y0(i), obj.rect.y);
    EXPECT_EQ(arena.x1(i), obj.rect.x + obj.rect.w);
    EXPECT_EQ(arena.y1(i), obj.rect.y + obj.rect.h);
    EXPECT_EQ(arena.state(i) == ObjectArena::kEmptyRect, obj.rect.empty());
    EXPECT_EQ(arena.id(i), obj.id);
    ASSERT_EQ(arena.version_count(i), obj.versions.size());
    for (std::size_t j = 0; j < obj.versions.size(); ++j) {
      EXPECT_EQ(arena.version_size(i, j), obj.versions[j].size);
      EXPECT_EQ(arena.version_resolution(i, j), obj.versions[j].resolution);
    }
    EXPECT_EQ(arena.top_size(i), obj.top_version().size);
    EXPECT_EQ(arena.top_resolution(i), obj.top_version().resolution);
  }
}

// Degenerate rects must flow through the arena path with the same flags the
// AoS analyze produced (state flag, not recomputed extents, decides).
TEST(ArenaParity, DegenerateRectsKeepAosSemantics) {
  std::vector<MediaObject> objects;
  objects.push_back(make_single_version_object("zero-w", Rect{100, 300, 0, 200},
                                               1000, "http://s/a"));
  objects.push_back(make_single_version_object("zero-h", Rect{100, 900, 300, 0},
                                               1000, "http://s/b"));
  objects.push_back(make_single_version_object("live", Rect{100, 1500, 300, 200},
                                               1000, "http://s/c"));
  const DeviceProfile device = DeviceProfile::nexus6();
  ScrollTracker tracker(tracker_params(device));
  const Rect viewport{0, 0, device.screen_w_px, device.screen_h_px};
  ObjectArena arena(objects);
  ScrollPrediction pred =
      tracker.predict(fling_gesture({0, -5000}, viewport), viewport);
  expect_analysis_eq(tracker.analyze(pred, objects), tracker.analyze(pred, arena),
                     "degenerate");
}

}  // namespace
}  // namespace mfhttp
