// Tests for the JSON writer and the experiment exporters, plus the scroll
// path sampler.
#include <gtest/gtest.h>

#include "core/scroll_tracker.h"
#include "util/json.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "video/session.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("mf-http");
  w.key("count").value(42);
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"mf-http","count":42,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array().value(1).value(2).value(3).end_array();
  w.key("inner").begin_object().key("k").value("v").end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,3],"inner":{"k":"v"}})");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter w;
  w.begin_array();
  w.value("a\"b\\c\nd\te");
  w.value(std::string_view("ctl\x01", 4));
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\nd\\te\",\"ctl\\u0001\"]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, TopLevelArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.key("i").value(i);
    w.end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

TEST(BrowsingSessionJson, ExportsWellFormedDocument) {
  Rng rng(3);
  WebPage page = generate_page(alexa25_specs()[13], DeviceProfile::nexus6(), rng);
  BrowsingSessionConfig cfg;
  cfg.fill_sample_ms = 500;
  cfg.session_ms = 5000;
  BrowsingSessionResult result = run_browsing_session(page, cfg);
  std::string json = result.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"initial_viewport_load_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"fill_timeline\":["), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(StreamingSessionJson, ExportsWellFormedDocument) {
  VideoAsset::Params vp;
  vp.duration_s = 5;
  VideoAsset video(vp);
  ViewportTrace::Params tp;
  tp.device = DeviceProfile::nexus6();
  ViewportTrace trace(tp);
  MfHttpTileScheduler sched;
  auto session = run_streaming_session(video, trace,
                                       BandwidthTrace::constant(kb_per_sec(500)),
                                       sched, StreamingSessionParams{});
  std::string json = session.to_json();
  EXPECT_NE(json.find("\"scheduler\":\"mf-http\""), std::string::npos);
  EXPECT_NE(json.find("\"segments\":["), std::string::npos);
  // One segment object per playback second.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"segment\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 5u);
}

TEST(ScrollPathSampler, CoversWholeAnimation) {
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(DeviceProfile::nexus6());
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -6000};
  ScrollPrediction pred = tracker.predict(g, {0, 0, 1440, 2560});
  auto path = pred.sample_path(50);
  ASSERT_GE(path.size(), 3u);
  EXPECT_DOUBLE_EQ(path.front().t_ms, 0);
  EXPECT_EQ(path.front().viewport, pred.viewport0);
  EXPECT_DOUBLE_EQ(path.back().t_ms, pred.duration_ms);
  EXPECT_EQ(path.back().viewport, pred.final_viewport());
  EXPECT_DOUBLE_EQ(path.back().speed_px_s, 0);
  // Monotone time and y; speed decreasing.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i].t_ms, path[i - 1].t_ms);
    EXPECT_GE(path[i].viewport.y, path[i - 1].viewport.y);
    EXPECT_LE(path[i].speed_px_s, path[i - 1].speed_px_s + 1e-9);
  }
}

// ---------- JsonValue reader ----------

TEST(JsonReader, ScalarsAndTypes) {
  auto doc = parse_json(R"({"s": "hi", "n": -2.5, "i": 42, "t": true,
                            "f": false, "z": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("s"), nullptr);
  EXPECT_EQ(doc->find("s")->string_value, "hi");
  EXPECT_DOUBLE_EQ(doc->find("n")->number_value, -2.5);
  EXPECT_DOUBLE_EQ(doc->find("i")->number_value, 42);
  EXPECT_TRUE(doc->find("t")->bool_value);
  EXPECT_FALSE(doc->find("f")->bool_value);
  EXPECT_TRUE(doc->find("z")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonReader, NestedContainersPreserveOrder) {
  auto doc = parse_json(R"({"a": [1, [2, 3], {"b": 4}], "c": {"d": [5]}})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* a = doc->find("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  ASSERT_EQ(a->array_value.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_value[0].number_value, 1);
  EXPECT_DOUBLE_EQ(a->array_value[1].array_value[1].number_value, 3);
  EXPECT_DOUBLE_EQ(a->array_value[2].find("b")->number_value, 4);
  // Member order is preserved, not sorted.
  EXPECT_EQ(doc->object_value[0].first, "a");
  EXPECT_EQ(doc->object_value[1].first, "c");
}

TEST(JsonReader, StringEscapesAndUnicode) {
  auto doc = parse_json(R"(["\"\\\/\b\f\n\r\t", "Aé中"])");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->array_value[0].string_value, "\"\\/\b\f\n\r\t");
  EXPECT_EQ(doc->array_value[1].string_value, "A\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonReader, NumberFormats) {
  auto doc = parse_json("[0, -0, 3.25, 1e3, 1.5E-2, -4e+2]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->array_value[0].number_value, 0);
  EXPECT_DOUBLE_EQ(doc->array_value[2].number_value, 3.25);
  EXPECT_DOUBLE_EQ(doc->array_value[3].number_value, 1000);
  EXPECT_DOUBLE_EQ(doc->array_value[4].number_value, 0.015);
  EXPECT_DOUBLE_EQ(doc->array_value[5].number_value, -400);
}

TEST(JsonReader, TypedAccessorsFallBack) {
  auto doc = parse_json(R"({"n": 7, "s": "x"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("n")->number_or(-1), 7);
  EXPECT_DOUBLE_EQ(doc->find("s")->number_or(-1), -1);  // wrong type
  EXPECT_EQ(doc->find("s")->string_or("d"), "x");
  EXPECT_EQ(doc->find("n")->string_or("d"), "d");
  EXPECT_TRUE(doc->find("n")->bool_or(true));
  // find() on a non-object is nullptr, never a crash.
  EXPECT_EQ(doc->find("n")->find("nested"), nullptr);
}

TEST(JsonReader, WriterOutputRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("q\"uote\n");
  w.key("xs").begin_array().value(1).value(2.5).value(false).null().end_array();
  w.key("inner").begin_object().key("k").value(std::size_t{7}).end_object();
  w.end_object();
  auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->string_value, "q\"uote\n");
  ASSERT_EQ(doc->find("xs")->array_value.size(), 4u);
  EXPECT_DOUBLE_EQ(doc->find("xs")->array_value[1].number_value, 2.5);
  EXPECT_FALSE(doc->find("xs")->array_value[2].bool_value);
  EXPECT_TRUE(doc->find("xs")->array_value[3].is_null());
  EXPECT_DOUBLE_EQ(doc->find("inner")->find("k")->number_value, 7);
}

TEST(JsonReader, WhitespaceAndEmptyContainers) {
  auto doc = parse_json(" \t\r\n { \"a\" : [ ] , \"b\" : { } } \n");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("a")->is_array());
  EXPECT_TRUE(doc->find("a")->array_value.empty());
  EXPECT_TRUE(doc->find("b")->is_object());
  EXPECT_TRUE(doc->find("b")->object_value.empty());
}

// ---------- Parse-error positions (line/column diagnostics) ----------

TEST(JsonParseErrors, UnterminatedStringPointsAtItsLine) {
  JsonParseError error;
  auto doc = parse_json("{\n  \"name\": \"oops\n}", &error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_FALSE(error.message.empty());
  // to_string is the loader-facing form: "line L, column C: why".
  EXPECT_NE(error.to_string().find("line 2"), std::string::npos);
}

TEST(JsonParseErrors, TrailingGarbageReportsPositionPastTheDocument) {
  JsonParseError error;
  auto doc = parse_json("{\"a\": 1}\njunk", &error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.column, 1u);
}

TEST(JsonParseErrors, BadEscapeNamesColumnOfTheEscape) {
  JsonParseError error;
  auto doc = parse_json(R"({"s": "a\qb"})", &error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_GT(error.column, 7u);  // inside the string, past the opening quote
}

TEST(JsonParseErrors, ColumnsResetAcrossNewlines) {
  JsonParseError error;
  auto doc = parse_json("{\n  \"a\": 1,\n  \"b\": ?\n}", &error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_EQ(error.column, 8u);  // the '?' under "b"
  EXPECT_EQ(error.offset, 19u);
}

TEST(JsonParseErrors, SuccessLeavesErrorUntouched) {
  JsonParseError error;
  error.message = "sentinel";
  auto doc = parse_json("[1, 2]", &error);
  EXPECT_TRUE(doc.has_value());
  EXPECT_EQ(error.message, "sentinel");
}

}  // namespace
}  // namespace mfhttp
