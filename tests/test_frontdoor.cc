// Tests for the sharded front door (DESIGN.md §13, http/frontdoor.h):
//
//   * MpscQueue — FIFO per producer, exact capacity bound, every element
//     delivered exactly once under concurrent producers;
//   * shard routing — a pure, stable function of (session, shards), with a
//     fingerprint that recomputes identically;
//   * overload::shard_slice — N=1 is byte-identical, budgets split evenly
//     with ceil'd never-zero integer bounds, per-session knobs untouched;
//   * obs::BatchedCounter — exact totals, flush-on-batch and on demand;
//   * the front door itself — shards=1 threaded byte-identical to the
//     unsharded inline path, invariant totals across shard counts,
//     per-shard cache segments isolated but sharing one ghost list,
//     cross-shard counter aggregation summing to the run's totals.
//
// Suite names match the ThreadSanitizer job's -R 'Shard|Mpsc' selection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "http/cache.h"
#include "http/frontdoor.h"
#include "obs/metrics.h"
#include "overload/admission.h"
#include "sim/frontdoor_load.h"
#include "util/mpsc_queue.h"

namespace mfhttp {
namespace {

// ---------- MpscQueue ----------

TEST(MpscQueue, SingleProducerFifo) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwoAndBounds) {
  MpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: reject, never overwrite
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(99));  // slot freed, push succeeds again
  EXPECT_EQ(q.approx_size(), 8u);
}

TEST(MpscQueue, PopOnEmptyFailsWithoutSideEffects) {
  MpscQueue<std::string> q(4);
  std::string out = "untouched";
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_EQ(out, "untouched");
  EXPECT_TRUE(q.try_push("x"));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, "x");
}

TEST(MpscQueue, ConcurrentProducersDeliverEverythingExactlyOnceInOrder) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> q(256);

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!q.try_push((p << 32) | i)) std::this_thread::yield();
      }
    });
  }

  // Single consumer: per-producer sequences must arrive strictly in order
  // (FIFO holds per producer even while producers interleave).
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!q.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = v >> 32;
    const std::uint64_t seq = v & 0xffffffffULL;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  std::uint64_t v = 0;
  EXPECT_FALSE(q.try_pop(v));
  for (std::uint64_t p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

TEST(MpscQueue, TryPushFailureLeavesQueueStateConsistent) {
  MpscQueue<std::string> q(4);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(q.try_push("v" + std::to_string(i)));
  // Repeated failed pushes against a full ring must not disturb any slot,
  // the occupancy, or subsequent FIFO order.
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(q.try_push("overflow"));
  EXPECT_EQ(q.approx_size(), 4u);
  std::string out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, "v" + std::to_string(i));
  }
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.try_push("after"));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, "after");
}

TEST(MpscQueue, PushUntilExpiresAtTheDeadlineAndReportsTheWait) {
  MpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  // Synthetic clock: each call advances 1 "ns", deadline at tick 10 — the
  // push must give up, report the wait, and leave the ring untouched.
  std::uint64_t tick = 0;
  std::uint64_t blocked = 0;
  EXPECT_FALSE(q.push_until(
      3, 10, [&tick] { return ++tick; }, &blocked));
  EXPECT_GT(blocked, 0u);
  EXPECT_EQ(q.approx_size(), 2u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
}

TEST(MpscQueue, PushUntilSucceedsOnceTheConsumerFreesASlot) {
  MpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  // The consumer thread frees one slot after a few spins; the blocked push
  // must land in it and account the wait it endured. Deadline 0 = no
  // deadline (the legacy block-forever producer path).
  std::thread consumer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int out = 0;
    ASSERT_TRUE(q.try_pop(out));
  });
  std::uint64_t blocked = 0;
  const auto now_ns = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  EXPECT_TRUE(q.push_until(3, 0, now_ns, &blocked));
  consumer.join();
  EXPECT_GT(blocked, 0u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(MpscQueue, WraparoundLapsKeepExactlyOnceWithSlowConsumerAtCapacity) {
  // A deliberately tiny ring laps thousands of times while a slow consumer
  // holds it at capacity: the sequence-stamp protocol must keep every
  // element exactly-once and per-producer FIFO through every wraparound.
  // (TSan target: producers race the CAS on a full ring constantly.)
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscQueue<std::uint64_t> q(8);

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push_until((p << 32) | i, 0,
                                 [] { return std::uint64_t{0}; }));
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!q.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    // Stay slow every few pops so the ring sits at capacity and producers
    // keep contending for the slot being re-armed.
    if ((received & 63) == 0) std::this_thread::yield();
    const std::uint64_t p = v >> 32;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(v & 0xffffffffULL, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  std::uint64_t v = 0;
  EXPECT_FALSE(q.try_pop(v));
  for (std::uint64_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next[p], kPerProducer);
}

// ---------- Shard routing ----------

TEST(ShardRouting, PureStableAndInRange) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{7}}) {
    for (std::uint64_t session = 0; session < 1000; ++session) {
      const std::size_t s = shard_of(session, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(session, shards));  // pure: same answer again
    }
  }
  // shards <= 1 degenerates to the single box.
  EXPECT_EQ(shard_of(12345, 1), 0u);
  EXPECT_EQ(shard_of(12345, 0), 0u);
}

TEST(ShardRouting, SpreadsSessionsAcrossAllShards) {
  constexpr std::size_t kShards = 4;
  std::vector<std::size_t> per_shard(kShards, 0);
  for (std::uint64_t session = 0; session < 10000; ++session)
    ++per_shard[shard_of(session, kShards)];
  for (std::size_t s = 0; s < kShards; ++s) {
    // splitmix64 is a good mixer: no shard should be starved or hot by more
    // than a loose 2x band around the 2500 mean.
    EXPECT_GT(per_shard[s], 1250u) << "shard " << s;
    EXPECT_LT(per_shard[s], 5000u) << "shard " << s;
  }
}

TEST(ShardRouting, FingerprintRecomputesIdentically) {
  const std::uint64_t a = routing_fingerprint(5000, 4);
  const std::uint64_t b = routing_fingerprint(5000, 4);
  EXPECT_EQ(a, b);
  // Different table -> different witness (FNV over different folds).
  EXPECT_NE(routing_fingerprint(5000, 2), a);
  EXPECT_NE(routing_fingerprint(4999, 4), a);
}

// ---------- overload::shard_slice ----------

TEST(ShardSlice, SingleShardIsByteIdentical) {
  overload::AdmissionParams p;
  p.global_rate_per_s = 1000;
  p.global_burst = 100;
  p.session_rate_per_s = 10;
  p.session_burst = 5;
  p.max_inflight_upstream = 7;
  p.max_dispatch_queue = 33;
  p.max_deferred_global = 11;
  p.seed = 42;
  const overload::AdmissionParams out = overload::shard_slice(p, 0, 1);
  EXPECT_DOUBLE_EQ(out.global_rate_per_s, p.global_rate_per_s);
  EXPECT_DOUBLE_EQ(out.global_burst, p.global_burst);
  EXPECT_DOUBLE_EQ(out.session_rate_per_s, p.session_rate_per_s);
  EXPECT_DOUBLE_EQ(out.session_burst, p.session_burst);
  EXPECT_EQ(out.max_inflight_upstream, p.max_inflight_upstream);
  EXPECT_EQ(out.max_dispatch_queue, p.max_dispatch_queue);
  EXPECT_EQ(out.max_deferred_global, p.max_deferred_global);
  EXPECT_EQ(out.seed, p.seed);  // NOT remixed: the single shard IS the box
}

TEST(ShardSlice, DividesGlobalBudgetsAndRemixesSeeds) {
  overload::AdmissionParams p;
  p.global_rate_per_s = 1000;
  p.global_burst = 100;
  p.session_rate_per_s = 10;
  p.session_burst = 5;
  p.max_inflight_upstream = 7;
  p.max_dispatch_queue = 33;
  p.max_deferred_global = 0;  // unlimited sentinel must pass through
  p.seed = 42;

  std::set<std::uint64_t> seeds;
  int inflight_sum = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const overload::AdmissionParams s = overload::shard_slice(p, shard, 4);
    EXPECT_DOUBLE_EQ(s.global_rate_per_s, 250.0);
    EXPECT_DOUBLE_EQ(s.global_burst, 25.0);
    // Per-session knobs untouched: a session lives wholly on one shard.
    EXPECT_DOUBLE_EQ(s.session_rate_per_s, 10.0);
    EXPECT_DOUBLE_EQ(s.session_burst, 5.0);
    EXPECT_EQ(s.max_inflight_upstream, 2);  // ceil(7/4)
    EXPECT_EQ(s.max_dispatch_queue, 9);     // ceil(33/4)
    EXPECT_EQ(s.max_deferred_global, 0);
    seeds.insert(s.seed);
    inflight_sum += s.max_inflight_upstream;
  }
  EXPECT_EQ(seeds.size(), 4u);  // decorrelated guard jitter per shard
  EXPECT_GE(inflight_sum, p.max_inflight_upstream);  // ceil never loses budget
}

TEST(ShardSlice, TinyBudgetNeverRoundsToZero) {
  overload::AdmissionParams p;
  p.max_inflight_upstream = 1;
  p.max_dispatch_queue = 2;
  for (std::size_t shard = 0; shard < 8; ++shard) {
    const overload::AdmissionParams s = overload::shard_slice(p, shard, 8);
    EXPECT_GE(s.max_inflight_upstream, 1);
    EXPECT_GE(s.max_dispatch_queue, 1);
  }
}

// ---------- obs::BatchedCounter ----------

TEST(ShardCounters, BatchedCounterFlushesOnBatchBoundary) {
  obs::Counter& c = obs::metrics().counter("test.frontdoor.batched_total");
  c.reset();
  {
    obs::BatchedCounter batched(c, 10);
    for (int i = 0; i < 25; ++i) batched.inc();
    // Two full batches flushed; 5 still pending thread-locally.
    EXPECT_EQ(c.value(), 20u);
    EXPECT_EQ(batched.pending(), 5u);
    batched.flush();
    EXPECT_EQ(c.value(), 25u);
    batched.inc(3);
  }  // destructor flushes the tail
  EXPECT_EQ(c.value(), 28u);
}

TEST(ShardCounters, ConcurrentBatchedWorkersSumExactly) {
  obs::Counter& c = obs::metrics().counter("test.frontdoor.batched_mt_total");
  c.reset();
  constexpr std::uint64_t kWorkers = 4;
  constexpr std::uint64_t kEach = 100000;
  std::vector<std::thread> workers;
  for (std::uint64_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&c] {
      obs::BatchedCounter batched(c, 1024);  // one instance per worker
      for (std::uint64_t i = 0; i < kEach; ++i) batched.inc();
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(c.value(), kWorkers * kEach);
}

// ---------- Per-shard cache segments + shared ghost list ----------

TEST(ShardCacheSegments, IsolatedResidencySharedGhostHistory) {
  auto ghosts = std::make_shared<CacheGhosts>();
  CacheParams cp;
  cp.capacity_bytes = 64 * 1024;
  cp.cost_aware_admission = true;
  cp.shared_ghosts = ghosts;
  HttpCache segment_a(cp);
  HttpCache segment_b(cp);
  EXPECT_EQ(segment_a.ghosts().get(), segment_b.ghosts().get());

  // Residency is strictly per segment: B never sees A's insertions.
  CachedObject obj;
  obj.size = 1024;
  ASSERT_TRUE(segment_a.put("http://o/x", obj));
  EXPECT_TRUE(segment_a.contains("http://o/x"));
  EXPECT_FALSE(segment_b.contains("http://o/x"));

  // Misses on either segment feed the SAME ghost list: popularity earned on
  // shard A is visible to shard B's admission fight.
  for (int i = 0; i < 5; ++i) segment_a.lookup("http://o/hot", 0);
  EXPECT_GT(ghosts->frequency("http://o/hot"), 0.0);
  EXPECT_DOUBLE_EQ(ghosts->frequency("http://o/hot"),
                   segment_b.ghosts()->frequency("http://o/hot"));
}

// ---------- The sharded front door ----------

sim::FrontDoorLoadConfig small_load() {
  sim::FrontDoorLoadConfig load;
  load.sessions = 400;
  load.touches_per_session = 3;
  load.url_universe = 512;
  load.session_arrival_per_s = 400;
  return load;
}

TEST(ShardedFrontDoor, OneShardThreadedIsByteIdenticalToUnshardedInline) {
  FrontDoorParams params;
  params.load = small_load();
  params.apply_scaled_admission();
  params.shards = 1;

  const FrontDoorResult inline_run =
      run_front_door(params, FrontDoorMode::kInline);
  const FrontDoorResult threaded_run =
      run_front_door(params, FrontDoorMode::kThreaded);

  // The whole deterministic document — totals, ratios, fingerprints, the
  // per-shard breakdown — must match byte for byte.
  EXPECT_EQ(inline_run.deterministic_json(), threaded_run.deterministic_json());
  EXPECT_EQ(inline_run.fingerprint, threaded_run.fingerprint);
  EXPECT_GT(inline_run.requests, 0u);
}

TEST(ShardedFrontDoor, InvariantTotalsAcrossShardCounts) {
  FrontDoorParams params;
  params.load = small_load();
  params.apply_scaled_admission();

  std::vector<FrontDoorResult> results;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    params.shards = shards;
    results.push_back(run_front_door(params, FrontDoorMode::kThreaded));
  }
  for (const FrontDoorResult& r : results) {
    // Every event is consumed exactly once and every touch's URL set is a
    // pure function of the load, so events and request totals are invariant
    // no matter how the sessions were sharded.
    EXPECT_EQ(r.events, results[0].events);
    EXPECT_EQ(r.requests, results[0].requests);
    // Nothing vanishes: every request resolves to exactly one verdict.
    EXPECT_EQ(r.completed + r.rejected + r.failed, r.requests);
    // Per-shard session counts partition the session space.
    std::size_t routed = 0;
    for (const FrontDoorShardReport& shard : r.per_shard)
      routed += shard.sessions;
    EXPECT_EQ(routed, params.load.sessions);
    EXPECT_EQ(r.per_shard.size(), r.shards);
  }
}

TEST(ShardedFrontDoor, RepeatSingleShardRunsAreByteIdentical) {
  FrontDoorParams params;
  params.load = small_load();
  params.apply_scaled_admission();
  params.shards = 1;
  const FrontDoorResult a = run_front_door(params, FrontDoorMode::kThreaded);
  const FrontDoorResult b = run_front_door(params, FrontDoorMode::kThreaded);
  EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
  EXPECT_EQ(a.routing_fp, routing_fingerprint(params.load.sessions, 1));
}

TEST(ShardedFrontDoor, RepeatMultiShardRunsKeepExactInvariants) {
  // At N>1 the shared ghost list's decay epochs depend on cross-shard op
  // interleaving (frontdoor.h, determinism contract), so hit ratios may
  // wobble — but routing, event, and request totals must repeat exactly.
  FrontDoorParams params;
  params.load = small_load();
  params.apply_scaled_admission();
  params.shards = 2;
  const FrontDoorResult a = run_front_door(params, FrontDoorMode::kThreaded);
  const FrontDoorResult b = run_front_door(params, FrontDoorMode::kThreaded);
  EXPECT_EQ(a.routing_fp, routing_fingerprint(params.load.sessions, 2));
  EXPECT_EQ(b.routing_fp, a.routing_fp);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.requests, b.requests);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(a.per_shard[s].sessions, b.per_shard[s].sessions);
    EXPECT_EQ(a.per_shard[s].events, b.per_shard[s].events);
    EXPECT_EQ(a.per_shard[s].requests, b.per_shard[s].requests);
  }
  EXPECT_NEAR(a.cache_hit_ratio, b.cache_hit_ratio, 0.05);
}

TEST(ShardedFrontDoor, CrossShardCounterAggregationSumsToRunTotals) {
  FrontDoorParams params;
  params.load = small_load();
  params.apply_scaled_admission();
  params.shards = 4;
  params.counter_flush_batch = 64;  // several flush boundaries per shard

  obs::Counter& events = obs::metrics().counter("http.frontdoor.events_total");
  obs::Counter& requests =
      obs::metrics().counter("http.frontdoor.requests_total");
  const std::uint64_t events_before = events.value();
  const std::uint64_t requests_before = requests.value();

  const FrontDoorResult r = run_front_door(params, FrontDoorMode::kThreaded);

  // Batched per-shard counting must aggregate to exactly the run's totals
  // in the one process-wide registry — nothing lost, nothing double-counted.
  EXPECT_EQ(events.value() - events_before, r.events);
  EXPECT_EQ(requests.value() - requests_before, r.requests);
  EXPECT_EQ(r.events,
            params.load.sessions * params.load.touches_per_session);
}

}  // namespace
}  // namespace mfhttp
