// Real-socket transport suite (ISSUE 8): the aio byte pipe and event loop,
// the loopback HTTP server's robustness contract (431, slowloris deadlines,
// shed hook, drain), sim-vs-socket parity through the one canonical
// FetchPipelineBuilder wiring, and the seeded socket fault injector's
// determinism guarantees.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/faulty_socket.h"
#include "http/fetch_pipeline.h"
#include "http/parser.h"
#include "http/transport.h"
#include "net/aio/byte_pipe.h"
#include "net/aio/event_loop.h"
#include "net/aio/http_server.h"
#include "net/aio/syscall.h"
#include "net/aio/tcp.h"
#include "net/bandwidth_trace.h"
#include "sim/simulator.h"

namespace mfhttp {
namespace {

// ---------- BytePipe ----------

TEST(AioBytePipe, PushPullRoundTrip) {
  aio::BytePipe pipe(16);
  aio::BytePipe::WriteWindow w = pipe.push_begin(5);
  ASSERT_GE(w.size, 5u);
  std::memcpy(w.data, "hello", 5);
  pipe.push_finish(5);
  EXPECT_EQ(pipe.peek(), "hello");
  pipe.consume(2);
  EXPECT_EQ(pipe.peek(), "llo");
  pipe.consume(3);
  EXPECT_TRUE(pipe.empty());
}

TEST(AioBytePipe, PullLineStripsCrlf) {
  aio::BytePipe pipe;
  ASSERT_TRUE(pipe.append("GET / HTTP/1.1\r\nHost: x\r\n\r\ntail"));
  std::string_view line;
  ASSERT_TRUE(pipe.pull_line(&line));
  EXPECT_EQ(line, "GET / HTTP/1.1");
  ASSERT_TRUE(pipe.pull_line(&line));
  EXPECT_EQ(line, "Host: x");
  ASSERT_TRUE(pipe.pull_line(&line));
  EXPECT_EQ(line, "");
  EXPECT_FALSE(pipe.pull_line(&line));  // "tail" has no LF yet
  EXPECT_EQ(pipe.peek(), "tail");
}

TEST(AioBytePipe, BoundedPipeSignalsBackpressure) {
  aio::BytePipe pipe(8, /*max_capacity=*/16);
  EXPECT_TRUE(pipe.append(std::string(16, 'a')));
  EXPECT_TRUE(pipe.full());
  EXPECT_FALSE(pipe.append("b"));          // no room: nothing appended
  EXPECT_EQ(pipe.size(), 16u);
  aio::BytePipe::WriteWindow w = pipe.push_begin(1);
  EXPECT_EQ(w.size, 0u);                   // the stop-reading signal
  pipe.push_finish(0);
  pipe.consume(10);
  EXPECT_FALSE(pipe.full());
  EXPECT_TRUE(pipe.append("b"));
}

// ISSUE 8 satellite: a partially-filled reservation must survive the pipe
// growing (or compacting) under a second, larger push_begin.
TEST(AioBytePipe, GrowPreservesInFlightReservation) {
  aio::BytePipe pipe(8);
  ASSERT_TRUE(pipe.append("xy"));  // committed prefix
  aio::BytePipe::WriteWindow w1 = pipe.push_begin(4);
  ASSERT_GE(w1.size, 4u);
  std::memcpy(w1.data, "abcd", 4);  // written but NOT committed

  // Re-reserve far beyond current capacity: forces a reallocation.
  aio::BytePipe::WriteWindow w2 = pipe.push_begin(4096);
  ASSERT_GE(w2.size, 4096u);
  EXPECT_EQ(std::string_view(w2.data, 4), "abcd")
      << "reservation bytes lost across grow";
  std::memcpy(w2.data + 4, "efgh", 4);
  pipe.push_finish(8);
  EXPECT_EQ(pipe.peek(), "xyabcdefgh");
}

TEST(AioBytePipe, CompactionPreservesReservation) {
  aio::BytePipe pipe(32);
  ASSERT_TRUE(pipe.append(std::string(24, 'a')));
  pipe.consume(20);  // begin_ far forward: next reserve compacts in place
  aio::BytePipe::WriteWindow w1 = pipe.push_begin(4);
  std::memcpy(w1.data, "1234", 4);
  aio::BytePipe::WriteWindow w2 = pipe.push_begin(24);  // compaction
  ASSERT_GE(w2.size, 24u);
  EXPECT_EQ(std::string_view(w2.data, 4), "1234");
  pipe.push_finish(4);
  EXPECT_EQ(pipe.peek(), "aaaa1234");
}

// ---------- EventLoop / timer wheel ----------

TEST(AioEventLoop, ImmediateTimerFires) {
  aio::EventLoop loop;
  bool fired = false;
  loop.add_timer_after(0, [&] { fired = true; });
  // A deadline on the current wheel tick must fire on the next poll, not
  // after a full wheel revolution.
  EXPECT_TRUE(loop.run_until([&] { return fired; }, loop.now_ms() + 200));
}

TEST(AioEventLoop, CancelledTimerNeverFires) {
  aio::EventLoop loop;
  bool a = false, b = false;
  loop.add_timer_after(10, [&] { a = true; });
  aio::EventLoop::TimerId tb = loop.add_timer_after(20, [&] { b = true; });
  EXPECT_TRUE(loop.cancel_timer(tb));
  EXPECT_FALSE(loop.cancel_timer(tb));  // already cancelled
  EXPECT_TRUE(loop.run_until([&] { return a; }, loop.now_ms() + 500));
  loop.poll(0);
  EXPECT_FALSE(b);
  EXPECT_EQ(loop.timer_count(), 0u);
}

TEST(AioEventLoop, WheelCollisionDoesNotFireEarly) {
  aio::EventLoop loop;
  bool near = false, far = false;
  loop.add_timer_after(8, [&] { near = true; });
  // Same wheel slot, one revolution later (256 slots x 4 ms).
  loop.add_timer_after(8 + 1024, [&] { far = true; });
  EXPECT_TRUE(loop.run_until([&] { return near; }, loop.now_ms() + 500));
  EXPECT_FALSE(far) << "future-revolution timer fired a revolution early";
  EXPECT_EQ(loop.timer_count(), 1u);
}

TEST(AioEventLoop, RunUntilHonorsDeadline) {
  aio::EventLoop loop;
  EXPECT_FALSE(loop.run_until([] { return false; }, loop.now_ms() + 30));
}

// ---------- HttpServer robustness (raw client) ----------

// Minimal raw loopback client: one TcpConn collecting every received byte.
struct RawClient {
  aio::EventLoop& loop;
  std::unique_ptr<aio::TcpConn> conn;
  std::string received;
  bool closed = false;
  aio::TcpConn::CloseReason reason = aio::TcpConn::CloseReason::kLocal;

  RawClient(aio::EventLoop& l, std::uint16_t port) : loop(l) {
    int fd = aio::connect_loopback(port);
    EXPECT_GE(fd, 0);
    conn = std::make_unique<aio::TcpConn>(loop, fd, aio::TcpConnParams{},
                                          /*ordinal=*/999, nullptr,
                                          /*await_connect=*/true);
    conn->set_on_data([this] {
      std::string_view chunk = conn->in().peek();
      received.append(chunk);
      conn->in().consume(chunk.size());
      conn->resume_read();
    });
    conn->set_on_closed([this](aio::TcpConn::CloseReason r) {
      closed = true;
      reason = r;
    });
  }

  bool wait(const std::function<bool()>& done, TimeMs budget_ms = 2000) {
    return loop.run_until(done, loop.now_ms() + budget_ms);
  }
};

std::vector<HttpResponse> parse_responses(const std::string& wire) {
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.feed(wire);
  std::vector<HttpResponse> out;
  while (parser.has_message()) out.push_back(parser.take_response());
  return out;
}

HttpResponse ok_handler(const HttpRequest& req) {
  return HttpResponse::make(200, "OK", "served:" + req.target, "text/plain");
}

TEST(AioHttpServer, ServesKeepAliveRequests) {
  aio::EventLoop loop;
  aio::HttpServer server(loop, 0, ok_handler);
  RawClient client(loop, server.port());
  ASSERT_TRUE(client.conn->send("GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
                                "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(client.wait([&] {
    return parse_responses(client.received).size() >= 2;
  }));
  std::vector<HttpResponse> responses = parse_responses(client.received);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, "served:/a");
  EXPECT_EQ(responses[1].body, "served:/b");
  EXPECT_FALSE(client.closed);  // keep-alive: conn stays up
  EXPECT_EQ(server.stats().requests, 2u);
  EXPECT_EQ(server.stats().responses, 2u);
}

TEST(AioHttpServer, OversizedHeadersAnswer431AndClose) {
  aio::EventLoop loop;
  aio::HttpServerParams params;
  params.limits.max_header_bytes = 256;
  aio::HttpServer server(loop, 0, ok_handler, params);
  RawClient client(loop, server.port());
  std::string request = "GET / HTTP/1.1\r\nHost: x\r\nX-Big: " +
                        std::string(1024, 'a') + "\r\n\r\n";
  ASSERT_TRUE(client.conn->send(request));
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  std::vector<HttpResponse> responses = parse_responses(client.received);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 431);
  EXPECT_EQ(server.stats().header_violations, 1u);
}

TEST(AioHttpServer, TooManyHeadersAnswer431) {
  aio::EventLoop loop;
  aio::HttpServerParams params;
  params.limits.max_header_count = 8;
  aio::HttpServer server(loop, 0, ok_handler, params);
  RawClient client(loop, server.port());
  std::string request = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i)
    request += "X-H" + std::to_string(i) + ": v\r\n";
  request += "\r\n";
  ASSERT_TRUE(client.conn->send(request));
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  std::vector<HttpResponse> responses = parse_responses(client.received);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 431);
}

TEST(AioHttpServer, GarbageAnswers400AndCloses) {
  aio::EventLoop loop;
  aio::HttpServer server(loop, 0, ok_handler);
  RawClient client(loop, server.port());
  ASSERT_TRUE(client.conn->send("\x01\x02 utter garbage\r\n\r\n"));
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  std::vector<HttpResponse> responses = parse_responses(client.received);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST(AioHttpServer, ShedHookAnswers503) {
  aio::EventLoop loop;
  aio::HttpServer server(loop, 0, ok_handler);
  server.set_shed_hook([](const HttpRequest&) { return true; });
  RawClient client(loop, server.port());
  ASSERT_TRUE(client.conn->send("GET /a HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(client.wait([&] {
    return !parse_responses(client.received).empty();
  }));
  std::vector<HttpResponse> responses = parse_responses(client.received);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 503);
  EXPECT_EQ(responses[0].headers.get("x-mfhttp-shed").value_or(""), "admission");
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(AioHttpServer, SlowlorisHitsRequestDeadline) {
  aio::EventLoop loop;
  aio::HttpServerParams params;
  params.request_deadline_ms = 40;
  aio::HttpServer server(loop, 0, ok_handler, params);
  RawClient client(loop, server.port());
  // First bytes of a request, then silence: the per-request read deadline
  // must kill the connection.
  ASSERT_TRUE(client.conn->send("GET / HTTP/1.1\r\nHo"));
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  EXPECT_GE(server.stats().timeouts, 1u);
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST(AioHttpServer, IdleConnectionTimesOut) {
  aio::EventLoop loop;
  aio::HttpServerParams params;
  params.conn.idle_timeout_ms = 40;
  aio::HttpServer server(loop, 0, ok_handler, params);
  RawClient client(loop, server.port());
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  EXPECT_GE(server.stats().timeouts, 1u);
}

TEST(AioHttpServer, DrainClosesIdleConnsAndStopsAccepting) {
  aio::EventLoop loop;
  aio::HttpServer server(loop, 0, ok_handler);
  RawClient client(loop, server.port());
  ASSERT_TRUE(client.conn->send("GET /a HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(client.wait([&] {
    return !parse_responses(client.received).empty();
  }));
  server.drain();
  EXPECT_TRUE(server.draining());
  ASSERT_TRUE(client.wait([&] { return client.closed; }));
  EXPECT_EQ(server.connection_count(), 0u);
  // A new dial finds nobody listening.
  RawClient late(loop, server.port());
  EXPECT_TRUE(late.wait([&] { return late.closed; }));
}

// ---------- sim vs socket parity through the pipeline ----------

struct World {
  Simulator sim;
  ObjectStore store;
  std::optional<Link> origin_link;
  std::unique_ptr<FetchPipeline> pipeline;

  void build(TransportKind kind, const fault::FaultPlan* plan = nullptr) {
    store.put("/img/a.jpg", 50'000, "image/jpeg");
    store.put("/img/b.jpg", 20'000, "image/jpeg");
    store.put_body("/page.html", "<html>hello scroll</html>", "text/html");

    Link::Params origin_params;
    origin_params.bandwidth = BandwidthTrace::constant(1'000'000);
    origin_params.latency_ms = 2;
    origin_link.emplace(sim, origin_params);

    FetchPipelineBuilder builder(sim);
    builder.with_origin(&store, &*origin_link);
    TransportConfig config;
    config.kind = kind;
    builder.with_transport(config);
    if (plan != nullptr) builder.with_faults(plan);

    Link::Params client_params;
    client_params.bandwidth = BandwidthTrace::constant(400'000);
    client_params.latency_ms = 30;
    builder.client_link(client_params);
    pipeline = builder.build();
  }

  FetchResult fetch(const std::string& url, const std::string& etag = "") {
    std::optional<FetchResult> out;
    FetchCallbacks callbacks;
    callbacks.on_complete = [&](const FetchResult& r) { out = r; };
    HttpRequest request = HttpRequest::get(url);
    if (!etag.empty()) request.headers.set("If-None-Match", etag);
    pipeline->proxy().fetch(request, std::move(callbacks));
    sim.run();
    EXPECT_TRUE(out.has_value());
    return out.value_or(FetchResult{});
  }
};

TEST(TransportParity, CleanWireFetchesMatchSimExactly) {
  const std::vector<std::string> script = {
      "http://origin.example/img/a.jpg", "http://origin.example/page.html",
      "http://origin.example/missing.png", "http://origin.example/img/b.jpg"};

  World sim_world, socket_world;
  sim_world.build(TransportKind::kSim);
  socket_world.build(TransportKind::kSocket);
  ASSERT_EQ(sim_world.pipeline->transport(), nullptr);
  ASSERT_NE(socket_world.pipeline->transport(), nullptr);

  for (const std::string& url : script) {
    FetchResult sim_result = sim_world.fetch(url);
    FetchResult socket_result = socket_world.fetch(url);
    EXPECT_EQ(sim_result.status, socket_result.status) << url;
    EXPECT_EQ(sim_result.body_size, socket_result.body_size) << url;
    // The parity contract: real I/O happens in zero sim time, then replays
    // SimHttpOrigin's exact event shape — identical sim timestamps.
    EXPECT_EQ(sim_result.request_ms, socket_result.request_ms) << url;
    EXPECT_EQ(sim_result.complete_ms, socket_result.complete_ms) << url;
  }

  const SocketTransport::ClientStats& cs =
      socket_world.pipeline->transport()->client_stats();
  EXPECT_EQ(cs.responses, script.size());
  EXPECT_EQ(cs.transport_errors, 0u);
  EXPECT_EQ(socket_world.pipeline->transport()->server_stats().requests,
            script.size());
}

TEST(TransportParity, ConditionalGetAnswers304OnBothBackends) {
  World sim_world, socket_world;
  sim_world.build(TransportKind::kSim);
  socket_world.build(TransportKind::kSocket);
  const std::string etag = sim_world.store.find("/img/a.jpg")->etag;
  ASSERT_FALSE(etag.empty());
  ASSERT_EQ(socket_world.store.find("/img/a.jpg")->etag, etag)
      << "twin worlds must assign identical etags";

  FetchResult sim_result =
      sim_world.fetch("http://origin.example/img/a.jpg", etag);
  FetchResult socket_result =
      socket_world.fetch("http://origin.example/img/a.jpg", etag);
  EXPECT_EQ(sim_result.status, 304);
  EXPECT_EQ(socket_result.status, 304);
  EXPECT_EQ(socket_result.body_size, 0u);
  EXPECT_EQ(sim_result.complete_ms, socket_result.complete_ms);
}

TEST(TransportParity, SocketOriginSurfaces431FromTheWire) {
  World world;
  world.build(TransportKind::kSocket);
  HttpRequest request = HttpRequest::get("http://origin.example/img/a.jpg");
  request.headers.set("X-Abuse", std::string(100 * 1024, 'a'));
  std::optional<FetchResult> out;
  FetchCallbacks callbacks;
  callbacks.on_complete = [&](const FetchResult& r) { out = r; };
  // Straight into the socket origin (the proxy's own header cap is a
  // separate front door, tested in test_proxy).
  world.pipeline->origin().fetch(request, std::move(callbacks));
  world.sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 431);
  EXPECT_EQ(
      world.pipeline->transport()->server_stats().header_violations, 1u);
}

TEST(TransportParity, KindNamesRoundTrip) {
  EXPECT_STREQ(transport_kind_name(TransportKind::kSim), "sim");
  EXPECT_STREQ(transport_kind_name(TransportKind::kSocket), "socket");
  EXPECT_EQ(transport_kind_from_name("sim"), TransportKind::kSim);
  EXPECT_EQ(transport_kind_from_name("socket"), TransportKind::kSocket);
  EXPECT_FALSE(transport_kind_from_name("carrier-pigeon").has_value());
}

// ---------- FaultySocket determinism ----------

struct DecisionKey {
  std::size_t clamp;
  bool reset;
  TimeMs stall_ms;
  bool operator==(const DecisionKey& o) const {
    return clamp == o.clamp && reset == o.reset && stall_ms == o.stall_ms;
  }
};

std::vector<DecisionKey> decision_stream(fault::SocketFaultInjector& injector,
                                         std::uint64_t conns,
                                         std::uint64_t ops) {
  std::vector<DecisionKey> out;
  for (std::uint64_t c = 0; c < conns; ++c) {
    for (std::uint64_t op = 0; op < ops; ++op) {
      aio::ByteFaults::Op r = injector.on_read(c, op, 4096);
      out.push_back({r.clamp, r.reset, r.stall_ms});
      aio::ByteFaults::Op w = injector.on_write(c, op, 4096);
      out.push_back({w.clamp, w.reset, w.stall_ms});
    }
  }
  return out;
}

TEST(FaultySocket, SameSeedSameDecisionStream) {
  fault::FaultPlan plan = fault::FaultPlan::flaky_socket(42);
  fault::SocketFaultInjector a(plan);
  fault::SocketFaultInjector b(plan);
  EXPECT_EQ(decision_stream(a, 4, 200), decision_stream(b, 4, 200));

  fault::FaultPlan other = fault::FaultPlan::flaky_socket(43);
  fault::SocketFaultInjector c(other);
  EXPECT_NE(decision_stream(a, 4, 200), decision_stream(c, 4, 200));
}

TEST(FaultySocket, DecisionsArePureFunctionsOfCoordinates) {
  fault::FaultPlan plan = fault::FaultPlan::flaky_socket(7);
  fault::SocketFaultInjector injector(plan);
  // Query in reverse order: a stateless injector must not care.
  std::vector<DecisionKey> reversed;
  for (std::uint64_t c = 4; c-- > 0;) {
    for (std::uint64_t op = 200; op-- > 0;) {
      aio::ByteFaults::Op w = injector.on_write(c, op, 4096);
      reversed.push_back({w.clamp, w.reset, w.stall_ms});
      aio::ByteFaults::Op r = injector.on_read(c, op, 4096);
      reversed.push_back({r.clamp, r.reset, r.stall_ms});
    }
  }
  std::vector<DecisionKey> forward = decision_stream(injector, 4, 200);
  ASSERT_EQ(forward.size(), reversed.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    // reversed holds (write, read) pairs in reverse coordinate order.
    std::size_t pair = reversed.size() / 2 - 1 - i / 2;
    const DecisionKey& rev = reversed[pair * 2 + (i % 2 == 0 ? 1 : 0)];
    EXPECT_TRUE(forward[i] == rev) << "coordinate " << i;
  }
}

TEST(FaultySocket, ResetBeatsClampAndStall) {
  fault::FaultPlan plan;
  plan.socket.reset_rate = 1.0;
  plan.socket.short_read_rate = 1.0;
  plan.socket.stall_rate = 1.0;
  plan.socket.stall_ms = 50;
  fault::SocketFaultInjector injector(plan);
  aio::ByteFaults::Op op = injector.on_read(0, 0, 4096);
  EXPECT_TRUE(op.reset);
  EXPECT_EQ(op.stall_ms, 0);
  EXPECT_EQ(op.clamp, SIZE_MAX);
}

TEST(FaultySocket, EmptyPlanInjectsNothing) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.socket.any());
  fault::SocketFaultInjector injector(plan);
  for (std::uint64_t op = 0; op < 100; ++op) {
    aio::ByteFaults::Op decision = injector.on_read(0, op, 4096);
    EXPECT_FALSE(decision.reset);
    EXPECT_EQ(decision.clamp, SIZE_MAX);
    EXPECT_EQ(decision.stall_ms, 0);
  }
}

TEST(FaultySocket, FaultyWireEndToEndTaxonomyAccounted) {
  fault::FaultPlan plan = fault::FaultPlan::flaky_socket(7);
  // Socket-only chaos must leave the sim-side pipeline undecorated.
  ASSERT_TRUE(plan.pipeline_empty());
  ASSERT_FALSE(plan.empty());

  World world;
  world.build(TransportKind::kSocket, &plan);
  std::size_t completed = 0, errored = 0;
  const int kFetches = 30;
  for (int i = 0; i < kFetches; ++i) {
    FetchResult result = world.fetch(i % 2 == 0
                                         ? "http://origin.example/img/b.jpg"
                                         : "http://origin.example/page.html");
    if (result.status == 200) {
      ++completed;
      EXPECT_GT(result.body_size, 0u);
    } else {
      // Transport failures surface as status 0 (retryable), never hang.
      EXPECT_EQ(result.status, 0) << "unexpected status on faulty wire";
      ++errored;
    }
  }
  EXPECT_EQ(completed + errored, static_cast<std::size_t>(kFetches));
  const SocketTransport::ClientStats& cs =
      world.pipeline->transport()->client_stats();
  EXPECT_EQ(cs.transport_errors, errored);
  EXPECT_GT(completed, 0u) << "flaky wire should still serve most requests";
}

}  // namespace
}  // namespace mfhttp
