// Tests for the simulated HTTP origin and the MITM proxy: timing, streaming,
// interception (allow/block/defer/rewrite), release, and stats.
#include <gtest/gtest.h>

#include <optional>

#include "fault/fault_plan.h"
#include "fault/faulty_fetcher.h"
#include "http/proxy.h"
#include "http/sim_http.h"

namespace mfhttp {
namespace {

struct ProxyFixture : public ::testing::Test {
  void SetUp() override {
    Link::Params server_params;
    server_params.bandwidth = BandwidthTrace::constant(1'000'000);
    server_params.latency_ms = 2;
    server_link.emplace(sim, server_params);

    Link::Params client_params;
    client_params.bandwidth = BandwidthTrace::constant(100'000);  // bottleneck
    client_params.latency_ms = 5;
    client_params.sharing = Link::Sharing::kFairShare;
    client_link.emplace(sim, client_params);

    store.put("/img/a.jpg", 50'000, "image/jpeg");
    store.put("/img/b.jpg", 20'000, "image/jpeg");
    store.put("/img/a_low.jpg", 5'000, "image/jpeg");
    origin.emplace(sim, &store, &*server_link);
    proxy.emplace(sim, &*origin, &*client_link);
  }

  FetchResult fetch_and_wait(const std::string& url) {
    std::optional<FetchResult> out;
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    proxy->fetch(HttpRequest::get(url), std::move(cbs));
    sim.run();
    EXPECT_TRUE(out.has_value());
    return *out;
  }

  Simulator sim;
  ObjectStore store;
  std::optional<Link> server_link;
  std::optional<Link> client_link;
  std::optional<SimHttpOrigin> origin;
  std::optional<MitmProxy> proxy;
};

// ---------- SimHttpOrigin ----------

TEST_F(ProxyFixture, OriginServesKnownObject) {
  std::optional<FetchResult> out;
  std::optional<SimResponseMeta> meta;
  FetchCallbacks cbs;
  cbs.on_headers = [&](const SimResponseMeta& m) { meta = m; };
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  origin->fetch(HttpRequest::get("http://site.example/img/a.jpg"), std::move(cbs));
  sim.run();
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->status, 200);
  EXPECT_EQ(meta->body_size, 50'000);
  EXPECT_EQ(meta->content_type, "image/jpeg");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 50'000);
  // 50 KB at 1 MB/s over the server link: ~50 ms + delays.
  EXPECT_GT(out->complete_ms, 50);
  EXPECT_LT(out->complete_ms, 120);
}

TEST_F(ProxyFixture, OriginReturns404ForUnknown) {
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  origin->fetch(HttpRequest::get("http://site.example/nope"), std::move(cbs));
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 404);
  EXPECT_GT(out->body_size, 0);  // small error body
}

TEST_F(ProxyFixture, OriginCancelStopsCallbacks) {
  int calls = 0;
  FetchCallbacks cbs;
  cbs.on_progress = [&](Bytes, Bytes, Bytes) { ++calls; };
  cbs.on_complete = [&](const FetchResult&) { ++calls; };
  auto id = origin->fetch(HttpRequest::get("http://s.example/img/a.jpg"),
                          std::move(cbs));
  sim.schedule_at(1, [&] { EXPECT_TRUE(origin->cancel(id)); });
  sim.run();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(origin->inflight(), 0u);
}

// ---------- MitmProxy: pass-through ----------

TEST_F(ProxyFixture, NoInterceptorPassesThrough) {
  FetchResult r = fetch_and_wait("http://site.example/img/b.jpg");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body_size, 20'000);
  EXPECT_FALSE(r.blocked);
  // Client link is the bottleneck: 20 KB at 100 KB/s ≈ 200 ms.
  EXPECT_GT(r.latency_ms(), 180);
  EXPECT_LT(r.latency_ms(), 280);
  EXPECT_EQ(proxy->stats().allowed, 1u);
}

TEST_F(ProxyFixture, ProgressStreamsIncrementally) {
  int progress_calls = 0;
  Bytes received = 0;
  FetchCallbacks cbs;
  cbs.on_progress = [&](Bytes chunk, Bytes cum, Bytes total) {
    ++progress_calls;
    received += chunk;
    EXPECT_EQ(cum, received);
    EXPECT_EQ(total, 20'000);
  };
  bool done = false;
  cbs.on_complete = [&](const FetchResult&) { done = true; };
  proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(cbs));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 20'000);
  EXPECT_GT(progress_calls, 5);  // many quanta, not one lump
}

// ---------- MitmProxy: interception ----------

class ScriptedInterceptor : public Interceptor {
 public:
  explicit ScriptedInterceptor(InterceptDecision decision) : decision_(decision) {}
  InterceptDecision on_request(const HttpRequest&) override { return decision_; }
  void on_fetch_complete(const FetchResult& result) override {
    completed.push_back(result);
  }
  InterceptDecision decision_;
  std::vector<FetchResult> completed;
};

TEST_F(ProxyFixture, BlockedRequestFailsFast) {
  ScriptedInterceptor blocker(InterceptDecision::block());
  proxy->set_interceptor(&blocker);
  FetchResult r = fetch_and_wait("http://s.example/img/a.jpg");
  EXPECT_TRUE(r.blocked);
  EXPECT_EQ(r.status, 403);
  EXPECT_EQ(r.body_size, 0);
  EXPECT_LT(r.latency_ms(), 20);
  EXPECT_EQ(proxy->stats().blocked, 1u);
  EXPECT_EQ(client_link->bytes_delivered_total(), 0);
  ASSERT_EQ(blocker.completed.size(), 1u);
  EXPECT_TRUE(blocker.completed[0].blocked);
}

TEST_F(ProxyFixture, DeferredRequestParksUntilRelease) {
  ScriptedInterceptor deferrer(InterceptDecision::defer());
  proxy->set_interceptor(&deferrer);
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(cbs));
  sim.run_until(5000);
  EXPECT_FALSE(out.has_value());  // parked
  ASSERT_EQ(proxy->deferred_urls().size(), 1u);
  EXPECT_EQ(proxy->deferred_urls()[0], "http://s.example/img/b.jpg");

  EXPECT_EQ(proxy->release("http://s.example/img/b.jpg"), 1u);
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 20'000);
  EXPECT_GE(out->complete_ms, 5000);  // served only after release
  EXPECT_EQ(proxy->stats().deferred, 1u);
  EXPECT_EQ(proxy->stats().released, 1u);
}

TEST_F(ProxyFixture, ReleaseUnknownUrlIsNoop) {
  EXPECT_EQ(proxy->release("http://s.example/none"), 0u);
}

TEST_F(ProxyFixture, AbortDeferredFailsAsBlocked) {
  ScriptedInterceptor deferrer(InterceptDecision::defer());
  proxy->set_interceptor(&deferrer);
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) { out = r; };
  proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(cbs));
  sim.run_until(100);
  EXPECT_EQ(proxy->abort_deferred("http://s.example/img/b.jpg"), 1u);
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->blocked);
  EXPECT_EQ(proxy->stats().aborted, 1u);
}

TEST_F(ProxyFixture, RewriteFetchesDifferentObject) {
  ScriptedInterceptor rewriter(
      InterceptDecision::rewrite("http://s.example/img/a_low.jpg"));
  proxy->set_interceptor(&rewriter);
  FetchResult r = fetch_and_wait("http://s.example/img/a.jpg");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body_size, 5'000);  // the low version's size
  EXPECT_EQ(proxy->stats().rewritten, 1u);
}

TEST_F(ProxyFixture, CancelInflightFetch) {
  bool any = false;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult&) { any = true; };
  auto id = proxy->fetch(HttpRequest::get("http://s.example/img/a.jpg"),
                         std::move(cbs));
  sim.schedule_at(50, [&] { EXPECT_TRUE(proxy->cancel(id)); });
  sim.run();
  EXPECT_FALSE(any);
}

TEST_F(ProxyFixture, MultipleDeferredSameUrlAllReleased) {
  ScriptedInterceptor deferrer(InterceptDecision::defer());
  proxy->set_interceptor(&deferrer);
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult&) { ++completions; };
    proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(cbs));
  }
  sim.run_until(10);
  EXPECT_EQ(proxy->release("http://s.example/img/b.jpg"), 3u);
  sim.run();
  EXPECT_EQ(completions, 3);
}

TEST_F(ProxyFixture, ReleasePriorityReordersFifoLink) {
  // On a FIFO client link, a later high-priority release overtakes an
  // earlier low-priority one.
  Link::Params fifo;
  fifo.bandwidth = BandwidthTrace::constant(100'000);
  fifo.sharing = Link::Sharing::kFifo;
  Link fifo_link(sim, fifo);
  MitmProxy fifo_proxy(sim, &*origin, &fifo_link);
  class DeferAll : public Interceptor {
   public:
    InterceptDecision on_request(const HttpRequest&) override {
      return InterceptDecision::defer();
    }
  } defer_all;
  fifo_proxy.set_interceptor(&defer_all);

  TimeMs done_low = -1, done_high = -1;
  FetchCallbacks low;
  low.on_complete = [&](const FetchResult& r) { done_low = r.complete_ms; };
  fifo_proxy.fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(low));
  FetchCallbacks high;
  high.on_complete = [&](const FetchResult& r) { done_high = r.complete_ms; };
  fifo_proxy.fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(high));
  sim.run_until(50);
  // Release the earlier (bigger) one at low priority, the later one high.
  fifo_proxy.release("http://s.example/img/a.jpg", /*priority=*/1);
  fifo_proxy.release("http://s.example/img/b.jpg", /*priority=*/5);
  sim.run();
  ASSERT_GT(done_low, 0);
  ASSERT_GT(done_high, 0);
  EXPECT_LT(done_high, done_low);  // 20 KB jumps the 50 KB queue
}

TEST_F(ProxyFixture, StatsCountBytesToClient) {
  fetch_and_wait("http://s.example/img/b.jpg");
  EXPECT_EQ(proxy->stats().bytes_to_client, 20'000);
}

TEST_F(ProxyFixture, DeferredThenUpstreamDiesMidBodyCompletesOnceNon200) {
  // A request is deferred, released, and the origin connection then dies
  // mid-body: the client must see on_complete exactly once with a non-200
  // status, and nothing may leak in the proxy or upstream.
  fault::FaultPlan plan;
  plan.origin.abrupt_close_rate = 1.0;
  fault::FaultyFetcher flaky(sim, &*origin, plan);
  MitmProxy flaky_proxy(sim, &flaky, &*client_link);
  ScriptedInterceptor deferrer(InterceptDecision::defer());
  flaky_proxy.set_interceptor(&deferrer);

  int completes = 0;
  std::optional<FetchResult> out;
  FetchCallbacks cbs;
  cbs.on_complete = [&](const FetchResult& r) {
    ++completes;
    out = r;
  };
  flaky_proxy.fetch(HttpRequest::get("http://s.example/img/a.jpg"), std::move(cbs));
  sim.run_until(500);
  EXPECT_EQ(completes, 0);  // parked
  EXPECT_EQ(flaky_proxy.release("http://s.example/img/a.jpg"), 1u);
  sim.run();
  EXPECT_EQ(completes, 1);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->status, 200);
  EXPECT_FALSE(out->blocked);
  EXPECT_LT(out->body_size, 50'000);
  EXPECT_TRUE(flaky_proxy.deferred_urls().empty());
  EXPECT_EQ(flaky.inflight(), 0u);
  EXPECT_EQ(origin->inflight(), 0u);
  // The interceptor still learned the outcome (policy bookkeeping).
  ASSERT_EQ(deferrer.completed.size(), 1u);
  EXPECT_NE(deferrer.completed[0].status, 200);
}

TEST_F(ProxyFixture, ConcurrentFetchesShareClientLink) {
  TimeMs done_a = -1, done_b = -1;
  FetchCallbacks ca;
  ca.on_complete = [&](const FetchResult& r) { done_a = r.complete_ms; };
  FetchCallbacks cb;
  cb.on_complete = [&](const FetchResult& r) { done_b = r.complete_ms; };
  proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(ca));
  proxy->fetch(HttpRequest::get("http://s.example/img/b.jpg"), std::move(cb));
  sim.run();
  // Two 20 KB objects over a shared 100 KB/s fair-share link: both ≈ 400 ms,
  // far beyond the 200 ms a lone transfer would take.
  EXPECT_GT(done_a, 330);
  EXPECT_GT(done_b, 330);
}

}  // namespace
}  // namespace mfhttp
