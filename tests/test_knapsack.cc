// Tests for the prefix-capacity knapsack (Eq. 13/14): exactness of the DP
// against exhaustive search on randomized instances, constraint handling,
// and the greedy heuristic's bounds.
#include <gtest/gtest.h>

#include "core/knapsack.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

KnapsackItem item(std::vector<double> values, std::vector<Bytes> weights,
                  Bytes capacity) {
  return KnapsackItem{std::move(values), std::move(weights), capacity};
}

// ---------- evaluate_selection ----------

TEST(EvaluateSelection, AcceptsFeasible) {
  std::vector<KnapsackItem> items = {item({1.0}, {100}, 100),
                                     item({2.0}, {50}, 200)};
  KnapsackSolution sol;
  EXPECT_TRUE(evaluate_selection(items, {0, 0}, &sol));
  EXPECT_DOUBLE_EQ(sol.total_value, 3.0);
  EXPECT_EQ(sol.total_weight, 150);
}

TEST(EvaluateSelection, RejectsPrefixViolation) {
  // Item 1 fits overall capacity but not its own prefix capacity.
  std::vector<KnapsackItem> items = {item({1.0}, {150}, 100),
                                     item({2.0}, {10}, 1000)};
  EXPECT_FALSE(evaluate_selection(items, {0, 0}, nullptr));
  EXPECT_TRUE(evaluate_selection(items, {-1, 0}, nullptr));
}

TEST(EvaluateSelection, LaterItemBoundByEarlierSelections) {
  std::vector<KnapsackItem> items = {item({1.0}, {100}, 100),
                                     item({2.0}, {50}, 120)};
  // Prefix at item 2: 100 + 50 = 150 > 120.
  EXPECT_FALSE(evaluate_selection(items, {0, 0}, nullptr));
  EXPECT_TRUE(evaluate_selection(items, {0, -1}, nullptr));
}

// ---------- DP basics ----------

TEST(PrefixKnapsack, EmptyInstance) {
  KnapsackSolution sol = solve_prefix_knapsack({}, 1);
  EXPECT_TRUE(sol.chosen.empty());
  EXPECT_DOUBLE_EQ(sol.total_value, 0);
}

TEST(PrefixKnapsack, SingleItemPicksBestVersion) {
  std::vector<KnapsackItem> items = {
      item({0.2, 0.5, 0.9}, {100, 300, 700}, 1000)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], 2);
  EXPECT_DOUBLE_EQ(sol.total_value, 0.9);
}

TEST(PrefixKnapsack, CapacityForcesLowerVersion) {
  std::vector<KnapsackItem> items = {
      item({0.2, 0.5, 0.9}, {100, 300, 700}, 400)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], 1);
}

TEST(PrefixKnapsack, NegativeValueSkipped) {
  std::vector<KnapsackItem> items = {item({-0.5, -0.1}, {10, 20}, 1000)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], -1);
  EXPECT_DOUBLE_EQ(sol.total_value, 0);
}

TEST(PrefixKnapsack, AtMostOneVersionPerObject) {
  std::vector<KnapsackItem> items = {
      item({0.5, 0.6}, {10, 20}, 1000), item({0.7, 0.8}, {10, 20}, 1000)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  // The solution vector has one entry per item by construction; verify both
  // picked their top versions independently.
  EXPECT_EQ(sol.chosen[0], 1);
  EXPECT_EQ(sol.chosen[1], 1);
  EXPECT_NEAR(sol.total_value, 1.4, 1e-12);
}

TEST(PrefixKnapsack, EarlyTightCapacityShapesSolution) {
  // Item 1 enters the viewport almost immediately (tiny capacity); item 2
  // much later (large capacity). The DP must not spend early capacity on
  // item 1's big version if that blocks a more valuable item 2... here item
  // 1 simply cannot fit at all.
  std::vector<KnapsackItem> items = {item({0.9}, {500}, 100),
                                     item({0.5}, {500}, 2000)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], -1);
  EXPECT_EQ(sol.chosen[1], 0);
}

TEST(PrefixKnapsack, SkipEarlyItemForBetterLateItem) {
  // Capacity at item 2 admits only one of the two; item 2 is worth more.
  std::vector<KnapsackItem> items = {item({0.5}, {100}, 100),
                                     item({0.9}, {100}, 100)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], -1);
  EXPECT_EQ(sol.chosen[1], 0);
  EXPECT_DOUBLE_EQ(sol.total_value, 0.9);
}

TEST(PrefixKnapsack, ZeroWeightItemsAlwaysFit) {
  std::vector<KnapsackItem> items = {item({0.5}, {0}, 0), item({0.3}, {0}, 0)};
  KnapsackSolution sol = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(sol.chosen[0], 0);
  EXPECT_EQ(sol.chosen[1], 0);
}

TEST(PrefixKnapsack, DiscretizationIsConservative) {
  // Weight 1001 with unit 1000 rounds up to 2 units; capacity 1999 rounds
  // down to 1 unit: must NOT be selected even though raw bytes would fit.
  std::vector<KnapsackItem> items = {item({1.0}, {1001}, 1999)};
  KnapsackSolution coarse = solve_prefix_knapsack(items, 1000);
  EXPECT_EQ(coarse.chosen[0], -1);
  KnapsackSolution fine = solve_prefix_knapsack(items, 1);
  EXPECT_EQ(fine.chosen[0], 0);
}

// ---------- bruteforce reference ----------

TEST(Bruteforce, MatchesHandComputedOptimum) {
  std::vector<KnapsackItem> items = {
      item({0.3, 0.7}, {100, 250}, 300),
      item({0.4, 0.9}, {100, 250}, 400),
  };
  // Best: item1 v0 (100) + item2 v1 (250) = 350 > 400? prefix2 = 350 <= 400 OK.
  // Value 0.3 + 0.9 = 1.2.
  KnapsackSolution sol = solve_prefix_knapsack_bruteforce(items);
  EXPECT_DOUBLE_EQ(sol.total_value, 1.2);
  EXPECT_EQ(sol.chosen[0], 0);
  EXPECT_EQ(sol.chosen[1], 1);
}

class KnapsackRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackRandomized, DpMatchesBruteforce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    int n = static_cast<int>(rng.uniform_int(1, 7));
    int m = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<KnapsackItem> items;
    Bytes cap = 0;
    for (int i = 0; i < n; ++i) {
      cap += rng.uniform_int(0, 40);  // nondecreasing capacities
      KnapsackItem it;
      it.capacity = cap;
      Bytes w = rng.uniform_int(1, 30);
      double v = rng.uniform(-0.3, 1.0);
      for (int j = 0; j < m; ++j) {
        it.weights.push_back(w);
        it.values.push_back(v);
        w += rng.uniform_int(1, 25);   // heavier versions...
        v += rng.uniform(-0.2, 0.5);   // ...usually more valuable
      }
      items.push_back(std::move(it));
    }
    KnapsackSolution dp = solve_prefix_knapsack(items, 1);  // exact units
    KnapsackSolution bf = solve_prefix_knapsack_bruteforce(items);
    EXPECT_NEAR(dp.total_value, bf.total_value, 1e-9)
        << "seed=" << GetParam() << " iter=" << iter;
    // DP's own selection must evaluate to its claimed value.
    KnapsackSolution check;
    ASSERT_TRUE(evaluate_selection(items, dp.chosen, &check));
    EXPECT_NEAR(check.total_value, dp.total_value, 1e-9);
  }
}

TEST_P(KnapsackRandomized, CoarseUnitsNeverInfeasibleAndNearOptimal) {
  Rng rng(GetParam() + 99);
  for (int iter = 0; iter < 20; ++iter) {
    int n = static_cast<int>(rng.uniform_int(2, 8));
    std::vector<KnapsackItem> items;
    Bytes cap = 0;
    for (int i = 0; i < n; ++i) {
      cap += rng.uniform_int(5'000, 200'000);
      KnapsackItem it;
      it.capacity = cap;
      it.weights = {rng.uniform_int(1'000, 150'000)};
      it.values = {rng.uniform(0.0, 1.0)};
      items.push_back(std::move(it));
    }
    KnapsackSolution exact = solve_prefix_knapsack(items, 1);
    KnapsackSolution coarse = solve_prefix_knapsack(items, 4096);
    KnapsackSolution check;
    ASSERT_TRUE(evaluate_selection(items, coarse.chosen, &check));
    EXPECT_LE(coarse.total_value, exact.total_value + 1e-9);
  }
}

TEST_P(KnapsackRandomized, GreedyFeasibleAndBoundedByDp) {
  Rng rng(GetParam() + 7);
  for (int iter = 0; iter < 30; ++iter) {
    int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<KnapsackItem> items;
    Bytes cap = 0;
    for (int i = 0; i < n; ++i) {
      cap += rng.uniform_int(0, 60);
      items.push_back(item({rng.uniform(-0.2, 1.0)}, {rng.uniform_int(1, 50)}, cap));
    }
    KnapsackSolution greedy = solve_prefix_knapsack_greedy(items);
    KnapsackSolution dp = solve_prefix_knapsack(items, 1);
    EXPECT_TRUE(evaluate_selection(items, greedy.chosen, nullptr));
    EXPECT_LE(greedy.total_value, dp.total_value + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomized,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------- branch and bound ----------

TEST(BranchAndBound, MatchesHandComputedOptimum) {
  std::vector<KnapsackItem> items = {
      item({0.3, 0.7}, {100, 250}, 300),
      item({0.4, 0.9}, {100, 250}, 400),
  };
  BranchAndBoundResult r = solve_prefix_knapsack_bnb(items);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.solution.total_value, 1.2);
  EXPECT_EQ(r.solution.chosen[0], 0);
  EXPECT_EQ(r.solution.chosen[1], 1);
}

TEST(BranchAndBound, EmptyInstance) {
  BranchAndBoundResult r = solve_prefix_knapsack_bnb({});
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.solution.total_value, 0);
}

TEST(BranchAndBound, AllNegativeValuesSelectsNothing) {
  std::vector<KnapsackItem> items = {item({-0.5, -0.1}, {10, 20}, 1000)};
  BranchAndBoundResult r = solve_prefix_knapsack_bnb(items);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.solution.chosen[0], -1);
}

TEST(BranchAndBound, NodeBudgetOverrunReturnsInexact) {
  // A wide instance with a tiny node budget: must come back feasible (and
  // flagged inexact), never crash or hang.
  Rng rng(3);
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < 30; ++i) {
    cap += rng.uniform_int(10, 100);
    items.push_back(item({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)},
                         {rng.uniform_int(1, 40), rng.uniform_int(1, 40)}, cap));
  }
  BranchAndBoundResult r = solve_prefix_knapsack_bnb(items, 50);
  EXPECT_FALSE(r.exact);
  EXPECT_TRUE(evaluate_selection(items, r.solution.chosen, nullptr));
}

TEST(BranchAndBound, ByteScaleCapacitiesNoDiscretizationLoss) {
  // The DP must discretize megabyte capacities; B&B is exact in bytes. On
  // the boundary instance from the DP conservatism test, B&B selects.
  std::vector<KnapsackItem> items = {item({1.0}, {1001}, 1999)};
  BranchAndBoundResult r = solve_prefix_knapsack_bnb(items);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.solution.chosen[0], 0);
}

class BnbRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbRandomized, MatchesBruteforce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    int n = static_cast<int>(rng.uniform_int(1, 7));
    int m = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<KnapsackItem> items;
    Bytes cap = 0;
    for (int i = 0; i < n; ++i) {
      cap += rng.uniform_int(0, 40);
      KnapsackItem it;
      it.capacity = cap;
      for (int j = 0; j < m; ++j) {
        it.weights.push_back(rng.uniform_int(1, 30));
        it.values.push_back(rng.uniform(-0.3, 1.0));
      }
      items.push_back(std::move(it));
    }
    BranchAndBoundResult bnb = solve_prefix_knapsack_bnb(items);
    KnapsackSolution bf = solve_prefix_knapsack_bruteforce(items);
    ASSERT_TRUE(bnb.exact);
    EXPECT_NEAR(bnb.solution.total_value, bf.total_value, 1e-9)
        << "seed=" << GetParam() << " iter=" << iter;
  }
}

TEST_P(BnbRandomized, MatchesDpOnByteScaleInstances) {
  Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 10; ++iter) {
    int n = static_cast<int>(rng.uniform_int(2, 14));
    std::vector<KnapsackItem> items;
    Bytes cap = 0;
    for (int i = 0; i < n; ++i) {
      cap += rng.uniform_int(10'000, 300'000);
      KnapsackItem it;
      it.capacity = cap;
      Bytes w = rng.uniform_int(2'000, 200'000);
      double v = rng.uniform(0.05, 0.6);
      for (int j = 0; j < 3; ++j) {
        it.weights.push_back(w * (j + 1));
        it.values.push_back(v * (j + 1) * rng.uniform(0.8, 1.2));
      }
      items.push_back(std::move(it));
    }
    BranchAndBoundResult bnb = solve_prefix_knapsack_bnb(items);
    ASSERT_TRUE(bnb.exact);
    // Fine-grained DP (1-byte units would be too slow; 16 B is near-exact).
    KnapsackSolution dp = solve_prefix_knapsack(items, 16);
    EXPECT_GE(bnb.solution.total_value + 1e-9, dp.total_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomized, ::testing::Values(7u, 8u, 9u));

TEST(Greedy, PrefersHighDensity) {
  std::vector<KnapsackItem> items = {
      item({0.5}, {100}, 100),   // density 0.005
      item({0.4}, {10}, 110),    // density 0.04
  };
  KnapsackSolution sol = solve_prefix_knapsack_greedy(items);
  // Greedy takes item 2 first (higher density); item 1 then still fits its
  // own prefix (100 <= 100).
  EXPECT_EQ(sol.chosen[1], 0);
  EXPECT_EQ(sol.chosen[0], 0);
}

TEST(Greedy, SkipsNegativeValues) {
  std::vector<KnapsackItem> items = {item({-0.5}, {10}, 100)};
  KnapsackSolution sol = solve_prefix_knapsack_greedy(items);
  EXPECT_EQ(sol.chosen[0], -1);
}

TEST(PrefixKnapsack, LargeInstanceRunsQuickly) {
  // 60 objects x 4 versions, megabyte-scale capacities with 1 KB units.
  Rng rng(5);
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < 60; ++i) {
    cap += rng.uniform_int(20'000, 80'000);
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(5'000, 30'000);
    double v = rng.uniform(0.1, 0.4);
    for (int j = 0; j < 4; ++j) {
      it.weights.push_back(w);
      it.values.push_back(v);
      w *= 2;
      v *= 1.6;
    }
    items.push_back(std::move(it));
  }
  KnapsackSolution sol = solve_prefix_knapsack(items, 1024);
  EXPECT_TRUE(evaluate_selection(items, sol.chosen, nullptr));
  EXPECT_GT(sol.total_value, 0);
}

}  // namespace
}  // namespace mfhttp
