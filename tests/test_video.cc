// Tests for the 360° video case study: equirectangular projection, tile
// visibility, the DASH content model, viewport traces from gestures, the
// three schedulers, and full streaming sessions (MF-HTTP must beat greedy
// whole-frame DASH on viewport quality).
#include <gtest/gtest.h>

#include <cmath>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "http/url.h"
#include "video/dash.h"
#include "video/projection.h"
#include "video/scheduler.h"
#include "video/session.h"
#include "video/tiling.h"
#include "video/viewport_trace.h"

namespace mfhttp {
namespace {

constexpr double kPi = 3.14159265358979323846;
const DeviceProfile kDevice = DeviceProfile::nexus6();

// ---------- projection ----------

TEST(Projection, NormalizeWrapsYaw) {
  EXPECT_NEAR(normalize_orientation({3 * kPi, 0}).yaw, kPi, 1e-9);
  EXPECT_NEAR(normalize_orientation({-3 * kPi, 0}).yaw, kPi, 1e-9);
  EXPECT_NEAR(normalize_orientation({kPi / 4, 0}).yaw, kPi / 4, 1e-12);
}

TEST(Projection, NormalizeClampsPitch) {
  EXPECT_NEAR(normalize_orientation({0, 2.0}).pitch, kPi / 2, 1e-12);
  EXPECT_NEAR(normalize_orientation({0, -2.0}).pitch, -kPi / 2, 1e-12);
}

TEST(Projection, EquirectCenterAndCorners) {
  double w = 3840, h = 1920;
  // Yaw 0, pitch 0 lands in the frame center.
  Vec2 c = project_equirect({0, 0}, w, h);
  EXPECT_NEAR(c.x, w / 2, 1e-9);
  EXPECT_NEAR(c.y, h / 2, 1e-9);
  // Looking straight up hits the top row.
  EXPECT_NEAR(project_equirect({0, kPi / 2}, w, h).y, 0, 1e-9);
  // Looking down: bottom row (clamped just inside).
  EXPECT_LT(project_equirect({0, -kPi / 2}, w, h).y, h);
  EXPECT_GT(project_equirect({0, -kPi / 2}, w, h).y, h - 1);
}

TEST(Projection, YawWrapsAcrossSeam) {
  double w = 3840, h = 1920;
  Vec2 just_left = project_equirect({kPi - 0.01, 0}, w, h);
  Vec2 just_right = project_equirect({-kPi + 0.01, 0}, w, h);
  EXPECT_GT(just_left.x, w * 0.99);
  EXPECT_LT(just_right.x, w * 0.01);
}

TEST(Projection, InterpolateTakesShortYawArc) {
  ViewOrientation a{kPi - 0.1, 0}, b{-kPi + 0.1, 0};
  ViewOrientation mid = interpolate_orientation(a, b, 0.5);
  // Short way crosses the seam at ±pi, not through 0.
  EXPECT_GT(std::abs(mid.yaw), kPi - 0.15);
}

TEST(Projection, InterpolateEndpoints) {
  ViewOrientation a{0.3, 0.1}, b{1.2, -0.4};
  EXPECT_NEAR(interpolate_orientation(a, b, 0).yaw, 0.3, 1e-12);
  EXPECT_NEAR(interpolate_orientation(a, b, 1).yaw, 1.2, 1e-12);
  EXPECT_NEAR(interpolate_orientation(a, b, 0.5).pitch, -0.15, 1e-12);
}

TEST(Projection, FootprintCentersOnView) {
  double w = 3840, h = 1920;
  auto pts = viewport_footprint({0.5, 0.2}, FieldOfView{}, w, h);
  ASSERT_FALSE(pts.empty());
  Vec2 center = project_equirect({0.5, 0.2}, w, h);
  // All sample points lie within a generous radius of the center (no FOV
  // blowup), and the exact center is among the sampled region.
  double maxd = 0;
  for (Vec2 p : pts) maxd = std::max(maxd, (p - center).norm());
  EXPECT_LT(maxd, w / 2);
}

// ---------- tiling ----------

TEST(TileGrid, RectsPartitionFrame) {
  TileGrid grid(4, 4, 3840, 1920);
  EXPECT_EQ(grid.tile_count(), 16);
  double area = 0;
  for (int t = 0; t < grid.tile_count(); ++t) area += grid.tile_rect(t).area();
  EXPECT_NEAR(area, 3840.0 * 1920.0, 1e-6);
  EXPECT_EQ(grid.tile_rect(0), (Rect{0, 0, 960, 480}));
  EXPECT_EQ(grid.tile_rect(15), (Rect{2880, 1440, 960, 480}));
}

TEST(TileGrid, TileAtMapsCoordinates) {
  TileGrid grid(4, 4, 3840, 1920);
  EXPECT_EQ(grid.tile_at({0, 0}), 0);
  EXPECT_EQ(grid.tile_at({3839, 1919}), 15);
  EXPECT_EQ(grid.tile_at({1000, 500}), 5);  // col 1, row 1
  // Out-of-range clamps.
  EXPECT_EQ(grid.tile_at({-5, -5}), 0);
  EXPECT_EQ(grid.tile_at({1e6, 1e6}), 15);
}

TEST(TileGrid, VisibleTilesSubsetAndNonEmpty) {
  TileGrid grid(4, 4, 3840, 1920);
  auto mask = grid.visible_tiles({0, 0}, FieldOfView{});
  int visible = TileGrid::count_visible(mask);
  EXPECT_GT(visible, 0);
  EXPECT_LT(visible, 16);  // a ~100° FOV cannot need the whole sphere
}

TEST(TileGrid, ForwardViewTouchesCentralColumns) {
  TileGrid grid(4, 4, 3840, 1920);
  auto mask = grid.visible_tiles({0, 0}, FieldOfView{});
  // Frame center (yaw 0) is at x = w/2 — on the col 1 / col 2 boundary,
  // rows 1-2 vertically.
  EXPECT_TRUE(mask[static_cast<std::size_t>(1 * 4 + 1)] ||
              mask[static_cast<std::size_t>(1 * 4 + 2)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(2 * 4 + 1)] ||
              mask[static_cast<std::size_t>(2 * 4 + 2)]);
}

TEST(TileGrid, SeamViewTouchesBothEdges) {
  TileGrid grid(4, 4, 3840, 1920);
  // Looking at yaw = pi: the viewport straddles the frame's left/right seam.
  auto mask = grid.visible_tiles({kPi, 0}, FieldOfView{});
  bool left_col = mask[4] || mask[8] || mask[0] || mask[12];
  bool right_col = mask[7] || mask[11] || mask[3] || mask[15];
  EXPECT_TRUE(left_col);
  EXPECT_TRUE(right_col);
}

TEST(TileGrid, PolarViewTouchesWholeTopRow) {
  TileGrid grid(4, 4, 3840, 1920);
  auto mask = grid.visible_tiles({0, kPi / 2 - 0.05}, FieldOfView{});
  // Near the pole the footprint smears across all longitudes.
  int top_row = 0;
  for (int c = 0; c < 4; ++c) top_row += mask[static_cast<std::size_t>(c)];
  EXPECT_GE(top_row, 3);
}

TEST(TileGrid, RotatingViewChangesTiles) {
  TileGrid grid(4, 4, 3840, 1920);
  auto front = grid.visible_tiles({0, 0}, FieldOfView{});
  auto back = grid.visible_tiles({kPi, 0}, FieldOfView{});
  EXPECT_NE(front, back);
}

// ---------- DASH model ----------

TEST(VideoAsset, LadderAscendsAndSizesFollow) {
  VideoAsset video(VideoAsset::Params{});
  ASSERT_EQ(video.quality_count(), 4);
  EXPECT_EQ(video.representation(0).name, "360s");
  EXPECT_EQ(video.representation(3).name, "1080s");
  for (int s = 0; s < 5; ++s) {
    for (int t = 0; t < video.grid().tile_count(); ++t) {
      for (int q = 1; q < video.quality_count(); ++q)
        EXPECT_GT(video.segment_size(t, s, q), video.segment_size(t, s, q - 1))
            << "tile " << t << " seg " << s << " q " << q;
    }
  }
}

TEST(VideoAsset, WholeFrameSizeNearNominalRate) {
  VideoAsset video(VideoAsset::Params{});
  // Average whole-frame segment size should sit near the ladder's rate.
  for (int q = 0; q < video.quality_count(); ++q) {
    double sum = 0;
    for (int s = 0; s < video.segment_count(); ++s)
      sum += static_cast<double>(video.whole_frame_segment_size(s, q));
    double mean = sum / video.segment_count();
    double nominal = video.representation(q).whole_frame_rate;
    EXPECT_NEAR(mean / nominal, 1.0, 0.25) << q;
  }
}

TEST(VideoAsset, BitrateMultiplierScalesSizes) {
  VideoAsset::Params heavy;
  heavy.bitrate_multiplier = 2.0;
  heavy.vbr_sigma = 0;  // isolate the multiplier
  VideoAsset::Params light;
  light.bitrate_multiplier = 1.0;
  light.vbr_sigma = 0;
  VideoAsset hv(heavy), lv(light);
  EXPECT_NEAR(static_cast<double>(hv.whole_frame_segment_size(0, 2)) /
                  static_cast<double>(lv.whole_frame_segment_size(0, 2)),
              2.0, 1e-6);
}

TEST(VideoAsset, DeterministicForSeed) {
  VideoAsset a(VideoAsset::Params{}), b(VideoAsset::Params{});
  for (int s = 0; s < 10; ++s)
    EXPECT_EQ(a.whole_frame_segment_size(s, 3), b.whole_frame_segment_size(s, 3));
}

TEST(VideoAsset, SegmentUrlShape) {
  VideoAsset video(VideoAsset::Params{});
  std::string url = video.segment_url("http://cdn.example", 5, 7, 3);
  EXPECT_EQ(url, "http://cdn.example/video1/tile_1_1/1080s/seg_007.m4s");
  ASSERT_TRUE(parse_url(url).has_value());
}

// ---------- viewport trace ----------

TEST(ViewportTrace, StartsAtInitialOrientation) {
  ViewportTrace::Params p;
  p.device = kDevice;
  p.start = {0.7, -0.2};
  ViewportTrace vt(p);
  EXPECT_NEAR(vt.at(0).yaw, 0.7, 1e-12);
  EXPECT_NEAR(vt.at(123'456).pitch, -0.2, 1e-12);
}

TEST(ViewportTrace, DragRotatesView) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);
  Gesture g;
  g.kind = GestureKind::kDrag;
  g.down_time_ms = 1000;
  g.up_time_ms = 1400;
  g.down_pos = {700, 1200};
  g.up_pos = {300, 1200};  // finger moved 400 px left
  g.release_velocity = {-50, 0};
  vt.add_gesture(g);
  // Content dragged left => view rotates right (yaw increases with -dx*(-1)).
  double yaw_after = vt.at(2000).yaw;
  EXPECT_GT(yaw_after, 0);
  EXPECT_NEAR(yaw_after, 400 * (FieldOfView{}.horizontal_rad / kDevice.screen_w_px),
              1e-9);
  // Mid-drag: partially rotated.
  double yaw_mid = vt.at(1200).yaw;
  EXPECT_GT(yaw_mid, 0);
  EXPECT_LT(yaw_mid, yaw_after);
}

TEST(ViewportTrace, ClickIgnored) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);
  Gesture g;
  g.kind = GestureKind::kClick;
  g.down_time_ms = 10;
  g.up_time_ms = 60;
  vt.add_gesture(g);
  EXPECT_EQ(vt.keyframe_count(), 1u);
}

TEST(ViewportTrace, FlingAddsInertialRotation) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace drag_only(p), with_fling(p);
  Gesture g;
  g.kind = GestureKind::kDrag;
  g.down_time_ms = 0;
  g.up_time_ms = 300;
  g.down_pos = {700, 1200};
  g.up_pos = {300, 1200};
  g.release_velocity = {-100, 0};
  drag_only.add_gesture(g);
  Gesture f = g;
  f.kind = GestureKind::kFling;
  f.release_velocity = {-4000, 0};
  with_fling.add_gesture(f);
  EXPECT_GT(std::abs(with_fling.at(5000).yaw), std::abs(drag_only.at(5000).yaw));
}

TEST(ViewportTrace, FromTouchTraceEndToEnd) {
  ViewportTrace::Params p;
  p.device = kDevice;
  // Build a drag-heavy session from the synthetic source.
  VideoDragSource src(kDevice, {}, Rng(3));
  TouchTrace all;
  TimeMs now = 0;
  for (int i = 0; i < 10; ++i) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    all.insert(all.end(), t.begin(), t.end());
  }
  ViewportTrace vt = ViewportTrace::from_touch_trace(p, all);
  EXPECT_GT(vt.keyframe_count(), 10u);
  // Orientation actually moved during the session.
  ViewOrientation start = vt.at(0), end = vt.at(now);
  EXPECT_TRUE(std::abs(end.yaw - start.yaw) > 1e-3 ||
              std::abs(end.pitch - start.pitch) > 1e-3);
}

// ---------- schedulers ----------

struct SchedulerFixture : public ::testing::Test {
  SchedulerFixture() : video(VideoAsset::Params{}) {
    visible = video.grid().visible_tiles({0, 0}, FieldOfView{});
  }
  VideoAsset video;
  std::vector<bool> visible;
};

TEST_F(SchedulerFixture, MfHttpMaximizesViewportMinimizesRest) {
  MfHttpTileScheduler sched;
  TilePlan plan = sched.plan_segment(video, 0, visible, 400'000);
  EXPECT_GE(plan.viewport_quality, 2);  // high quality in viewport
  for (int t = 0; t < video.grid().tile_count(); ++t) {
    int q = plan.tile_quality[static_cast<std::size_t>(t)];
    if (visible[static_cast<std::size_t>(t)])
      EXPECT_EQ(q, plan.viewport_quality);
    else
      EXPECT_EQ(q, 0);  // invisible tiles at floor quality
  }
  EXPECT_LE(plan.bytes, 400'000);
}

TEST_F(SchedulerFixture, MfHttpDegradesGracefully) {
  MfHttpTileScheduler sched;
  int prev_q = video.quality_count();
  for (Bytes budget : {600'000, 300'000, 150'000, 80'000, 30'000}) {
    TilePlan plan = sched.plan_segment(video, 0, visible, budget);
    EXPECT_LE(plan.viewport_quality, prev_q);
    prev_q = plan.viewport_quality;
    if (plan.viewport_quality >= 0) {
      EXPECT_LE(plan.bytes, budget);
    }
  }
}

TEST_F(SchedulerFixture, MfHttpShedsInvisibleTilesBeforeStalling) {
  MfHttpTileScheduler sched;
  // Budget fits the visible tiles at q0 but not the whole frame at q0.
  Bytes whole_q0 = video.whole_frame_segment_size(0, 0);
  Bytes visible_q0 = 0;
  for (int t = 0; t < video.grid().tile_count(); ++t)
    if (visible[static_cast<std::size_t>(t)])
      visible_q0 += video.segment_size(t, 0, 0);
  Bytes budget = (visible_q0 + whole_q0) / 2;
  ASSERT_GT(budget, visible_q0);
  ASSERT_LT(budget, whole_q0);
  TilePlan plan = sched.plan_segment(video, 0, visible, budget);
  EXPECT_EQ(plan.viewport_quality, 0);
  for (int t = 0; t < video.grid().tile_count(); ++t) {
    if (!visible[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(plan.tile_quality[static_cast<std::size_t>(t)], -1);
    }
  }
}

TEST_F(SchedulerFixture, MfHttpNaWhenNothingFits) {
  MfHttpTileScheduler sched;
  TilePlan plan = sched.plan_segment(video, 0, visible, 100);
  EXPECT_TRUE(plan.stalled());
  EXPECT_EQ(plan.bytes, 0);
}

TEST_F(SchedulerFixture, GreedyPicksHighestAffordableWholeFrame) {
  GreedyDashScheduler sched;
  Bytes q2_cost = video.whole_frame_segment_size(0, 2);
  Bytes q3_cost = video.whole_frame_segment_size(0, 3);
  TilePlan plan = sched.plan_segment(video, 0, visible, (q2_cost + q3_cost) / 2);
  EXPECT_EQ(plan.viewport_quality, 2);
  for (int q : plan.tile_quality) EXPECT_EQ(q, 2);
}

TEST_F(SchedulerFixture, GreedyNaBelowFloor) {
  GreedyDashScheduler sched;
  TilePlan plan =
      sched.plan_segment(video, 0, visible, video.whole_frame_segment_size(0, 0) / 2);
  EXPECT_TRUE(plan.stalled());
}

TEST_F(SchedulerFixture, MfHttpViewportQualityAlwaysAtLeastGreedy) {
  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;
  for (Bytes budget = 50'000; budget <= 800'000; budget += 25'000) {
    for (int seg = 0; seg < 10; ++seg) {
      TilePlan pm = mf.plan_segment(video, seg, visible, budget);
      TilePlan pg = greedy.plan_segment(video, seg, visible, budget);
      EXPECT_GE(pm.viewport_quality, pg.viewport_quality)
          << "budget " << budget << " seg " << seg;
    }
  }
}

TEST_F(SchedulerFixture, FixedRateIgnoresBudget) {
  FixedRateScheduler sched(3);
  TilePlan plan = sched.plan_segment(video, 0, visible, 10);
  EXPECT_EQ(plan.viewport_quality, 3);
  EXPECT_EQ(plan.bytes, video.whole_frame_segment_size(0, 3));
}

// ---------- sessions ----------

ViewportTrace drag_session_trace(std::uint64_t seed, TimeMs duration_ms) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);
  VideoDragSource src(kDevice, {}, Rng(seed));
  GestureRecognizer rec(kDevice);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = rec.on_touch_event(ev)) vt.add_gesture(*g);
  }
  return vt;
}

TEST(StreamingSession, RecordsOnePerSegment) {
  VideoAsset video(VideoAsset::Params{});
  ViewportTrace vt = drag_session_trace(5, 60'000);
  MfHttpTileScheduler sched;
  auto result = run_streaming_session(video, vt, BandwidthTrace::constant(500e3),
                                      sched, StreamingSessionParams{});
  EXPECT_EQ(result.segments.size(), 60u);
  EXPECT_EQ(result.plans.size(), 60u);
  EXPECT_EQ(result.scheduler, "mf-http");
  double frac_sum = 0;
  for (int q = -1; q < video.quality_count(); ++q) frac_sum += result.fraction_at(q);
  EXPECT_NEAR(frac_sum, 1.0, 1e-9);
}

TEST(StreamingSession, MfHttpBeatsGreedyAcrossBandwidths) {
  VideoAsset video(VideoAsset::Params{});
  ViewportTrace vt = drag_session_trace(5, 60'000);
  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;
  for (double kbps : {250.0, 500.0, 750.0, 1000.0}) {
    auto bw = BandwidthTrace::constant(kb_per_sec(kbps));
    auto rm = run_streaming_session(video, vt, bw, mf, StreamingSessionParams{});
    auto rg = run_streaming_session(video, vt, bw, greedy, StreamingSessionParams{});
    EXPECT_GE(rm.mean_resolution(video), rg.mean_resolution(video)) << kbps;
    // MF-HTTP never consumes more bytes than it was budgeted.
    EXPECT_LE(rm.total_bytes, static_cast<Bytes>(bw.bytes_between(0, 60'000) * 1.01));
  }
  // Strictly better somewhere in the low-bandwidth regime.
  auto bw = BandwidthTrace::constant(kb_per_sec(250));
  auto rm = run_streaming_session(video, vt, bw, mf, StreamingSessionParams{});
  auto rg = run_streaming_session(video, vt, bw, greedy, StreamingSessionParams{});
  EXPECT_GT(rm.mean_resolution(video), rg.mean_resolution(video));
}

TEST(StreamingSession, MfHttpBytesTrackVisibleTileCount) {
  VideoAsset video(VideoAsset::Params{});
  ViewportTrace vt = drag_session_trace(7, 60'000);
  MfHttpTileScheduler mf;
  auto r = run_streaming_session(video, vt, BandwidthTrace::constant(kb_per_sec(1000)),
                                 mf, StreamingSessionParams{});
  // Correlation between visible tiles and bytes must be positive (Fig. 9's
  // valleys-match observation).
  double mean_v = 0, mean_b = 0;
  for (const SegmentRecord& s : r.segments) {
    mean_v += s.visible_tiles;
    mean_b += static_cast<double>(s.bytes);
  }
  mean_v /= r.segments.size();
  mean_b /= r.segments.size();
  double cov = 0, var_v = 0, var_b = 0;
  for (const SegmentRecord& s : r.segments) {
    double dv = s.visible_tiles - mean_v;
    double db = static_cast<double>(s.bytes) - mean_b;
    cov += dv * db;
    var_v += dv * dv;
    var_b += db * db;
  }
  ASSERT_GT(var_v, 0);
  ASSERT_GT(var_b, 0);
  EXPECT_GT(cov / std::sqrt(var_v * var_b), 0.3);
}

TEST(StreamingSession, FixedBaselineUsesMoreBandwidthThanMfHttp) {
  VideoAsset video(VideoAsset::Params{});
  ViewportTrace vt = drag_session_trace(9, 60'000);
  MfHttpTileScheduler mf;
  FixedRateScheduler fixed(3);  // 1080s whole frame, the Fig. 9 baseline
  auto bw = BandwidthTrace::constant(kb_per_sec(1000));
  auto rm = run_streaming_session(video, vt, bw, mf, StreamingSessionParams{});
  auto rf = run_streaming_session(video, vt, bw, fixed, StreamingSessionParams{});
  EXPECT_LT(rm.total_bytes, rf.total_bytes * 7 / 10);  // significant reduction
}

TEST(StreamingSession, ReplayOverHttpCompletesInOrder) {
  VideoAsset::Params vp;
  vp.duration_s = 10;
  VideoAsset video(vp);
  ViewportTrace vt = drag_session_trace(3, 10'000);
  MfHttpTileScheduler mf;
  auto session = run_streaming_session(video, vt, BandwidthTrace::constant(kb_per_sec(500)),
                                       mf, StreamingSessionParams{});
  auto completion = replay_session_over_http(video, session,
                                             BandwidthTrace::constant(kb_per_sec(500)));
  ASSERT_EQ(completion.size(), session.segments.size());
  TimeMs prev = 0;
  for (std::size_t i = 0; i < completion.size(); ++i) {
    if (session.segments[i].viewport_quality < 0) {
      EXPECT_EQ(completion[i], -1);
      continue;
    }
    EXPECT_GE(completion[i], prev);
    prev = completion[i];
  }
  // Total wall time consistent with the byte volume at 500 KB/s.
  double expected_ms =
      static_cast<double>(session.total_bytes) / kb_per_sec(500) * 1000.0;
  EXPECT_NEAR(static_cast<double>(prev), expected_ms, expected_ms * 0.15 + 200);
}

}  // namespace
}  // namespace mfhttp
