// Tests for the wire-level stack: BytePipe ordered delivery, the byte-level
// HTTP server/client, the byte-level MITM proxy, and the LRU cache.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "http/cache.h"
#include "http/wire.h"
#include "net/byte_pipe.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

Link::Params fifo_link(BytesPerSec rate, TimeMs latency = 2) {
  Link::Params p;
  p.bandwidth = BandwidthTrace::constant(rate);
  p.latency_ms = latency;
  p.sharing = Link::Sharing::kFifo;
  return p;
}

// ---------- BytePipe ----------

TEST(BytePipe, DeliversBytesInOrder) {
  Simulator sim;
  Link link(sim, fifo_link(100'000));
  BytePipe pipe(sim, &link);
  std::string received;
  pipe.set_on_data([&](std::string_view d) { received.append(d); });
  pipe.send("hello ");
  pipe.send("wire ");
  pipe.send("world");
  sim.run();
  EXPECT_EQ(received, "hello wire world");
  EXPECT_EQ(pipe.bytes_sent(), 16);
  EXPECT_EQ(pipe.bytes_delivered(), 16);
}

TEST(BytePipe, RateLimitsDelivery) {
  Simulator sim;
  Link link(sim, fifo_link(10'000, 0));  // 10 KB/s
  BytePipe pipe(sim, &link);
  Bytes received = 0;
  pipe.set_on_data([&](std::string_view d) { received += static_cast<Bytes>(d.size()); });
  pipe.send(std::string(20'000, 'x'));
  sim.run_until(1000);
  EXPECT_NEAR(static_cast<double>(received), 10'000, 200);  // half after 1 s
  sim.run();
  EXPECT_EQ(received, 20'000);
}

TEST(BytePipe, LargeSendArrivesChunked) {
  Simulator sim;
  Link link(sim, fifo_link(50'000));
  BytePipe pipe(sim, &link);
  int chunks = 0;
  pipe.set_on_data([&](std::string_view) { ++chunks; });
  pipe.send(std::string(100'000, 'y'));
  sim.run();
  EXPECT_GT(chunks, 10);  // streamed, not a single lump
}

TEST(BytePipe, ContentPreservedExactly) {
  Simulator sim;
  Link link(sim, fifo_link(80'000));
  BytePipe pipe(sim, &link);
  std::string received;
  pipe.set_on_data([&](std::string_view d) { received.append(d); });
  Rng rng(3);
  std::string sent;
  for (int i = 0; i < 50; ++i) {
    std::string msg;
    auto len = static_cast<std::size_t>(rng.uniform_int(1, 4000));
    msg.reserve(len);
    for (std::size_t k = 0; k < len; ++k)
      msg.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    sent += msg;
    pipe.send(std::move(msg));
  }
  sim.run();
  EXPECT_EQ(received, sent);
}

TEST(BytePipe, CloseAfterDataDelivery) {
  Simulator sim;
  Link link(sim, fifo_link(10'000));
  BytePipe pipe(sim, &link);
  std::string received;
  bool closed = false;
  pipe.set_on_data([&](std::string_view d) { received.append(d); });
  pipe.set_on_close([&] {
    closed = true;
    EXPECT_EQ(received.size(), 5'000u);  // EOF strictly after all data
  });
  pipe.send(std::string(5'000, 'z'));
  pipe.close();
  EXPECT_FALSE(closed);  // asynchronous
  sim.run();
  EXPECT_TRUE(closed);
}

TEST(BytePipe, CloseEmptyPipeFiresAsync) {
  Simulator sim;
  Link link(sim, fifo_link(10'000));
  BytePipe pipe(sim, &link);
  bool closed = false;
  pipe.set_on_close([&] { closed = true; });
  pipe.close();
  sim.run();
  EXPECT_TRUE(closed);
}

TEST(BytePipe, SendAfterCloseIgnored) {
  Simulator sim;
  Link link(sim, fifo_link(10'000));
  BytePipe pipe(sim, &link);
  pipe.close();
  pipe.send("dropped");
  sim.run();
  EXPECT_EQ(pipe.bytes_sent(), 0);
}

// ---------- wire server/client ----------

struct WireFixture : public ::testing::Test {
  WireFixture()
      : c2s_link(sim, fifo_link(1'000'000)),
        s2c_link(sim, fifo_link(200'000)),
        channel(sim, &c2s_link, &s2c_link) {
    store.put_body("/hello.txt", "hello wire world", "text/plain");
    store.put("/img/big.jpg", 50'000, "image/jpeg");
    server.emplace(&store, &channel.a_to_b(), &channel.b_to_a());
    client.emplace(&channel.a_to_b(), &channel.b_to_a());
  }

  Simulator sim;
  Link c2s_link, s2c_link;
  DuplexChannel channel;
  ObjectStore store;
  std::optional<WireHttpServer> server;
  std::optional<WireHttpClient> client;
};

TEST_F(WireFixture, GetRealBody) {
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://h.example/hello.txt"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "hello wire world");
  EXPECT_EQ(resp->headers.get("Content-Type"), "text/plain");
  EXPECT_EQ(server->requests_served(), 1u);
}

TEST_F(WireFixture, GetSynthesizedBodyHasExactSize) {
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://h.example/img/big.jpg"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body.size(), 50'000u);
  // 50 KB over a 200 KB/s stream: ~250 ms of simulated transfer.
  EXPECT_GT(sim.now(), 200);
}

TEST_F(WireFixture, NotFound404) {
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://h.example/missing"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
}

TEST_F(WireFixture, HeadHasNoBodyButLength) {
  HttpRequest head = HttpRequest::get("http://h.example/img/big.jpg");
  head.method = "HEAD";
  std::optional<HttpResponse> resp;
  client->send(head, [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_TRUE(resp->body.empty());
  EXPECT_EQ(resp->headers.content_length(), 50'000);
}

TEST_F(WireFixture, PipelinedRequestsAnsweredInOrder) {
  std::vector<int> order;
  client->send(HttpRequest::get("http://h.example/img/big.jpg"),
               [&](const HttpResponse&) { order.push_back(1); });
  client->send(HttpRequest::get("http://h.example/hello.txt"),
               [&](const HttpResponse& r) {
                 order.push_back(2);
                 EXPECT_EQ(r.body, "hello wire world");
               });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(client->pending(), 0u);
}

TEST_F(WireFixture, CustomHandler) {
  server->set_handler([](const HttpRequest& req) {
    return HttpResponse::make(201, "Created", "echo:" + req.target);
  });
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://h.example/anything"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 201);
  EXPECT_EQ(resp->body, "echo:/anything");
}

TEST(SynthesizeBody, DeterministicAndSized) {
  std::string a = synthesize_body("/img/x.jpg", 1000);
  std::string b = synthesize_body("/img/x.jpg", 1000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(synthesize_body("/y", 0).size(), 0u);
  EXPECT_NE(synthesize_body("/y", 100), synthesize_body("/z", 100));
}

// ---------- byte ranges ----------

TEST(ByteRange, ParseForms) {
  auto r = parse_byte_range("bytes=0-499", 1000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0);
  EXPECT_EQ(r->last, 499);

  r = parse_byte_range("bytes=500-", 1000);  // open-ended
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 500);
  EXPECT_EQ(r->last, 999);

  r = parse_byte_range("bytes=-200", 1000);  // suffix
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 800);
  EXPECT_EQ(r->last, 999);

  r = parse_byte_range("bytes=900-5000", 1000);  // clamp to body
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->last, 999);
}

TEST(ByteRange, ParseRejects) {
  EXPECT_FALSE(parse_byte_range("bytes=abc-", 1000).has_value());
  EXPECT_FALSE(parse_byte_range("items=0-5", 1000).has_value());
  EXPECT_FALSE(parse_byte_range("bytes=500-100", 1000).has_value());
  EXPECT_FALSE(parse_byte_range("bytes=0-10,20-30", 1000).has_value());  // multi
  EXPECT_FALSE(parse_byte_range("bytes=1000-", 1000).has_value());  // past end
  EXPECT_FALSE(parse_byte_range("bytes=-0", 1000).has_value());
  EXPECT_FALSE(parse_byte_range("bytes=0-", 0).has_value());  // empty body
}

TEST_F(WireFixture, RangeRequestGets206WithSlice) {
  HttpRequest req = HttpRequest::get("http://h.example/hello.txt");
  req.headers.set("Range", "bytes=6-9");
  std::optional<HttpResponse> resp;
  client->send(req, [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 206);
  EXPECT_EQ(resp->body, "wire");  // "hello wire world"[6..9]
  EXPECT_EQ(resp->headers.get("Content-Range"), "bytes 6-9/16");
}

TEST_F(WireFixture, RangeSlicesOfSynthesizedBodyConcatenate) {
  // Fetch a big object in two halves; together they equal the whole.
  std::string whole, first_half, second_half;
  client->send(HttpRequest::get("http://h.example/img/big.jpg"),
               [&](const HttpResponse& r) { whole = r.body; });
  HttpRequest lo = HttpRequest::get("http://h.example/img/big.jpg");
  lo.headers.set("Range", "bytes=0-24999");
  client->send(lo, [&](const HttpResponse& r) { first_half = r.body; });
  HttpRequest hi = HttpRequest::get("http://h.example/img/big.jpg");
  hi.headers.set("Range", "bytes=25000-");
  client->send(hi, [&](const HttpResponse& r) { second_half = r.body; });
  sim.run();
  ASSERT_EQ(whole.size(), 50'000u);
  EXPECT_EQ(first_half + second_half, whole);
}

TEST_F(WireFixture, UnsatisfiableRangeGets416) {
  HttpRequest req = HttpRequest::get("http://h.example/hello.txt");
  req.headers.set("Range", "bytes=99999-");
  std::optional<HttpResponse> resp;
  client->send(req, [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 416);
  EXPECT_EQ(resp->headers.get("Content-Range"), "bytes */16");
}

TEST_F(WireFixture, FullResponseAdvertisesAcceptRanges) {
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://h.example/hello.txt"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->headers.get("Accept-Ranges"), "bytes");
}

// ---------- conditional requests ----------

TEST(ObjectEtag, StableAndDiscriminating) {
  EXPECT_EQ(object_etag("/a", 100), object_etag("/a", 100));
  EXPECT_NE(object_etag("/a", 100), object_etag("/a", 101));
  EXPECT_NE(object_etag("/a", 100), object_etag("/b", 100));
  EXPECT_EQ(object_etag("/a", 100).front(), '"');
}

TEST_F(WireFixture, ConditionalRevalidationGets304) {
  std::optional<HttpResponse> first;
  client->send(HttpRequest::get("http://h.example/hello.txt"),
               [&](const HttpResponse& r) { first = r; });
  sim.run();
  ASSERT_TRUE(first.has_value());
  auto etag = first->headers.get("ETag");
  ASSERT_TRUE(etag.has_value());

  HttpRequest revalidate = HttpRequest::get("http://h.example/hello.txt");
  revalidate.headers.set("If-None-Match", *etag);
  std::optional<HttpResponse> second;
  client->send(revalidate, [&](const HttpResponse& r) { second = r; });
  sim.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 304);
  EXPECT_TRUE(second->body.empty());
  EXPECT_EQ(second->headers.get("ETag"), *etag);
}

TEST_F(WireFixture, StaleEtagGetsFullResponse) {
  HttpRequest req = HttpRequest::get("http://h.example/hello.txt");
  req.headers.set("If-None-Match", "\"deadbeefdeadbeef\"");
  std::optional<HttpResponse> resp;
  client->send(req, [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "hello wire world");
}

TEST_F(WireFixture, WildcardIfNoneMatchGets304) {
  HttpRequest req = HttpRequest::get("http://h.example/hello.txt");
  req.headers.set("If-None-Match", "*");
  std::optional<HttpResponse> resp;
  client->send(req, [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 304);
}

// ---------- wire MITM proxy ----------

struct WireProxyFixture : public ::testing::Test {
  WireProxyFixture()
      : c2p(sim, fifo_link(1'000'000)),
        p2c(sim, fifo_link(200'000)),
        p2s(sim, fifo_link(5'000'000)),
        s2p(sim, fifo_link(5'000'000)),
        client_channel(sim, &c2p, &p2c),
        upstream_channel(sim, &p2s, &s2p) {
    store.put_body("/a.txt", "payload-a", "text/plain");
    store.put_body("/b.txt", "payload-b", "text/plain");
    store.put_body("/low.jpg", "lowres", "image/jpeg");
    server.emplace(&store, &upstream_channel.a_to_b(), &upstream_channel.b_to_a());
    proxy.emplace(&client_channel.a_to_b(), &client_channel.b_to_a(),
                  &upstream_channel.a_to_b(), &upstream_channel.b_to_a());
    client.emplace(&client_channel.a_to_b(), &client_channel.b_to_a());
  }

  Simulator sim;
  Link c2p, p2c, p2s, s2p;
  DuplexChannel client_channel, upstream_channel;
  ObjectStore store;
  std::optional<WireHttpServer> server;
  std::optional<WireMitmProxy> proxy;
  std::optional<WireHttpClient> client;
};

TEST_F(WireProxyFixture, PassThrough) {
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://o.example/a.txt"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "payload-a");
  EXPECT_EQ(proxy->requests_proxied(), 1u);
}

class OneRuleInterceptor : public Interceptor {
 public:
  explicit OneRuleInterceptor(InterceptDecision d) : decision_(d) {}
  InterceptDecision on_request(const HttpRequest& req) override {
    auto url = req.url();
    if (url && url->path == "/a.txt") return decision_;
    return InterceptDecision::allow();
  }
  InterceptDecision decision_;
};

TEST_F(WireProxyFixture, BlockedGets403) {
  OneRuleInterceptor rule(InterceptDecision::block());
  proxy->set_interceptor(&rule);
  std::optional<HttpResponse> ra, rb;
  client->send(HttpRequest::get("http://o.example/a.txt"),
               [&](const HttpResponse& r) { ra = r; });
  client->send(HttpRequest::get("http://o.example/b.txt"),
               [&](const HttpResponse& r) { rb = r; });
  sim.run();
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->status, 403);
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->status, 200);  // connection continues after the block
  EXPECT_EQ(proxy->requests_blocked(), 1u);
}

TEST_F(WireProxyFixture, RewriteServesOtherObject) {
  OneRuleInterceptor rule(
      InterceptDecision::rewrite("http://o.example/low.jpg"));
  proxy->set_interceptor(&rule);
  std::optional<HttpResponse> resp;
  client->send(HttpRequest::get("http://o.example/a.txt"),
               [&](const HttpResponse& r) { resp = r; });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "lowres");
}

TEST_F(WireProxyFixture, DeferStallsConnectionUntilRelease) {
  OneRuleInterceptor rule(InterceptDecision::defer());
  proxy->set_interceptor(&rule);
  std::optional<HttpResponse> ra, rb;
  client->send(HttpRequest::get("http://o.example/a.txt"),
               [&](const HttpResponse& r) { ra = r; });
  client->send(HttpRequest::get("http://o.example/b.txt"),
               [&](const HttpResponse& r) { rb = r; });
  sim.run_until(3000);
  EXPECT_FALSE(ra.has_value());
  EXPECT_FALSE(rb.has_value());  // head-of-line: serial connection stalls
  ASSERT_TRUE(proxy->deferred_url().has_value());
  EXPECT_EQ(*proxy->deferred_url(), "http://o.example/a.txt");

  EXPECT_TRUE(proxy->release("http://o.example/a.txt"));
  sim.run();
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->body, "payload-a");
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->body, "payload-b");
}

TEST_F(WireProxyFixture, ReleaseWrongUrlFails) {
  OneRuleInterceptor rule(InterceptDecision::defer());
  proxy->set_interceptor(&rule);
  client->send(HttpRequest::get("http://o.example/a.txt"),
               [](const HttpResponse&) {});
  sim.run_until(100);
  EXPECT_FALSE(proxy->release("http://o.example/other"));
  EXPECT_TRUE(proxy->deferred_url().has_value());
}

// ---------- LruCache ----------

TEST(LruCache, PutGetRoundTrip) {
  LruCache cache(1000);
  EXPECT_TRUE(cache.put("u1", {400, 200, "image/jpeg"}));
  auto hit = cache.get("u1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size, 400);
  EXPECT_EQ(hit->content_type, "image/jpeg");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.get("u2").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(1000);
  cache.put("a", {400, 200, ""});
  cache.put("b", {400, 200, ""});
  cache.get("a");                 // a is now most recent
  cache.put("c", {400, 200, ""});  // must evict b
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes_used(), 1000);
}

TEST(LruCache, RejectsOversizedObject) {
  LruCache cache(100);
  EXPECT_FALSE(cache.put("huge", {101, 200, ""}));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_TRUE(cache.put("fits", {100, 200, ""}));
}

TEST(LruCache, OverwriteReplacesSize) {
  LruCache cache(1000);
  cache.put("a", {600, 200, ""});
  cache.put("a", {200, 200, ""});
  EXPECT_EQ(cache.bytes_used(), 200);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCache, EraseAndClear) {
  LruCache cache(1000);
  cache.put("a", {100, 200, ""});
  cache.put("b", {100, 200, ""});
  EXPECT_TRUE(cache.erase("a"));
  EXPECT_FALSE(cache.erase("a"));
  EXPECT_EQ(cache.bytes_used(), 100);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0);
}

TEST(LruCache, ManyInsertsRespectCapacity) {
  LruCache cache(10'000);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    cache.put("u" + std::to_string(i),
              {rng.uniform_int(100, 3000), 200, ""});
    EXPECT_LE(cache.bytes_used(), 10'000);
  }
}

// ---------- cache wired into the event-level proxy ----------

TEST(ProxyCache, SecondFetchSkipsUpstream) {
  Simulator sim;
  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(200'000);
  Link client_link(sim, cp);
  Link::Params sp;
  sp.bandwidth = BandwidthTrace::constant(50'000);  // slow origin hop
  sp.latency_ms = 100;
  Link server_link(sim, sp);
  ObjectStore store;
  store.put("/x.jpg", 30'000, "image/jpeg");
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  LruCache cache(1'000'000);
  proxy.set_cache(&cache);

  TimeMs first = -1, second = -1;
  FetchCallbacks c1;
  c1.on_complete = [&](const FetchResult& r) { first = r.latency_ms(); };
  proxy.fetch(HttpRequest::get("http://o.example/x.jpg"), std::move(c1));
  sim.run();
  ASSERT_GT(first, 0);
  EXPECT_TRUE(cache.contains("http://o.example/x.jpg"));

  Bytes upstream_after_first = server_link.bytes_delivered_total();
  TimeMs t0 = sim.now();
  FetchCallbacks c2;
  c2.on_complete = [&](const FetchResult& r) { second = r.complete_ms - t0; };
  proxy.fetch(HttpRequest::get("http://o.example/x.jpg"), std::move(c2));
  sim.run();
  ASSERT_GT(second, 0);
  // The cut-through proxy hides origin latency from the client either way;
  // the cache's win is that the second fetch moves ZERO upstream bytes.
  EXPECT_EQ(server_link.bytes_delivered_total(), upstream_after_first);
  EXPECT_EQ(proxy.stats().cache_hits, 1u);
  EXPECT_EQ(proxy.stats().bytes_from_upstream_saved, 30'000);
  // And it is at least as fast for the client.
  EXPECT_LE(second, first + 10);
}

TEST(ProxyCache, BlockedAndErrorResponsesNotCached) {
  Simulator sim;
  Link client_link(sim, Link::Params{});
  Link server_link(sim, Link::Params{});
  ObjectStore store;  // empty: everything 404s
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  LruCache cache(1'000'000);
  proxy.set_cache(&cache);

  FetchCallbacks cbs;
  cbs.on_complete = [](const FetchResult&) {};
  proxy.fetch(HttpRequest::get("http://o.example/missing"), std::move(cbs));
  sim.run();
  EXPECT_FALSE(cache.contains("http://o.example/missing"));
}

}  // namespace
}  // namespace mfhttp
