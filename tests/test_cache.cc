// Tests for the validating HTTP cache (http/cache.h) and its proxy
// integration: TTL-vs-ETag precedence, the stale-while-revalidate window,
// cost-aware admission under eviction pressure, prefetch usefulness/waste
// accounting, the 304 revalidation paths through MitmProxy, and the
// "cache hits are free" invariants — a hit moves zero bytes on the server
// link, consumes no admission tokens, and never takes an upstream slot.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "http/cache.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "obs/metrics.h"
#include "overload/admission.h"

namespace mfhttp {
namespace {

CachedObject cached(Bytes size, std::string etag = "", TimeMs ttl_ms = 0) {
  return CachedObject{size, 200, "image/jpeg", std::move(etag), ttl_ms};
}

// ---------- HttpCache: TTL freshness and ETag precedence ----------

TEST(HttpCacheTest, TtlTakesPrecedenceOverEtag) {
  HttpCache cache(CacheParams{1'000'000});
  cache.put("u", cached(1'000, "\"v1\"", 100), 0);

  // Within the TTL the entry is fresh: no revalidation wanted, etag or not.
  auto hit = cache.lookup("u", 50);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->freshness, HttpCache::Freshness::kFresh);
  EXPECT_FALSE(hit->revalidatable);

  // Freshness boundary is exclusive: fresh at 99, stale at exactly 100.
  EXPECT_EQ(cache.lookup("u", 99)->freshness, HttpCache::Freshness::kFresh);
  auto stale = cache.lookup("u", 100);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->freshness, HttpCache::Freshness::kStale);
  // Past the TTL the etag makes the entry revalidatable instead of dead.
  EXPECT_TRUE(stale->revalidatable);
}

TEST(HttpCacheTest, StaleWithoutEtagIsNotRevalidatable) {
  HttpCache cache(CacheParams{1'000'000});
  cache.put("u", cached(1'000, "", 100), 0);
  auto stale = cache.lookup("u", 200);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->freshness, HttpCache::Freshness::kStale);
  EXPECT_FALSE(stale->revalidatable);
}

TEST(HttpCacheTest, ZeroTtlIsImmortalAndDefaultTtlApplies) {
  CacheParams params;
  params.capacity_bytes = 1'000'000;
  params.default_ttl_ms = 50;
  HttpCache cache(params);
  // Explicit TTL wins over the default; ttl 0 inherits the default.
  cache.put("explicit", cached(100, "", 1'000), 0);
  cache.put("defaulted", cached(100), 0);
  EXPECT_TRUE(cache.has_fresh("explicit", 500));
  EXPECT_FALSE(cache.has_fresh("defaulted", 500));

  // With no default either, entries never go stale.
  HttpCache immortal(CacheParams{1'000'000});
  immortal.put("u", cached(100), 0);
  EXPECT_TRUE(immortal.has_fresh("u", 1'000'000'000));
}

// ---------- HttpCache: stale-while-revalidate window ----------

TEST(HttpCacheTest, SwrWindowBoundaries) {
  CacheParams params;
  params.capacity_bytes = 1'000'000;
  params.stale_while_revalidate_ms = 50;
  HttpCache cache(params);
  cache.put("u", cached(1'000, "\"v1\"", 100), 0);

  // Expired at 100; servable-while-revalidating until (exclusive) 150.
  auto inside = cache.lookup("u", 100);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->freshness, HttpCache::Freshness::kStale);
  EXPECT_TRUE(inside->within_swr);

  auto edge = cache.lookup("u", 149);
  ASSERT_TRUE(edge.has_value());
  EXPECT_TRUE(edge->within_swr);

  auto beyond = cache.lookup("u", 150);
  ASSERT_TRUE(beyond.has_value());
  EXPECT_FALSE(beyond->within_swr);
  EXPECT_TRUE(beyond->revalidatable);  // blocking conditional GET territory

  // Stats: stale-inside-SWR lookups count as hits (client got bytes now);
  // the beyond-SWR lookup counted expired but not hit.
  const HttpCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.stale_served, 2u);
  EXPECT_EQ(stats.expired, 3u);
}

TEST(HttpCacheTest, SwrDisabledMeansNoStaleServing) {
  HttpCache cache(CacheParams{1'000'000});  // swr 0
  cache.put("u", cached(1'000, "\"v1\"", 100), 0);
  auto stale = cache.lookup("u", 101);
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(stale->within_swr);
}

// ---------- HttpCache: revalidated() ----------

TEST(HttpCacheTest, RevalidatedRestartsTtlClock) {
  HttpCache cache(CacheParams{1'000'000});
  cache.put("u", cached(1'000, "\"v1\"", 100), 0);
  EXPECT_FALSE(cache.has_fresh("u", 150));
  EXPECT_TRUE(cache.revalidated("u", 150));
  EXPECT_TRUE(cache.has_fresh("u", 200));   // fresh until 250 now
  EXPECT_FALSE(cache.has_fresh("u", 250));
  EXPECT_EQ(cache.stats().revalidations, 1u);
  EXPECT_FALSE(cache.revalidated("gone", 0));
}

// ---------- HttpCache: eviction and cost-aware admission ----------

TEST(HttpCacheTest, PlainLruEvictsLeastRecentlyUsed) {
  HttpCache cache(CacheParams{100});
  cache.put("x", cached(60), 0);
  cache.put("y", cached(40), 0);
  ASSERT_TRUE(cache.lookup("x", 0).has_value());  // x is now most recent
  EXPECT_TRUE(cache.put("z", cached(40), 0));
  EXPECT_TRUE(cache.contains("x"));
  EXPECT_FALSE(cache.contains("y"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(HttpCacheTest, CostAwareAdmissionProtectsHotEntries) {
  CacheParams params;
  params.capacity_bytes = 100'000;
  params.cost_aware_admission = true;
  HttpCache cache(params);
  cache.put("hot_a", cached(50'000), 0);
  cache.put("hot_b", cached(50'000), 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.lookup("hot_a", 0).has_value());
    ASSERT_TRUE(cache.lookup("hot_b", 0).has_value());
  }

  // One cold giant whose hit-per-byte density loses to either victim: the
  // put is refused and the hot set survives.
  EXPECT_FALSE(cache.put("cold_giant", cached(60'000), 0));
  EXPECT_EQ(cache.stats().admission_rejected, 1u);
  EXPECT_TRUE(cache.contains("hot_a"));
  EXPECT_TRUE(cache.contains("hot_b"));

  // Misses build ghost frequency; a genuinely demanded object earns its way
  // in even though it must evict the hot entries.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(cache.lookup("cold_giant", 0).has_value());
  EXPECT_TRUE(cache.put("cold_giant", cached(60'000), 0));
  EXPECT_TRUE(cache.contains("cold_giant"));
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(HttpCacheTest, WithoutCostAwarenessColdGiantFlushesHotSet) {
  // Control arm for the test above: plain LRU admits the same cold giant
  // immediately.
  HttpCache cache(CacheParams{100'000});
  cache.put("hot_a", cached(50'000), 0);
  cache.put("hot_b", cached(50'000), 0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache.lookup("hot_a", 0).has_value());
  EXPECT_TRUE(cache.put("cold_giant", cached(60'000), 0));
  EXPECT_FALSE(cache.contains("hot_b"));
}

TEST(HttpCacheTest, MaxObjectFractionRejectsOversized) {
  CacheParams params;
  params.capacity_bytes = 100'000;
  params.max_object_fraction = 0.25;
  HttpCache cache(params);
  EXPECT_FALSE(cache.put("big", cached(25'001), 0));
  EXPECT_TRUE(cache.put("ok", cached(25'000), 0));
}

// ---------- HttpCache: prefetch usefulness / waste accounting ----------

TEST(HttpCacheTest, PrefetchedEntryHitCountsUseful) {
  HttpCache cache(CacheParams{1'000'000});
  cache.put("warm", cached(10'000), 0, /*prefetched=*/true);
  EXPECT_EQ(cache.stats().prefetch_insertions, 1u);
  EXPECT_EQ(cache.prefetched_unused_bytes(), 10'000);

  ASSERT_TRUE(cache.lookup("warm", 0).has_value());
  EXPECT_EQ(cache.stats().prefetch_useful, 1u);
  EXPECT_EQ(cache.prefetched_unused_bytes(), 0);

  // Once useful, later eviction does not count it as waste.
  cache.erase("warm");
  EXPECT_EQ(cache.stats().prefetch_wasted_bytes, 0);
}

TEST(HttpCacheTest, UnhitPrefetchCountsWastedOnEviction) {
  HttpCache cache(CacheParams{20'000});
  cache.put("wrong_guess", cached(10'000), 0, /*prefetched=*/true);
  // Demand traffic pushes the unhit speculation out.
  cache.put("demand_a", cached(10'000), 0);
  cache.put("demand_b", cached(10'000), 0);
  EXPECT_FALSE(cache.contains("wrong_guess"));
  EXPECT_EQ(cache.stats().prefetch_wasted_bytes, 10'000);
  EXPECT_EQ(cache.stats().prefetch_useful, 0u);
}

// ---------- MitmProxy integration ----------

struct CacheProxyFixture : public ::testing::Test {
  void SetUp() override { obs::metrics().reset(); }

  // Assembles origin -> proxy with `cache_params` and an optional admission
  // controller, via the one canonical wiring path (FetchPipelineBuilder).
  void build(CacheParams cache_params,
             std::optional<overload::AdmissionParams> admission = std::nullopt) {
    Link::Params server_params;
    server_params.bandwidth = BandwidthTrace::constant(1'000'000);
    server_params.latency_ms = 2;
    server_link.emplace(sim, server_params);

    store.put("/img/a.jpg", 50'000, "image/jpeg");
    store.put("/img/b.jpg", 20'000, "image/jpeg");
    store.put("/img/c.jpg", 20'000, "image/jpeg");
    origin.emplace(sim, &store, &*server_link);

    Link::Params client_params;
    client_params.bandwidth = BandwidthTrace::constant(1'000'000);
    client_params.latency_ms = 5;

    FetchPipelineBuilder builder(sim, &*origin);
    builder.client_link(client_params).with_cache(cache_params);
    if (admission.has_value()) builder.with_admission(*admission);
    pipeline = builder.build();
  }

  FetchResult fetch_and_wait(const std::string& url) {
    std::optional<FetchResult> out;
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    pipeline->proxy().fetch(HttpRequest::get(url), std::move(cbs));
    sim.run();
    EXPECT_TRUE(out.has_value());
    return out.value_or(FetchResult{});
  }

  Simulator sim;
  ObjectStore store;
  std::optional<Link> server_link;
  std::optional<SimHttpOrigin> origin;
  std::unique_ptr<FetchPipeline> pipeline;
};

// The "cache hits are free" invariants: a fresh hit moves zero bytes on the
// server link, consumes no admission tokens, and holds no upstream slot.
TEST_F(CacheProxyFixture, CacheHitMovesNoServerBytesTokensOrSlots) {
  overload::AdmissionParams admission_params;
  admission_params.global_rate_per_s = 0.0001;  // effectively no refill
  admission_params.global_burst = 2;            // two misses' worth of tokens
  admission_params.max_inflight_upstream = 1;
  build(CacheParams{1'000'000}, admission_params);
  MitmProxy& proxy = pipeline->proxy();
  overload::AdmissionController& admission = *pipeline->admission();

  // Miss: spends one token and holds the (only) upstream slot while active.
  FetchCallbacks miss_cbs;
  miss_cbs.on_complete = [](const FetchResult&) {};
  proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
              std::move(miss_cbs));
  EXPECT_EQ(admission.inflight_upstream(), 1);
  sim.run();
  EXPECT_EQ(admission.inflight_upstream(), 0);
  const Bytes server_bytes_after_miss = server_link->bytes_delivered_total();
  EXPECT_GT(server_bytes_after_miss, 0);

  // Two hits: zero new server-link bytes, no upstream slot ever taken.
  for (int i = 0; i < 2; ++i) {
    std::optional<FetchResult> out;
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                std::move(cbs));
    // serve_from_cache starts synchronously; the slot was never acquired.
    EXPECT_EQ(admission.inflight_upstream(), 0);
    sim.run();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->status, 200);
    EXPECT_EQ(out->body_size, 50'000);
  }
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes_after_miss);
  EXPECT_EQ(proxy.stats().cache_hits, 2u);
  EXPECT_EQ(proxy.stats().bytes_from_upstream_saved, 100'000);

  // The hits took no tokens: the second (and last) token still buys a miss…
  EXPECT_EQ(fetch_and_wait("http://site.example/img/b.jpg").status, 200);
  EXPECT_EQ(proxy.stats().rejected, 0u);
  // …and only then is the bucket empty (proves the token supply was finite,
  // i.e. the hit fetches above would have drained it had they charged it).
  FetchResult starved = fetch_and_wait("http://site.example/img/c.jpg");
  EXPECT_EQ(starved.status, 429);
  EXPECT_TRUE(starved.rejected);
  EXPECT_EQ(proxy.stats().rejected, 1u);
}

TEST_F(CacheProxyFixture, ExpiredEntryRevalidatesWith304AndNoBodyBytes) {
  CacheParams params;
  params.capacity_bytes = 1'000'000;
  params.default_ttl_ms = 1'000;  // swr 0: stale means blocking conditional GET
  build(params);
  MitmProxy& proxy = pipeline->proxy();

  EXPECT_EQ(fetch_and_wait("http://site.example/img/a.jpg").status, 200);
  const Bytes server_bytes = server_link->bytes_delivered_total();

  // Let the entry expire, then fetch again: If-None-Match -> 304 -> the
  // cached bytes stream to the client, the server link moves nothing.
  std::optional<FetchResult> out;
  sim.schedule_at(sim.now() + 1'500, [&] {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                std::move(cbs));
  });
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 50'000);
  EXPECT_EQ(proxy.stats().revalidations, 1u);
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes);

  // The 304 restarted the TTL: an immediate third fetch is a plain hit.
  EXPECT_EQ(fetch_and_wait("http://site.example/img/a.jpg").status, 200);
  EXPECT_EQ(proxy.stats().cache_hits, 2u);  // 304 serve + fresh hit
}

TEST_F(CacheProxyFixture, ChangedContentRevalidatesWithFullBody) {
  CacheParams params;
  params.capacity_bytes = 1'000'000;
  params.default_ttl_ms = 1'000;
  build(params);
  MitmProxy& proxy = pipeline->proxy();

  EXPECT_EQ(fetch_and_wait("http://site.example/img/a.jpg").status, 200);
  const std::string old_etag =
      pipeline->cache()->peek("http://site.example/img/a.jpg")->etag;
  const Bytes server_bytes = server_link->bytes_delivered_total();

  // Content changes upstream: the conditional GET misses and a 200 body
  // replaces the cached entry.
  ASSERT_TRUE(store.bump("/img/a.jpg"));
  std::optional<FetchResult> out;
  sim.schedule_at(sim.now() + 1'500, [&] {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                std::move(cbs));
  });
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 50'000);
  EXPECT_EQ(proxy.stats().revalidations, 0u);  // body refresh, not a 304
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes + 50'000);
  const auto refreshed = pipeline->cache()->peek("http://site.example/img/a.jpg");
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_NE(refreshed->etag, old_etag);
}

TEST_F(CacheProxyFixture, SwrServesStaleImmediatelyAndRefreshesInBackground) {
  CacheParams params;
  params.capacity_bytes = 1'000'000;
  params.default_ttl_ms = 500;
  params.stale_while_revalidate_ms = 10'000;
  build(params);
  MitmProxy& proxy = pipeline->proxy();

  EXPECT_EQ(fetch_and_wait("http://site.example/img/a.jpg").status, 200);
  const Bytes server_bytes = server_link->bytes_delivered_total();
  const TimeMs first_done = sim.now();

  // Inside the SWR window: served from cache at hit latency while a
  // background conditional GET refreshes the entry (304: headers only).
  std::optional<FetchResult> out;
  sim.schedule_at(first_done + 600, [&] {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { out = r; };
    proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                std::move(cbs));
  });
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->body_size, 50'000);
  EXPECT_EQ(proxy.stats().stale_served, 1u);
  EXPECT_EQ(proxy.stats().revalidations, 1u);
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes);

  // The background 304 restarted the TTL: a fetch shortly after is fresh.
  std::optional<FetchResult> again;
  sim.schedule_at(sim.now() + 100, [&] {
    FetchCallbacks cbs;
    cbs.on_complete = [&](const FetchResult& r) { again = r; };
    proxy.fetch(HttpRequest::get("http://site.example/img/a.jpg"),
                std::move(cbs));
  });
  sim.run();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, 200);
  EXPECT_EQ(proxy.stats().cache_hits, 2u);  // stale-served + this fresh hit
  EXPECT_EQ(server_link->bytes_delivered_total(), server_bytes);
}

}  // namespace
}  // namespace mfhttp
