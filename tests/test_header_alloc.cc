// Heap-allocation accounting for the HeaderMap hot path.
//
// The zero-alloc contract (DESIGN.md §17): once a request's headers are
// parsed, every per-request lookup the proxy/cache/wire layers perform —
// get_view(), contains(), content_length() — must touch the heap zero
// times. These tests enforce that with a counting global operator new.
//
// The counter is a plain relaxed atomic: the tests run single-threaded and
// only need exact counts between mark()/delta() pairs on one thread.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "http/header_map.h"
#include "http/header_names.h"

namespace {

std::atomic<std::size_t> g_allocs{0};

std::size_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mfhttp {
namespace {

class AllocGuard {
 public:
  AllocGuard() : start_(alloc_count()) {}
  std::size_t delta() const { return alloc_count() - start_; }

 private:
  std::size_t start_;
};

HeaderMap typical_request_headers() {
  HeaderMap h;
  h.add("Host", "news.example.com");
  h.add("User-Agent", "mfhttp-sim/1.0");
  h.add("Accept", "text/html,image/*");
  h.add("Accept-Encoding", "gzip");
  h.add("Connection", "keep-alive");
  h.add("Content-Length", "1234");
  return h;
}

TEST(HeaderAlloc, GetViewNeverAllocates) {
  HeaderMap h = typical_request_headers();
  AllocGuard guard;
  for (int i = 0; i < 100; ++i) {
    auto host = h.get_view("Host");
    ASSERT_TRUE(host.has_value());
    EXPECT_EQ(*host, "news.example.com");
    // Case-insensitive miss-case spelling still routes through the interner
    // without touching the heap.
    auto ae = h.get_view("accept-encoding");
    ASSERT_TRUE(ae.has_value());
    EXPECT_EQ(*ae, "gzip");
    EXPECT_FALSE(h.get_view("If-None-Match").has_value());
  }
  EXPECT_EQ(guard.delta(), 0u);
}

TEST(HeaderAlloc, ContainsNeverAllocates) {
  HeaderMap h = typical_request_headers();
  AllocGuard guard;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(h.contains("Connection"));
    EXPECT_TRUE(h.contains("CONTENT-LENGTH"));
    EXPECT_FALSE(h.contains("Range"));
    EXPECT_FALSE(h.contains("x-not-a-real-header"));
  }
  EXPECT_EQ(guard.delta(), 0u);
}

TEST(HeaderAlloc, ContentLengthNeverAllocates) {
  HeaderMap h = typical_request_headers();
  AllocGuard guard;
  for (int i = 0; i < 100; ++i) {
    auto len = h.content_length();
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, 1234);
  }
  EXPECT_EQ(guard.delta(), 0u);
}

TEST(HeaderAlloc, LookupsOnNonVocabularyNamesStayAllocFree) {
  HeaderMap h;
  h.add("x-custom-thing", "v");
  AllocGuard guard;
  for (int i = 0; i < 100; ++i) {
    auto v = h.get_view("x-custom-thing");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "v");
    EXPECT_TRUE(h.contains("X-Custom-Thing"));
  }
  EXPECT_EQ(guard.delta(), 0u);
}

// Well-known names with short values fit entirely in the inline entry array
// plus std::string's SSO: adding them must not allocate either. (Values long
// enough to spill SSO will allocate — that is the value copy, not the map.)
TEST(HeaderAlloc, WellKnownShortHeadersAddWithoutAllocating) {
  // Warm the interner's probe table first (built on first use).
  (void)intern_header_name("Host");
  HeaderMap h;
  AllocGuard guard;
  h.add("Host", "h");
  h.add("Accept", "*/*");
  h.add("Connection", "close");
  h.add("Range", "bytes=0-1");
  EXPECT_EQ(guard.delta(), 0u);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.get_view("Range").value_or(""), "bytes=0-1");
}

TEST(HeaderAlloc, IterationNeverAllocates) {
  HeaderMap h = typical_request_headers();
  AllocGuard guard;
  std::size_t bytes = 0;
  for (const auto& e : h) bytes += e.name().size() + e.value().size() + 4;
  EXPECT_EQ(guard.delta(), 0u);
  EXPECT_GT(bytes, 0u);
}

TEST(HeaderAlloc, OverflowBeyondInlineCapacityStillLooksUpAllocFree) {
  HeaderMap h = typical_request_headers();
  // Push past the inline capacity of 8 into the overflow vector.
  h.add("ETag", "\"abc\"");
  h.add("Vary", "Accept");
  h.add("Date", "now");
  h.add("x-extra-1", "1");
  h.add("x-extra-2", "2");
  ASSERT_GT(h.size(), HeaderMap::kInlineCapacity);
  AllocGuard guard;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(h.get_view("x-extra-2").value_or(""), "2");
    EXPECT_EQ(h.get_view("Vary").value_or(""), "Accept");
    EXPECT_TRUE(h.contains("etag"));
  }
  EXPECT_EQ(guard.delta(), 0u);
}

TEST(HeaderNames, InternerCanonicalizesCase) {
  auto a = intern_header_name("content-length");
  auto b = intern_header_name("Content-Length");
  auto c = intern_header_name("CONTENT-LENGTH");
  ASSERT_FALSE(a.empty());
  // All spellings map to the one canonical static string.
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.data(), c.data());
  EXPECT_EQ(a, "Content-Length");
}

TEST(HeaderNames, UnknownNamesAreNotInterned) {
  EXPECT_TRUE(intern_header_name("x-definitely-not-known").empty());
  EXPECT_TRUE(intern_header_name("").empty());
  EXPECT_FALSE(is_well_known_header("x-definitely-not-known"));
  EXPECT_TRUE(is_well_known_header("etag"));
}

TEST(HeaderNames, InternerLookupIsAllocFree) {
  (void)intern_header_name("Host");  // build the probe table
  AllocGuard guard;
  for (int i = 0; i < 1000; ++i) {
    (void)intern_header_name("Cache-Control");
    (void)intern_header_name("x-mfhttp-session");
    (void)intern_header_name("no-such-header-name");
  }
  EXPECT_EQ(guard.delta(), 0u);
}

}  // namespace
}  // namespace mfhttp
