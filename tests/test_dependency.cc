// Tests for the resource dependency graph and its effect on browser loading
// order (§5.1.1: structural dependencies are never violated).
#include <gtest/gtest.h>

#include <algorithm>

#include "http/proxy.h"
#include "http/sim_http.h"
#include "web/browser.h"
#include "web/corpus.h"
#include "web/dependency.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

// ---------- DependencyGraph core ----------

TEST(DependencyGraph, ReadinessFollowsEdges) {
  DependencyGraph g;
  auto a = g.add_node("a");
  auto b = g.add_node("b");
  auto c = g.add_node("c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  std::vector<bool> done(3, false);
  EXPECT_TRUE(g.is_ready(a, done));
  EXPECT_FALSE(g.is_ready(b, done));
  done[a] = true;
  EXPECT_TRUE(g.is_ready(b, done));
  EXPECT_FALSE(g.is_ready(c, done));
  done[b] = true;
  EXPECT_TRUE(g.is_ready(c, done));
}

TEST(DependencyGraph, ReadyNodesExcludesDone) {
  DependencyGraph g;
  auto a = g.add_node("a");
  auto b = g.add_node("b");
  g.add_edge(a, b);
  std::vector<bool> done = {true, false};
  auto ready = g.ready_nodes(done);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], b);
}

TEST(DependencyGraph, TopologicalOrderRespectsEdges) {
  DependencyGraph g;
  auto a = g.add_node("a");
  auto b = g.add_node("b");
  auto c = g.add_node("c");
  auto d = g.add_node("d");
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, d);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  auto pos = [&](DependencyGraph::NodeId n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(c), pos(d));
}

TEST(DependencyGraph, CycleDetected) {
  DependencyGraph g;
  auto a = g.add_node("a");
  auto b = g.add_node("b");
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(DependencyGraph, EmptyGraphTrivial) {
  DependencyGraph g;
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

// ---------- page graph construction ----------

TEST(PageDependencyGraph, DefaultShape) {
  Rng rng(3);
  WebPage page = generate_page(alexa25_specs()[12], kDevice, rng);  // yahoo-like
  std::vector<DependencyGraph::NodeId> structure, images;
  DependencyGraph g = page_dependency_graph(page, &structure, &images);
  ASSERT_EQ(structure.size(), page.structure.size());
  ASSERT_EQ(images.size(), page.images.size());
  EXPECT_FALSE(g.has_cycle());

  // HTML has no prerequisites; everything else depends (at least) on it.
  EXPECT_TRUE(g.dependencies(structure[0]).empty());
  for (std::size_t i = 1; i < structure.size(); ++i) {
    const auto& deps = g.dependencies(structure[i]);
    EXPECT_NE(std::find(deps.begin(), deps.end(), structure[0]), deps.end()) << i;
  }
  for (DependencyGraph::NodeId img : images) {
    const auto& deps = g.dependencies(img);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0], structure[0]);
  }

  // Scripts depend on every stylesheet and on the preceding script.
  // Corpus structure: html, css, js(app), js(vendor).
  ASSERT_EQ(page.structure.size(), 4u);
  const auto& app_deps = g.dependencies(structure[2]);
  EXPECT_NE(std::find(app_deps.begin(), app_deps.end(), structure[1]), app_deps.end());
  const auto& vendor_deps = g.dependencies(structure[3]);
  EXPECT_NE(std::find(vendor_deps.begin(), vendor_deps.end(), structure[2]),
            vendor_deps.end());
}

// ---------- browser honours the graph ----------

TEST(BrowserDependencies, ScriptsSerializedBehindCss) {
  Simulator sim;
  Rng rng(3);
  WebPage page = generate_page(alexa25_specs()[13], kDevice, rng);  // wikipedia
  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(500'000);
  cp.sharing = Link::Sharing::kFairShare;
  Link client_link(sim, cp);
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  Browser browser(sim, &proxy, page);
  browser.load();
  sim.run();

  const auto& structure = browser.structure_states();
  ASSERT_EQ(structure.size(), 4u);
  // html < css requested; scripts requested only after css completed and in
  // document order.
  EXPECT_LT(structure[0].complete_ms, structure[1].request_ms + 1);
  EXPECT_GE(structure[2].request_ms, structure[1].complete_ms);
  EXPECT_GE(structure[3].request_ms, structure[2].complete_ms);
  // Images went out as soon as the html was parsed — before the scripts.
  for (const ResourceLoadState& img : browser.image_states())
    EXPECT_LT(img.request_ms, structure[2].request_ms + 1);
}

TEST(BrowserDependencies, AllResourcesEventuallyComplete) {
  Simulator sim;
  Rng rng(9);
  WebPage page = generate_page(alexa25_specs()[11], kDevice, rng);  // youtube
  Link client_link(sim, Link::Params{});
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  MitmProxy proxy(sim, &origin, &client_link);
  Browser browser(sim, &proxy, page);
  browser.load();
  sim.run();
  EXPECT_TRUE(browser.structure_complete());
  EXPECT_EQ(browser.images_completed(), page.images.size());
  EXPECT_FALSE(browser.dependency_graph().has_cycle());
}

}  // namespace
}  // namespace mfhttp
