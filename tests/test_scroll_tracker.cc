// Tests for the screen scrolling tracker (§3.3): prediction sign convention,
// content-bounds clamping, involvement, entry times and coverage integrals.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scroll_tracker.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

Gesture fling_gesture(Vec2 release_velocity, TimeMs up_time = 1000) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = up_time - 150;
  g.up_time_ms = up_time;
  g.down_pos = {700, 1800};
  g.up_pos = g.down_pos + release_velocity * 0.15;
  g.release_velocity = release_velocity;
  return g;
}

ScrollTracker::Params tracker_params(std::optional<Rect> bounds = std::nullopt) {
  ScrollTracker::Params p;
  p.scroll = ScrollConfig(kDevice);
  p.coverage_step_ms = 1.0;
  p.content_bounds = bounds;
  return p;
}

const Rect kViewport{0, 0, 1440, 2560};

// ---------- prediction ----------

TEST(ScrollTracker, ViewportMovesOppositeFinger) {
  ScrollTracker tracker(tracker_params());
  // Finger flicks up (negative y velocity) => page scrolls down => viewport
  // displaces downward (+y) through content coordinates.
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -4000}), kViewport);
  EXPECT_GT(pred.displacement.y, 0);
  EXPECT_NEAR(pred.displacement.x, 0, 1e-9);
  EXPECT_GT(pred.duration_ms, 0);
  EXPECT_EQ(pred.start_time_ms, 1000);
}

TEST(ScrollTracker, PredictionMatchesFlingEquations) {
  ScrollTracker tracker(tracker_params());
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -4000}), kViewport);
  FlingParams fp;
  fp.ppi = kDevice.ppi;
  FlingModel reference(4000, fp);
  EXPECT_NEAR(pred.displacement.norm(), reference.total_distance_px(), 1e-6);
  EXPECT_NEAR(pred.duration_ms, reference.duration_ms(), 1e-6);
}

TEST(ScrollTracker, ViewportAtInterpolatesMonotonically) {
  ScrollTracker tracker(tracker_params());
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -3000}), kViewport);
  double prev_y = pred.viewport0.y - 1;
  for (double t = 0; t <= pred.duration_ms; t += pred.duration_ms / 50) {
    double y = pred.viewport_at(t).y;
    EXPECT_GE(y, prev_y);
    prev_y = y;
  }
  EXPECT_NEAR(pred.viewport_at(pred.duration_ms).y, pred.final_viewport().y, 1e-9);
  EXPECT_NEAR(pred.viewport_at(1e9).y, pred.final_viewport().y, 1e-9);
}

TEST(ScrollTracker, DragPredictionShort) {
  ScrollTracker tracker(tracker_params());
  Gesture g = fling_gesture({0, -100});  // below fling threshold
  g.kind = GestureKind::kDrag;
  ScrollPrediction pred = tracker.predict(g, kViewport);
  EXPECT_EQ(pred.animation.kind(), ScrollKind::kDrag);
  EXPECT_LT(pred.displacement.norm(), 50);  // §3.3.1: very limited impact
}

TEST(ScrollTracker, ClampAtContentBottom) {
  Rect bounds{0, 0, 1440, 5000};  // short page: only 2440 px of scroll room
  ScrollTracker tracker(tracker_params(bounds));
  // A huge fling that would overshoot the page end.
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -20000}), kViewport);
  EXPECT_NEAR(pred.final_viewport().bottom(), 5000, 1e-6);
  EXPECT_NEAR(pred.displacement.y, 2440, 1e-6);
  // Duration shortened accordingly.
  EXPECT_LT(pred.duration_ms, pred.animation.duration_ms());
  EXPECT_GT(pred.duration_ms, 0);
}

TEST(ScrollTracker, ClampAtTopWhenScrollingUp) {
  Rect bounds{0, 0, 1440, 50'000};
  ScrollTracker tracker(tracker_params(bounds));
  Rect viewport{0, 1000, 1440, 2560};  // only 1000 px above
  ScrollPrediction pred = tracker.predict(fling_gesture({0, 20000}), viewport);
  EXPECT_NEAR(pred.final_viewport().y, 0, 1e-6);
}

TEST(ScrollTracker, AlreadyAtEdgeNoMovement) {
  Rect bounds{0, 0, 1440, 2560};  // page == viewport
  ScrollTracker tracker(tracker_params(bounds));
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -8000}), kViewport);
  EXPECT_NEAR(pred.displacement.norm(), 0, 1e-9);
  EXPECT_DOUBLE_EQ(pred.duration_ms, 0);
}

TEST(ScrollTracker, UnclampedWithoutBounds) {
  ScrollTracker tracker(tracker_params());
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -20000}), kViewport);
  EXPECT_NEAR(pred.displacement.norm(), pred.animation.total_distance(), 1e-9);
}

TEST(ScrollTracker, DiagonalClampStopsOnlyBlockedAxis) {
  // Axes clamp independently (Android semantics): the x motion stops at the
  // content edge while y continues to the full fling distance.
  Rect bounds{0, 0, 2000, 10'000};
  ScrollTracker tracker(tracker_params(bounds));
  Rect viewport{0, 0, 1440, 2560};
  ScrollPrediction pred = tracker.predict(fling_gesture({-3000, -3000}), viewport);
  // Viewport moves (+x, +y); x clamps at 2000-1440 = 560 px of room.
  EXPECT_NEAR(pred.final_viewport().right(), 2000, 1e-6);
  EXPECT_NEAR(pred.displacement.x, 560, 1e-6);
  // y keeps the full share of the fling distance.
  double expected_y = pred.animation.total_displacement().y;
  EXPECT_NEAR(pred.displacement.y, expected_y, 1e-6);
  EXPECT_GT(pred.displacement.y, pred.displacement.x);
  // Duration is governed by the still-moving axis: the full animation.
  EXPECT_DOUBLE_EQ(pred.duration_ms, pred.animation.duration_ms());
}

TEST(ScrollTracker, HorizontalJitterOnVerticalFeedStillScrolls) {
  // Regression: a vertical fling with a small real x component on a page
  // with zero horizontal room must not clamp the whole scroll to nothing.
  Rect bounds{0, 0, 1440, 50'000};  // page exactly as wide as the viewport
  ScrollTracker tracker(tracker_params(bounds));
  ScrollPrediction pred =
      tracker.predict(fling_gesture({800, -20000}), kViewport);
  EXPECT_DOUBLE_EQ(pred.displacement.x, 0);  // x motion absorbed by the edge
  EXPECT_GT(pred.displacement.y, 2000);      // y scroll survives intact
  EXPECT_GT(pred.duration_ms, 500);
}

// ---------- analysis ----------

std::vector<MediaObject> column_of_objects(int count, double height = 400,
                                           double gap = 200) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i) {
    objects.push_back(make_single_version_object(
        "obj" + std::to_string(i), Rect{100, i * (height + gap), 800, height},
        50'000, "http://s.example/img/" + std::to_string(i) + ".jpg"));
  }
  return objects;
}

TEST(ScrollTracker, AnalyzeFlagsViewportMembership) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(40);
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -4000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  ASSERT_EQ(analysis.coverages.size(), objects.size());

  const Rect final_vp = pred.final_viewport();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const ObjectCoverage& cov = analysis.coverages[i];
    EXPECT_EQ(cov.in_initial_viewport, kViewport.overlaps(objects[i].rect)) << i;
    EXPECT_EQ(cov.in_final_viewport, final_vp.overlaps(objects[i].rect)) << i;
    if (cov.in_initial_viewport || cov.in_final_viewport) {
      EXPECT_TRUE(cov.involved) << i;
    }
    if (cov.in_final_viewport) {
      EXPECT_GT(cov.final_coverage, 0) << i;
    }
  }
}

TEST(ScrollTracker, EntryTimesOrderedDownThePage) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(40);
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -5000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);

  double prev_entry = -1;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const ObjectCoverage& cov = analysis.coverages[i];
    if (!cov.involved) continue;
    EXPECT_GE(cov.entry_time_ms, prev_entry) << "object " << i;
    prev_entry = cov.entry_time_ms;
  }
  // Initial-viewport objects enter at 0.
  EXPECT_DOUBLE_EQ(analysis.coverages[0].entry_time_ms, 0);
}

TEST(ScrollTracker, EntryTimeMatchesKinematics) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(40);
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -5000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);

  for (const ObjectCoverage& cov : analysis.coverages) {
    if (!cov.involved || cov.entry_time_ms <= 0) continue;
    // Just before entry: no overlap; just after: overlap.
    Rect before = pred.viewport_at(cov.entry_time_ms - 5);
    Rect after = pred.viewport_at(std::min(cov.entry_time_ms + 5, pred.duration_ms));
    const Rect& obj = objects[cov.object_index].rect;
    EXPECT_LE(before.overlap_area(obj), 1.0) << cov.object_index;
    if (cov.entry_time_ms + 5 < pred.duration_ms) {
      EXPECT_GT(after.overlap_area(obj), 0) << cov.object_index;
    }
  }
}

TEST(ScrollTracker, CoverageIntegralBounds) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(40);
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -4000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  const double S = kViewport.area();
  for (const ObjectCoverage& cov : analysis.coverages) {
    EXPECT_GE(cov.coverage_integral, 0);
    // ∫ s dt <= S * T always.
    EXPECT_LE(cov.coverage_integral, S * pred.duration_ms * (1 + 1e-9));
    if (!cov.involved) {
      EXPECT_DOUBLE_EQ(cov.coverage_integral, 0);
    }
  }
}

TEST(ScrollTracker, StationaryObjectUnderViewportFullCoverage) {
  // An object fully covering the viewport the whole time integrates to S*T.
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects;
  objects.push_back(make_single_version_object(
      "bg", Rect{-10'000, -10'000, 40'000, 40'000}, 1000, "http://s.example/bg"));
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -3000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  double expected = kViewport.area() * pred.duration_ms;
  EXPECT_NEAR(analysis.coverages[0].coverage_integral, expected, expected * 0.01);
}

TEST(ScrollTracker, CoarseStepApproximatesFineStep) {
  std::vector<MediaObject> objects = column_of_objects(20);
  Gesture g = fling_gesture({0, -4000});

  ScrollTracker fine(tracker_params());
  ScrollTracker::Params coarse_params = tracker_params();
  coarse_params.coverage_step_ms = 16.0;
  ScrollTracker coarse(coarse_params);

  ScrollPrediction pred = fine.predict(g, kViewport);
  ScrollAnalysis fa = fine.analyze(pred, objects);
  ScrollAnalysis ca = coarse.analyze(pred, objects);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (!fa.coverages[i].involved) continue;
    double f = fa.coverages[i].coverage_integral;
    double c = ca.coverages[i].coverage_integral;
    if (f > 1000) {
      EXPECT_NEAR(c / f, 1.0, 0.05) << i;
    }
  }
}

TEST(ScrollTracker, InvolvedByEntryTimeSorted) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(40);
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -5000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  std::vector<std::size_t> order = analysis.involved_by_entry_time();
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LE(analysis.coverages[order[k - 1]].entry_time_ms,
              analysis.coverages[order[k]].entry_time_ms);
  }
  for (std::size_t idx : order) EXPECT_TRUE(analysis.coverages[idx].involved);
}

TEST(ScrollTracker, ObjectsBeyondSweepNotInvolved) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects = column_of_objects(200);  // very long page
  ScrollPrediction pred = tracker.predict(fling_gesture({0, -2000}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  double sweep_bottom = pred.final_viewport().bottom();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].rect.y > sweep_bottom + 1) {
      EXPECT_FALSE(analysis.coverages[i].involved) << i;
    }
  }
}

TEST(ScrollTracker, HorizontalScrollInvolvesSideObjects) {
  ScrollTracker tracker(tracker_params());
  std::vector<MediaObject> objects;
  objects.push_back(make_single_version_object("right", Rect{3000, 500, 400, 400},
                                               1000, "http://s/r"));
  objects.push_back(make_single_version_object("below", Rect{100, 5000, 400, 400},
                                               1000, "http://s/b"));
  // Finger swipes left => viewport moves right.
  ScrollPrediction pred = tracker.predict(fling_gesture({-6000, 0}), kViewport);
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  EXPECT_GT(pred.displacement.x, 0);
  EXPECT_TRUE(analysis.coverages[0].involved);
  EXPECT_FALSE(analysis.coverages[1].involved);
}

// ---------- cross-device property sweep ----------

class TrackerDeviceSweep : public ::testing::TestWithParam<DeviceProfile> {};

TEST_P(TrackerDeviceSweep, PredictionInvariantsHoldOnEveryDevice) {
  const DeviceProfile device = GetParam();
  ScrollTracker::Params p;
  p.scroll = ScrollConfig(device);
  p.coverage_step_ms = 4.0;
  p.content_bounds = Rect{0, 0, device.screen_w_px, 60'000};
  ScrollTracker tracker(p);
  Rect viewport{0, 0, device.screen_w_px, device.screen_h_px};

  for (double speed : {device.min_fling_velocity_px_s() * 1.5, 3000.0, 9000.0}) {
    Gesture g = fling_gesture({0, -speed});
    ScrollPrediction pred = tracker.predict(g, viewport);
    // Viewport always stays within the content.
    EXPECT_GE(pred.final_viewport().top(), -1e-6);
    EXPECT_LE(pred.final_viewport().bottom(), 60'000 + 1e-6);
    // Duration and displacement are consistent with the fling equations.
    EXPECT_GT(pred.duration_ms, 0);
    EXPECT_GT(pred.displacement.y, 0);
    EXPECT_LE(pred.displacement.norm(),
              pred.animation.total_distance() + 1e-6);
    // The sampled path starts and ends where the prediction says.
    auto path = pred.sample_path(25);
    EXPECT_EQ(path.front().viewport, viewport);
    EXPECT_EQ(path.back().viewport, pred.final_viewport());
  }
}

TEST_P(TrackerDeviceSweep, HigherPpiScrollsFewerPixels) {
  // Same finger speed covers fewer *pixels* on denser screens (the Eqs. 1-3
  // coefficient scales with ppi) — the reason the middleware needs the
  // device profile at all (§3.2).
  const DeviceProfile device = GetParam();
  if (device.ppi <= DeviceProfile::lowend().ppi) return;
  ScrollTracker::Params dense;
  dense.scroll = ScrollConfig(device);
  ScrollTracker::Params sparse;
  sparse.scroll = ScrollConfig(DeviceProfile::lowend());
  Gesture g = fling_gesture({0, -5000});
  Rect viewport{0, 0, 1000, 2000};
  double dense_d =
      ScrollTracker(dense).predict(g, viewport).displacement.norm();
  double sparse_d =
      ScrollTracker(sparse).predict(g, viewport).displacement.norm();
  EXPECT_LT(dense_d, sparse_d);
}

INSTANTIATE_TEST_SUITE_P(Devices, TrackerDeviceSweep,
                         ::testing::Values(DeviceProfile::nexus6(),
                                           DeviceProfile::nexus5(),
                                           DeviceProfile::tablet10(),
                                           DeviceProfile::lowend()));

}  // namespace
}  // namespace mfhttp
