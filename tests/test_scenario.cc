// Tests for the unified scenario subsystem (DESIGN.md §16): ScenarioSpec
// JSON round-trip and diagnostics, the device/network/workload registries,
// handover compilation into fault plans, paper-default equivalence of the
// from_scenario wiring with the hand-built fig7 harness, matrix-cell
// determinism across worker counts, the dynamic-feed append path, and the
// --scenario flag on cli::StandardOptions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "cli/standard_options.h"
#include "core/middleware.h"
#include "fault/fault_plan.h"
#include "feed/feed_experiment.h"
#include "gesture/synthetic.h"
#include "scenario/matrix.h"
#include "scenario/scenario_spec.h"
#include "scenario/wiring.h"
#include "sim/frontdoor_load.h"
#include "sim/parallel_runner.h"
#include "sim/session_world.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp {
namespace {

using scenario::DeviceClassSpec;
using scenario::NetworkProfileSpec;
using scenario::ScenarioSpec;
using scenario::WorkloadKind;

std::string write_temp(const std::string& name, const std::string& body) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

// ---------- registries ----------

TEST(ScenarioRegistry, AllDeviceClassesResolve) {
  for (const char* name :
       {"phone_flagship", "phone_midrange", "phone_lowend", "tablet10"}) {
    auto d = DeviceClassSpec::named(name);
    ASSERT_TRUE(d.has_value()) << name;
    EXPECT_EQ(d->name, name);
    EXPECT_GT(d->profile.screen_w_px, 0);
    EXPECT_GT(d->mean_speed_px_s, 0);
  }
  EXPECT_FALSE(DeviceClassSpec::named("phone_imaginary").has_value());
}

TEST(ScenarioRegistry, AllNetworkProfilesResolve) {
  for (const char* name : {"wlan", "lte", "umts3g", "nr5g"}) {
    auto n = NetworkProfileSpec::named(name);
    ASSERT_TRUE(n.has_value()) << name;
    EXPECT_EQ(n->name, name);
    EXPECT_GT(n->client_bandwidth, 0);
  }
  EXPECT_FALSE(NetworkProfileSpec::named("carrier_pigeon").has_value());
  // The cellular profiles ship handover gaps; wlan must not.
  EXPECT_TRUE(NetworkProfileSpec::named("lte")->has_handover());
  EXPECT_TRUE(NetworkProfileSpec::named("umts3g")->has_handover());
  EXPECT_FALSE(NetworkProfileSpec::named("wlan")->has_handover());
}

TEST(ScenarioRegistry, WorkloadKindNamesRoundTrip) {
  for (WorkloadKind kind :
       {WorkloadKind::kPaperCorpus, WorkloadKind::kClientOnly,
        WorkloadKind::kSocialFeed, WorkloadKind::kTiledVideo}) {
    auto back = scenario::workload_kind_from_name(workload_kind_name(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(scenario::workload_kind_from_name("mining").has_value());
}

TEST(ScenarioRegistry, ClientTraceIsSeededAndDeterministic) {
  auto lte = NetworkProfileSpec::named("lte");
  ASSERT_TRUE(lte.has_value());
  BandwidthTrace a = lte->client_trace(7, 30'000);
  BandwidthTrace b = lte->client_trace(7, 30'000);
  BandwidthTrace c = lte->client_trace(8, 30'000);
  bool differs_from_other_seed = false;
  for (TimeMs t = 0; t < 30'000; t += 500) {
    EXPECT_DOUBLE_EQ(a.rate_at(t), b.rate_at(t));
    if (a.rate_at(t) != c.rate_at(t)) differs_from_other_seed = true;
  }
  EXPECT_TRUE(differs_from_other_seed);
  // Constant profiles ignore the seed entirely.
  auto wlan = NetworkProfileSpec::named("wlan");
  EXPECT_DOUBLE_EQ(wlan->client_trace(1, 30'000).rate_at(12'345),
                   wlan->client_bandwidth);
}

// ---------- parsing, round-trip, diagnostics ----------

TEST(ScenarioSpecJson, PaperDefaultRoundTrips) {
  ScenarioSpec spec = ScenarioSpec::paper_default();
  std::string error;
  auto back = ScenarioSpec::from_json(spec.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json(), spec.to_json());
  EXPECT_EQ(back->name, "paper_default");
  EXPECT_EQ(back->device.name, "phone_flagship");
  EXPECT_EQ(back->network.name, "wlan");
  EXPECT_EQ(back->workload.kind, WorkloadKind::kPaperCorpus);
}

TEST(ScenarioSpecJson, FullyLoadedSpecRoundTrips) {
  const char* doc = R"({
    "name": "kitchen_sink", "seed": 99,
    "device": {"class": "phone_lowend", "fling_friction_scale": 1.5,
               "mean_speed_px_s": 2500},
    "network": {"profile": "lte", "client_bandwidth": 900000,
                "handover_period_ms": 9000, "handover_gap_ms": 700,
                "handover_count": 2},
    "workload": {"kind": "social_feed", "repeats": 5, "feed_posts": 80,
                 "append_posts_per_fling": 10},
    "fault": {"seed": 3, "link": [
      {"kind": "outage", "at_ms": 2000, "duration_ms": 300}]},
    "cache": {"cache": {"capacity_bytes": 1000000}},
    "overload": {"admission": {"global_rate_per_s": 50}}
  })";
  std::string error;
  auto spec = ScenarioSpec::from_json(doc, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->device.name, "phone_lowend");
  EXPECT_DOUBLE_EQ(spec->device.fling_friction_scale, 1.5);
  EXPECT_DOUBLE_EQ(spec->device.mean_speed_px_s, 2500);
  EXPECT_DOUBLE_EQ(spec->network.client_bandwidth, 900000);
  EXPECT_EQ(spec->workload.kind, WorkloadKind::kSocialFeed);
  EXPECT_EQ(spec->workload.feed_posts, 80);
  ASSERT_TRUE(spec->fault.has_value());
  ASSERT_TRUE(spec->cache.has_value());
  EXPECT_EQ(spec->cache->cache.capacity_bytes, 1000000u);
  ASSERT_TRUE(spec->overload.has_value());

  // Round-trip through to_json preserves every section.
  auto back = ScenarioSpec::from_json(spec->to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json(), spec->to_json());
}

TEST(ScenarioSpecJson, UnknownKeysAreNamedWithTheirSection) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(
                   R"({"device": {"class": "tablet10", "flingg": 1}})", &error)
                   .has_value());
  EXPECT_NE(error.find("'device'"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown key 'flingg'"), std::string::npos) << error;

  EXPECT_FALSE(
      ScenarioSpec::from_json(R"({"wokload": {}})", &error).has_value());
  EXPECT_NE(error.find("unknown key 'wokload'"), std::string::npos) << error;
}

TEST(ScenarioSpecJson, EmbeddedSectionErrorsKeepTheirDiagnostics) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(
                   R"({"cache": {"cache": {"capacity_bytez": 5}}})", &error)
                   .has_value());
  EXPECT_NE(error.find("in 'cache'"), std::string::npos) << error;
  EXPECT_NE(error.find("capacity_bytez"), std::string::npos) << error;
}

TEST(ScenarioSpecJson, MalformedJsonReportsLineAndColumn) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json("{\n  \"name\": oops\n}", &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("column"), std::string::npos) << error;
}

TEST(ScenarioSpecJson, UnknownRegistryNamesFail) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::from_json(R"({"device": {"class": "vr_headset"}})", &error)
          .has_value());
  EXPECT_NE(error.find("vr_headset"), std::string::npos) << error;
  EXPECT_FALSE(
      ScenarioSpec::from_json(R"({"network": {"profile": "dialup"}})", &error)
          .has_value());
  EXPECT_NE(error.find("dialup"), std::string::npos) << error;
  EXPECT_FALSE(
      ScenarioSpec::from_json(R"({"workload": {"kind": "crypto"}})", &error)
          .has_value());
  EXPECT_NE(error.find("crypto"), std::string::npos) << error;
}

// ---------- handover compilation ----------

TEST(ScenarioFaultPlan, NoSectionsMeansNoPlan) {
  EXPECT_FALSE(ScenarioSpec::paper_default().compiled_fault_plan().has_value());
}

TEST(ScenarioFaultPlan, HandoverCompilesToRepeatedOutage) {
  ScenarioSpec spec = ScenarioSpec::paper_default();
  spec.network = *NetworkProfileSpec::named("umts3g");
  auto plan = spec.compiled_fault_plan();
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->link.size(), 1u);
  const fault::LinkFaultWindow& w = plan->link[0];
  EXPECT_EQ(w.kind, fault::LinkFaultWindow::Kind::kOutage);
  EXPECT_EQ(w.at_ms, spec.network.handover_first_ms);
  EXPECT_EQ(w.duration_ms, spec.network.handover_gap_ms);
  EXPECT_EQ(w.repeat, spec.network.handover_count);
  EXPECT_EQ(w.period_ms, spec.network.handover_period_ms);
  // The outage really is an outage at its first occurrence.
  EXPECT_TRUE(plan->in_outage(spec.network.handover_first_ms + 1));
}

TEST(ScenarioFaultPlan, HandoverMergesIntoExplicitFaultSection) {
  std::string error;
  auto spec = ScenarioSpec::from_json(
      R"({"network": {"profile": "lte"},
          "fault": {"seed": 5, "link": [
            {"kind": "latency_spike", "at_ms": 100, "duration_ms": 50,
             "extra_latency_ms": 20}]}})",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  auto plan = spec->compiled_fault_plan();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 5u);  // the explicit section keeps its seed
  ASSERT_EQ(plan->link.size(), 2u);
  EXPECT_EQ(plan->link[1].kind, fault::LinkFaultWindow::Kind::kOutage);
}

// ---------- from_scenario wiring ----------

TEST(ScenarioWiring, PaperDefaultBrowsingConfigMatchesFig7Harness) {
  const ScenarioSpec spec = ScenarioSpec::paper_default();
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  auto corpus = generate_corpus(device, rng);
  ASSERT_GE(corpus.size(), 2u);

  for (std::size_t p = 0; p < 2; ++p) {
    const WebPage& page = corpus[p];
    for (int session = 0; session < 2; ++session) {
      // The hand-built fig7 config (bench/fig7_viewport_load_time.cc).
      BrowsingSessionConfig hand;
      hand.device = device;
      hand.fill_sample_ms = 0;
      hand.seed = 1000 + static_cast<std::uint64_t>(page.site.size()) +
                  static_cast<std::uint64_t>(session) * 7919;
      hand.swipe_speed_px_s = 3000 + 2500 * session;

      BrowsingSessionConfig wired =
          scenario::browsing_config(spec, page, session);
      EXPECT_EQ(wired.seed, hand.seed);
      EXPECT_DOUBLE_EQ(wired.swipe_speed_px_s, hand.swipe_speed_px_s);
      EXPECT_DOUBLE_EQ(wired.client_bandwidth, hand.client_bandwidth);
      EXPECT_EQ(wired.client_latency_ms, hand.client_latency_ms);
      EXPECT_DOUBLE_EQ(wired.server_bandwidth, hand.server_bandwidth);
      EXPECT_EQ(wired.fill_sample_ms, hand.fill_sample_ms);
      EXPECT_TRUE(wired.enable_mfhttp);
      EXPECT_FALSE(wired.client_bandwidth_trace.has_value());
      EXPECT_FALSE(wired.enable_cache);

      // And the sessions they drive are byte-identical.
      BrowsingSessionResult a = run_browsing_session(page, hand);
      BrowsingSessionResult b = run_browsing_session(page, wired);
      EXPECT_EQ(a.initial_viewport_load_ms, b.initial_viewport_load_ms);
      EXPECT_EQ(a.final_viewport_load_ms, b.final_viewport_load_ms);
      EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
      EXPECT_EQ(a.images_completed, b.images_completed);
    }
  }
}

TEST(ScenarioWiring, ClientOnlyWorkloadDisablesMfhttp) {
  ScenarioSpec spec = ScenarioSpec::paper_default();
  spec.workload.kind = WorkloadKind::kClientOnly;
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  auto corpus = generate_corpus(device, rng);
  EXPECT_FALSE(scenario::browsing_config(spec, corpus[0], 0).enable_mfhttp);
}

TEST(ScenarioWiring, ScaleAndFrontDoorConfigsMapTheSpec) {
  ScenarioSpec spec = ScenarioSpec::paper_default();
  spec.seed = 77;
  spec.device = *DeviceClassSpec::named("phone_lowend");
  spec.workload.sessions = 64;
  spec.workload.gestures_per_session = 10;

  sim::ScaleSessionConfig scale = sim::ScaleSessionConfig::from_scenario(spec);
  EXPECT_EQ(scale.seed, 77u);
  EXPECT_EQ(scale.sessions, 64u);
  EXPECT_EQ(scale.gestures_per_session, 10u);
  EXPECT_EQ(scale.device.screen_w_px, spec.device.profile.screen_w_px);
  EXPECT_DOUBLE_EQ(scale.fling_friction_scale,
                   spec.device.fling_friction_scale);
  EXPECT_DOUBLE_EQ(scale.gestures.mean_speed_px_s, spec.device.mean_speed_px_s);

  sim::FrontDoorLoadConfig fd = sim::FrontDoorLoadConfig::from_scenario(spec);
  EXPECT_EQ(fd.seed, 77u);
  EXPECT_EQ(fd.sessions, 64u);
  EXPECT_EQ(fd.touches_per_session, 10u);
}

// ---------- matrix cells ----------

ScenarioSpec tiny_cell(const std::string& workload) {
  ScenarioSpec base = ScenarioSpec::paper_default();
  base.workload.repeats = 1;
  base.workload.corpus_sites = 2;
  base.workload.feed_posts = 24;
  base.workload.feed_flings = 2;
  base.workload.append_posts_per_fling = 6;
  base.workload.video_segments = 8;
  return scenario::cell_spec(base, "phone_flagship", "wlan", workload);
}

TEST(ScenarioMatrix, CellSpecStampsIdentityAndKeepsKnobs) {
  ScenarioSpec cell = tiny_cell("social_feed");
  EXPECT_EQ(cell.device.name, "phone_flagship");
  EXPECT_EQ(cell.network.name, "wlan");
  EXPECT_EQ(cell.workload.kind, WorkloadKind::kSocialFeed);
  EXPECT_EQ(cell.workload.feed_posts, 24);  // base knobs survive the swap
  EXPECT_NE(cell.name.find("social_feed"), std::string::npos);
}

TEST(ScenarioMatrix, CellsAreDeterministicAcrossWorkerCounts) {
  const std::vector<ScenarioSpec> cells = {tiny_cell("paper_corpus"),
                                           tiny_cell("social_feed")};
  std::string docs[2];
  for (std::size_t workers = 1; workers <= 2; ++workers) {
    std::vector<scenario::MatrixCellResult> results(cells.size());
    sim::ParallelRunner runner(workers);
    runner.run(cells.size(), [&](std::size_t i) {
      results[i] = scenario::run_matrix_cell(cells[i]);
    });
    for (const auto& r : results) docs[workers - 1] += r.deterministic_json();
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_FALSE(docs[0].empty());
}

TEST(ScenarioMatrix, VideoCellProducesLoadTimes) {
  scenario::MatrixCellResult r =
      scenario::run_matrix_cell(tiny_cell("tiled_video"));
  EXPECT_EQ(r.sessions, 1u);
  EXPECT_GT(r.qoe, 0);
  EXPECT_LE(r.qoe, 1.0);
  EXPECT_GT(r.viewport_p99_ms, 0);
  EXPECT_GT(r.goodput_bytes_per_s, 0);
  EXPECT_NE(r.fingerprint, 0u);
}

// ---------- dynamic feed appends ----------

TEST(MiddlewareAppend, AppendedObjectsJoinTheNextAnalysis) {
  const DeviceProfile device = DeviceProfile::nexus6();
  std::vector<MediaObject> objects;
  for (int i = 0; i < 4; ++i)
    objects.push_back(make_single_version_object(
        "img-" + std::to_string(i), Rect{100, i * 900.0, 800, 600}, 50'000,
        "http://feed.example/" + std::to_string(i) + ".jpg"));

  Middleware::Params mp;
  mp.tracker.scroll = ScrollConfig(device);
  mp.tracker.content_bounds = Rect{0, 0, 1440, 9 * 900.0};
  mp.initial_viewport = Rect{0, 0, device.screen_w_px, device.screen_h_px};
  Middleware middleware(mp, objects, BandwidthTrace::constant(2e6),
                        /*sim=*/nullptr);

  std::size_t last_coverage_count = 0;
  middleware.set_policy_callback(
      [&](const ScrollAnalysis& analysis, const DownloadPolicy&) {
        last_coverage_count = analysis.coverages.size();
      });

  Gesture fling;
  TouchEventMonitor monitor(device, [&](const Gesture& g) { fling = g; });
  SwipeSpec swipe;
  swipe.start = {700, 2000};
  swipe.direction = {0, -1};
  swipe.speed_px_s = 8000;
  monitor.feed(synthesize_swipe(swipe));

  middleware.on_gesture(fling);
  EXPECT_EQ(last_coverage_count, 4u);

  // Grow the feed mid-scroll: existing indices must be untouched and the
  // appended tail must be analyzed from the very next gesture.
  std::vector<MediaObject> more;
  for (int i = 4; i < 9; ++i)
    more.push_back(make_single_version_object(
        "img-" + std::to_string(i), Rect{100, i * 900.0, 800, 600}, 50'000,
        "http://feed.example/" + std::to_string(i) + ".jpg"));
  middleware.append_objects(more);
  ASSERT_EQ(middleware.objects().size(), 9u);
  EXPECT_EQ(middleware.objects()[3].id, "img-3");
  EXPECT_EQ(middleware.objects()[8].id, "img-8");

  SwipeSpec swipe2 = swipe;
  monitor.feed(synthesize_swipe(swipe2));
  middleware.on_gesture(fling);
  EXPECT_EQ(last_coverage_count, 9u);
}

TEST(DynamicFeed, AppendingSessionIsDeterministicAndDownloads) {
  const DeviceProfile device = DeviceProfile::nexus6();
  FeedSpec fs;
  fs.post_count = 30;
  Rng rng(9);
  Feed feed = generate_feed(fs, device, rng);

  FeedSessionConfig cfg;
  cfg.device = device;
  cfg.seed = 3;
  cfg.fling_count = 3;
  cfg.initial_posts = 12;
  cfg.append_posts_per_fling = 6;

  FeedSessionResult a = run_feed_session(feed, cfg);
  FeedSessionResult b = run_feed_session(feed, cfg);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.clips_settled, b.clips_settled);
  EXPECT_EQ(a.clips_instant, b.clips_instant);
  EXPECT_GT(a.bytes_downloaded, 0u);
  // The dynamic session still scores settles — the appended posts were
  // reachable by later flings.
  EXPECT_GT(a.clips_settled, 0u);

  // A static run over the same feed moves at least as many bytes: the
  // dynamic arm can only see a subset of posts at each fling.
  FeedSessionConfig all = cfg;
  all.initial_posts = 0;
  all.append_posts_per_fling = 0;
  FeedSessionResult full = run_feed_session(feed, all);
  EXPECT_GE(full.bytes_downloaded, a.bytes_downloaded);
}

// ---------- cli::StandardOptions --scenario ----------

TEST(StandardOptionsScenario, LoadsSpecAndInstallsHandoverPlan) {
  const std::string path = write_temp(
      "scenario_opts.json",
      R"({"name": "cli_test", "network": {"profile": "umts3g"},
          "cache": {"cache": {"capacity_bytes": 777000}}})");
  std::string arg0 = "test", arg1 = "--scenario", arg2 = path;
  char* argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
  int argc = 3;
  {
    cli::StandardOptions opts(argc, argv);
    ASSERT_TRUE(opts.has_scenario());
    EXPECT_EQ(opts.scenario().name, "cli_test");
    EXPECT_EQ(opts.scenario().network.name, "umts3g");
    // The cache section becomes the effective cache config.
    EXPECT_TRUE(opts.has_cache_config());
    EXPECT_EQ(opts.cache_config().cache.capacity_bytes, 777000u);
    // The handover gaps became the ambient fault plan.
    ASSERT_NE(fault::global_plan(), nullptr);
    EXPECT_FALSE(fault::global_plan()->link.empty());
  }
  // RAII: the plan is uninstalled when the options object dies.
  EXPECT_EQ(fault::global_plan(), nullptr);
}

TEST(StandardOptionsScenario, DeprecatedAliasesOverrideScenarioSections) {
  const std::string spec_path = write_temp(
      "scenario_base.json",
      R"({"name": "base", "cache": {"cache": {"capacity_bytes": 111}}})");
  const std::string cache_path = write_temp(
      "cache_override.json", R"({"cache": {"capacity_bytes": 222}})");
  std::string arg0 = "test", arg1 = "--scenario", arg2 = spec_path,
              arg3 = "--cache-config", arg4 = cache_path;
  char* argv[] = {arg0.data(), arg1.data(), arg2.data(), arg3.data(),
                  arg4.data(), nullptr};
  int argc = 5;
  cli::StandardOptions opts(argc, argv);
  ASSERT_TRUE(opts.has_scenario());
  // The alias wins and is folded back into the spec every consumer sees.
  EXPECT_EQ(opts.cache_config().cache.capacity_bytes, 222u);
  ASSERT_TRUE(opts.scenario().cache.has_value());
  EXPECT_EQ(opts.scenario().cache->cache.capacity_bytes, 222u);
}

}  // namespace
}  // namespace mfhttp
