// Tests for the MPD manifest round-trip and the event-driven buffered player.
#include <gtest/gtest.h>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "video/mpd.h"
#include "video/player.h"

namespace mfhttp {
namespace {

const DeviceProfile kDevice = DeviceProfile::nexus6();

// ---------- MPD ----------

VideoAsset small_asset() {
  VideoAsset::Params p;
  p.name = "clip";
  p.duration_s = 12;
  return VideoAsset(p);
}

TEST(Mpd, WriteContainsStructure) {
  VideoAsset video = small_asset();
  std::string xml = write_mpd(video, "http://cdn.example");
  EXPECT_NE(xml.find("<MPD"), std::string::npos);
  EXPECT_NE(xml.find("mediaPresentationDuration=\"PT12S\""), std::string::npos);
  EXPECT_NE(xml.find("urn:mpeg:dash:srd:2014"), std::string::npos);
  EXPECT_NE(xml.find("tile_0_0_360s"), std::string::npos);
  EXPECT_NE(xml.find("tile_3_3_1080s"), std::string::npos);
  EXPECT_NE(xml.find("seg_$Number$.m4s"), std::string::npos);
}

TEST(Mpd, RoundTripStructure) {
  VideoAsset video = small_asset();
  auto doc = parse_mpd(write_mpd(video, "http://cdn.example"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->duration_s, 12);
  EXPECT_EQ(doc->segment_duration_ms, 1000);
  ASSERT_EQ(doc->adaptation_sets.size(), 16u);
  for (const MpdAdaptationSet& set : doc->adaptation_sets) {
    EXPECT_EQ(set.srd_frame_w, 3840);
    EXPECT_EQ(set.srd_frame_h, 1920);
    EXPECT_EQ(set.srd_w, 960);
    EXPECT_EQ(set.srd_h, 480);
    ASSERT_EQ(set.representations.size(), 4u);
    EXPECT_EQ(set.representations[0].quality, "360s");
    EXPECT_EQ(set.representations[3].quality, "1080s");
    // Bandwidth ascends with quality.
    for (std::size_t q = 1; q < 4; ++q)
      EXPECT_GT(set.representations[q].bandwidth,
                set.representations[q - 1].bandwidth);
  }
  // SRD boxes tile the frame exactly once each.
  double area = 0;
  for (const MpdAdaptationSet& set : doc->adaptation_sets)
    area += static_cast<double>(set.srd_w) * set.srd_h;
  EXPECT_DOUBLE_EQ(area, 3840.0 * 1920.0);
}

TEST(Mpd, TemplateExpansion) {
  EXPECT_EQ(MpdDocument::expand_template("clip/tile_0_0/360s/seg_$Number$.m4s", 7),
            "clip/tile_0_0/360s/seg_007.m4s");
  EXPECT_EQ(MpdDocument::expand_template("no-placeholder.m4s", 7),
            "no-placeholder.m4s");
}

TEST(Mpd, TemplateMatchesAssetUrls) {
  VideoAsset video = small_asset();
  auto doc = parse_mpd(write_mpd(video, "http://cdn.example"));
  ASSERT_TRUE(doc.has_value());
  // AdaptationSet k corresponds to tile k (row-major): its expanded template
  // must equal the asset's segment_url modulo the BaseURL prefix.
  const MpdRepresentation& rep = doc->adaptation_sets[5].representations[2];
  std::string expanded = MpdDocument::expand_template(rep.media_template, 3);
  EXPECT_EQ("http://cdn.example/" + expanded, video.segment_url("http://cdn.example", 5, 3, 2));
}

TEST(Mpd, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_mpd("").has_value());
  EXPECT_FALSE(parse_mpd("<MPD></MPD>").has_value());
  EXPECT_FALSE(parse_mpd("<MPD mediaPresentationDuration=\"PT5S\">"
                         "<Period></Period></MPD>")
                   .has_value());
  // SRD with wrong field count.
  EXPECT_FALSE(
      parse_mpd("<MPD mediaPresentationDuration=\"PT5S\"><Period>"
                "<AdaptationSet id=\"0\">"
                "<SupplementalProperty schemeIdUri=\"urn:mpeg:dash:srd:2014\""
                " value=\"0,0,0\"/>"
                "<Representation id=\"r_360s\" bandwidth=\"1\">"
                "<SegmentTemplate media=\"x/seg_$Number$.m4s\"/>"
                "</Representation></AdaptationSet></Period></MPD>")
          .has_value());
}

// ---------- buffered player ----------

ViewportTrace drag_trace(std::uint64_t seed, TimeMs duration_ms) {
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);
  VideoDragSource src(kDevice, {}, Rng(seed));
  GestureRecognizer rec(kDevice);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = src.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = rec.on_touch_event(ev)) vt.add_gesture(*g);
  }
  return vt;
}

TEST(BufferedPlayer, PlaysEverySegmentInOrder) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(3, 12'000);
  MfHttpTileScheduler sched;
  auto result = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(800)),
                                     sched, BufferedPlayerParams{});
  ASSERT_EQ(result.segments.size(), 12u);
  TimeMs prev = -1;
  for (const PlayedSegment& s : result.segments) {
    EXPECT_GT(s.playback_ms, prev);
    prev = s.playback_ms;
    EXPECT_GE(s.fetch_done_ms, s.fetch_start_ms);
  }
  EXPECT_GT(result.total_bytes, 0);
}

TEST(BufferedPlayer, AmpleBandwidthNoStalls) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(3, 12'000);
  MfHttpTileScheduler sched;
  auto result = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(2000)),
                                     sched, BufferedPlayerParams{});
  EXPECT_EQ(result.stall_count, 0);
  EXPECT_EQ(result.stall_ms, 0);
  // Startup ≈ one buffered segment's fetch, far below the 12 s session.
  EXPECT_LT(result.startup_delay_ms, 3000);
  // Quality converges to the top rung once the estimator warms up.
  EXPECT_EQ(result.segments.back().scheduled_quality, video.quality_count() - 1);
}

TEST(BufferedPlayer, ThroughputEstimatorAdaptsQualityToBandwidth) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(5, 12'000);
  MfHttpTileScheduler sched;
  auto rich = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(1500)),
                                   sched, BufferedPlayerParams{});
  auto poor = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(220)),
                                   sched, BufferedPlayerParams{});
  EXPECT_GT(rich.mean_scheduled_resolution(video),
            poor.mean_scheduled_resolution(video));
}

TEST(BufferedPlayer, BandwidthDropCausesStallOrDowngrade) {
  VideoAsset::Params p;
  p.name = "longer";
  p.duration_s = 30;
  VideoAsset video(p);
  ViewportTrace vt = drag_trace(7, 30'000);
  MfHttpTileScheduler sched;
  // Healthy for 10 s, then starved to a trickle for 10 s, then healthy.
  std::vector<BytesPerSec> slots;
  for (int i = 0; i < 10; ++i) slots.push_back(kb_per_sec(800));
  for (int i = 0; i < 10; ++i) slots.push_back(kb_per_sec(20));
  for (int i = 0; i < 20; ++i) slots.push_back(kb_per_sec(800));
  auto bw = BandwidthTrace::from_slots(slots, 1000);
  auto result = run_buffered_session(video, vt, bw, sched, BufferedPlayerParams{});
  // 20 KB/s cannot carry even viewport-floor tiles: the player must visibly
  // suffer — stalls, and/or degraded quality around the outage.
  bool degraded = false;
  for (const PlayedSegment& s : result.segments)
    if (s.scheduled_quality <= 0) degraded = true;
  EXPECT_TRUE(result.stall_count > 0 || degraded);
}

TEST(BufferedPlayer, BufferCapLimitsFetchAhead) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(3, 12'000);
  MfHttpTileScheduler sched;
  BufferedPlayerParams params;
  params.max_buffer_s = 2.0;
  auto result = run_buffered_session(
      video, vt, BandwidthTrace::constant(kb_per_sec(5000)), sched, params);
  // Even with absurd bandwidth, fetches pace playback: segment k cannot
  // finish fetching more than ~max_buffer seconds before it plays.
  for (const PlayedSegment& s : result.segments) {
    EXPECT_GE(s.playback_ms - s.fetch_done_ms, -100);
    EXPECT_LE(s.playback_ms - s.fetch_done_ms, 3000);
  }
}

TEST(BufferedPlayer, HitFractionHighForSlowDrags) {
  VideoAsset video = small_asset();
  // A viewer who barely moves: fetched tiles are still visible at playback.
  ViewportTrace::Params p;
  p.device = kDevice;
  ViewportTrace vt(p);  // static orientation
  MfHttpTileScheduler sched;
  auto result = run_buffered_session(video, vt, BandwidthTrace::constant(kb_per_sec(800)),
                                     sched, BufferedPlayerParams{});
  EXPECT_GT(result.mean_hit_fraction(), 0.95);
}

TEST(BufferedPlayer, MfHttpSchedulesHigherQualityThanGreedy) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(9, 12'000);
  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;
  BufferedPlayerParams params;
  auto bw = BandwidthTrace::constant(kb_per_sec(300));
  auto rm = run_buffered_session(video, vt, bw, mf, params);
  auto rg = run_buffered_session(video, vt, bw, greedy, params);
  EXPECT_GE(rm.mean_scheduled_resolution(video),
            rg.mean_scheduled_resolution(video));
}

TEST(BufferedPlayer, DeterministicForSameInputs) {
  VideoAsset video = small_asset();
  ViewportTrace vt = drag_trace(11, 12'000);
  MfHttpTileScheduler sched;
  auto bw = BandwidthTrace::constant(kb_per_sec(500));
  auto a = run_buffered_session(video, vt, bw, sched, BufferedPlayerParams{});
  auto b = run_buffered_session(video, vt, bw, sched, BufferedPlayerParams{});
  ASSERT_EQ(a.segments.size(), b.segments.size());
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.stall_count, b.stall_count);
  for (std::size_t i = 0; i < a.segments.size(); ++i)
    EXPECT_EQ(a.segments[i].playback_ms, b.segments[i].playback_ms);
}

}  // namespace
}  // namespace mfhttp
