// Tests for the parallel scale engine and the touch-to-policy hot-path
// optimizations (DESIGN.md §12):
//
//   * ParallelRunner — every task runs exactly once at any worker count,
//     workers=1 executes inline in index order, exceptions propagate;
//   * session worlds — identical per-session metrics (byte-identical
//     deterministic JSON) at workers 1, 2, and 8;
//   * incremental knapsack — bit-identical to the base DP under random
//     instance mutations, with prefix/full reuse actually occurring;
//   * interval-indexed scroll analysis — field-identical to the linear scan;
//   * FlowController::replan — bit-identical to optimize();
//   * sharded obs counters — exact totals under concurrent increment;
//   * multi-session shards — per-session metrics sum to the batch totals
//     and repeat runs are byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/knapsack.h"
#include "core/middleware.h"
#include "core/scroll_tracker.h"
#include "obs/metrics.h"
#include "sim/multi_session.h"
#include "sim/parallel_runner.h"
#include "sim/session_world.h"
#include "util/rng.h"

namespace mfhttp {
namespace {

// ---------- ParallelRunner ----------

TEST(ParallelRunner, RunsEveryTaskExactlyOnce) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    sim::ParallelRunner runner(workers);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    sim::ParallelRunStats stats =
        runner.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(stats.tasks, hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " workers " << workers;
  }
}

TEST(ParallelRunner, SerialBaselineRunsInlineInIndexOrder) {
  sim::ParallelRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  runner.run(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelRunner, MoreWorkersThanTasksClampsCleanly) {
  sim::ParallelRunner runner(8);
  std::atomic<int> ran{0};
  sim::ParallelRunStats stats = runner.run(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
  EXPECT_LE(stats.workers, 3u);
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  sim::ParallelRunner runner(4);
  sim::ParallelRunStats stats =
      runner.run(0, [&](std::size_t) { FAIL() << "no task should run"; });
  EXPECT_EQ(stats.tasks, 0u);
}

TEST(ParallelRunner, StealingDrainsAnImbalancedBatch) {
  // One task (index 0) is much slower than the rest; with 2 workers the
  // second worker must steal across the block boundary to finish.
  sim::ParallelRunner runner(2);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  runner.run(hits.size(), [&](std::size_t i) {
    if (i == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunner, FirstExceptionPropagatesToCaller) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    sim::ParallelRunner runner(workers);
    EXPECT_THROW(runner.run(8,
                            [&](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
                 std::runtime_error)
        << "workers " << workers;
  }
}

// ---------- Scale session worlds: determinism across worker counts ----------

TEST(ScaleSessions, SessionSeedIsPureAndDecorrelated) {
  EXPECT_EQ(sim::session_seed(1, 0), sim::session_seed(1, 0));
  EXPECT_NE(sim::session_seed(1, 0), sim::session_seed(1, 1));
  EXPECT_NE(sim::session_seed(1, 0), sim::session_seed(2, 0));
}

TEST(ScaleSessions, IdenticalPerSessionMetricsAtWorkers128) {
  sim::ScaleSessionConfig config;
  config.seed = 7;
  config.sessions = 6;
  config.gestures_per_session = 8;

  config.workers = 1;
  sim::ScaleRunResult serial = run_scale_sessions(config);
  ASSERT_EQ(serial.sessions.size(), config.sessions);
  EXPECT_GT(serial.total_scrolls, 0u);

  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    config.workers = workers;
    sim::ScaleRunResult parallel = run_scale_sessions(config);
    // Byte-identical deterministic document...
    EXPECT_EQ(parallel.deterministic_json(), serial.deterministic_json())
        << "workers " << workers;
    // ...and field-identical shards, including the bit-exact fingerprints.
    ASSERT_EQ(parallel.sessions.size(), serial.sessions.size());
    for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
      const sim::ScaleSessionResult& a = serial.sessions[i];
      const sim::ScaleSessionResult& b = parallel.sessions[i];
      EXPECT_EQ(b.session_id, a.session_id);
      EXPECT_EQ(b.seed, a.seed);
      EXPECT_EQ(b.scrolls, a.scrolls);
      EXPECT_EQ(b.planned_bytes, a.planned_bytes);
      EXPECT_EQ(b.fingerprint, a.fingerprint) << "session " << i;
    }
  }
}

TEST(ScaleSessions, SingleSessionMatchesBatchSlot) {
  sim::ScaleSessionConfig config;
  config.seed = 21;
  config.sessions = 3;
  config.gestures_per_session = 5;
  sim::ScaleRunResult batch = run_scale_sessions(config);
  for (std::size_t id = 0; id < config.sessions; ++id) {
    sim::ScaleSessionResult solo = run_scale_session(config, id);
    EXPECT_EQ(solo.fingerprint, batch.sessions[id].fingerprint);
    EXPECT_EQ(solo.planned_bytes, batch.sessions[id].planned_bytes);
    EXPECT_EQ(solo.scrolls, batch.sessions[id].scrolls);
  }
}

// ---------- Incremental knapsack ----------

std::vector<KnapsackItem> random_instance(Rng& rng, int n, int m) {
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < n; ++i) {
    cap += rng.uniform_int(0, 4000);  // nondecreasing capacities
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(1, 3000);
    double v = rng.uniform(-0.3, 1.0);
    for (int j = 0; j < m; ++j) {
      it.weights.push_back(w);
      it.values.push_back(v);
      w += rng.uniform_int(1, 2500);
      v += rng.uniform(-0.2, 0.5);
    }
    items.push_back(std::move(it));
  }
  return items;
}

void expect_same_solution(const KnapsackSolution& a, const KnapsackSolution& b) {
  ASSERT_EQ(a.chosen.size(), b.chosen.size());
  for (std::size_t i = 0; i < a.chosen.size(); ++i)
    EXPECT_EQ(a.chosen[i], b.chosen[i]) << "item " << i;
  EXPECT_EQ(a.total_value, b.total_value);  // bit-identical, not just near
  EXPECT_EQ(a.total_weight, b.total_weight);
}

TEST(IncrementalKnapsack, MatchesBaseDpAcrossMutations) {
  Rng rng(11);
  KnapsackScratch scratch;
  const Bytes unit = 64;
  std::vector<KnapsackItem> items = random_instance(rng, 12, 3);
  for (int iter = 0; iter < 60; ++iter) {
    expect_same_solution(solve_prefix_knapsack_incremental(items, unit, &scratch),
                         solve_prefix_knapsack(items, unit));
    // Mutate: usually the tail (the touch-to-touch pattern), sometimes the
    // head or the whole instance.
    const double kind = rng.uniform(0, 1);
    if (kind < 0.5 && !items.empty()) {
      KnapsackItem& last = items.back();
      last.capacity += rng.uniform_int(0, 2000);
      last.values.back() += rng.uniform(-0.1, 0.3);
    } else if (kind < 0.7) {
      items = random_instance(rng, static_cast<int>(rng.uniform_int(1, 14)), 3);
    } else if (kind < 0.85 && items.size() > 1) {
      items.pop_back();
    } else {
      items.front().values.front() += rng.uniform(-0.2, 0.2);
    }
  }
}

TEST(IncrementalKnapsack, MatchesBruteforceOnSmallInstances) {
  Rng rng(13);
  KnapsackScratch scratch;
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<KnapsackItem> items =
        random_instance(rng, static_cast<int>(rng.uniform_int(1, 6)), 2);
    KnapsackSolution inc = solve_prefix_knapsack_incremental(items, 1, &scratch);
    KnapsackSolution bf = solve_prefix_knapsack_bruteforce(items);
    EXPECT_NEAR(inc.total_value, bf.total_value, 1e-9) << "iter " << iter;
    KnapsackSolution check;
    ASSERT_TRUE(evaluate_selection(items, inc.chosen, &check));
  }
}

TEST(IncrementalKnapsack, UnchangedInstanceIsAFullReuse) {
  Rng rng(17);
  std::vector<KnapsackItem> items = random_instance(rng, 8, 3);
  KnapsackScratch scratch;
  KnapsackSolution first = solve_prefix_knapsack_incremental(items, 32, &scratch);
  EXPECT_EQ(scratch.full_reuses, 0u);
  KnapsackSolution second = solve_prefix_knapsack_incremental(items, 32, &scratch);
  EXPECT_EQ(scratch.full_reuses, 1u);
  expect_same_solution(first, second);
}

TEST(IncrementalKnapsack, TailChangeReusesPrefixRows) {
  Rng rng(19);
  std::vector<KnapsackItem> items = random_instance(rng, 10, 3);
  KnapsackScratch scratch;
  solve_prefix_knapsack_incremental(items, 32, &scratch);
  const std::uint64_t computed_before = scratch.rows_computed;
  items.back().values.back() += 0.25;  // only item n-1 changes
  expect_same_solution(solve_prefix_knapsack_incremental(items, 32, &scratch),
                       solve_prefix_knapsack(items, 32));
  EXPECT_GT(scratch.rows_reused, 0u);
  // The re-solve recomputed exactly one row, not the whole table.
  EXPECT_EQ(scratch.rows_computed, computed_before + 1);
}

TEST(IncrementalKnapsack, UnitChangeInvalidatesScratch) {
  Rng rng(23);
  std::vector<KnapsackItem> items = random_instance(rng, 6, 2);
  KnapsackScratch scratch;
  solve_prefix_knapsack_incremental(items, 16, &scratch);
  expect_same_solution(solve_prefix_knapsack_incremental(items, 64, &scratch),
                       solve_prefix_knapsack(items, 64));
  EXPECT_EQ(scratch.full_reuses, 0u);
}

// ---------- Interval-indexed scroll analysis ----------

std::vector<MediaObject> random_page_objects(Rng& rng, int count, double page_h) {
  std::vector<MediaObject> objects;
  for (int i = 0; i < count; ++i) {
    Rect r{rng.uniform(0, 1200), rng.uniform(0, page_h), rng.uniform(40, 900),
           rng.uniform(40, 1400)};
    objects.push_back(make_single_version_object(
        "img" + std::to_string(i), r,
        static_cast<Bytes>(rng.uniform_int(5'000, 200'000)),
        "http://t/" + std::to_string(i)));
  }
  return objects;
}

Gesture fling(double vy, TimeMs start_ms = 0) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = start_ms;
  g.up_time_ms = start_ms + 120;
  g.down_pos = {700, 1800};
  g.up_pos = {700, 1800 - 300};
  g.release_velocity = {0, vy};
  return g;
}

TEST(IntervalIndex, QueryReturnsExactlyTheOverlappingSpans) {
  Rng rng(29);
  std::vector<MediaObject> objects = random_page_objects(rng, 200, 30'000);
  ObjectIntervalIndex index(objects);
  std::vector<std::size_t> got;
  for (int iter = 0; iter < 50; ++iter) {
    double lo = rng.uniform(-1000, 31'000);
    double hi = lo + rng.uniform(0, 8000);
    index.query(lo, hi, got);
    std::vector<bool> in_got(objects.size(), false);
    for (std::size_t i : got) in_got[i] = true;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const Rect& r = objects[i].rect;
      const bool expect = r.top() <= hi && r.bottom() >= lo;
      EXPECT_EQ(in_got[i], expect) << "object " << i << " window [" << lo
                                   << ", " << hi << "]";
    }
  }
}

TEST(IntervalIndex, IndexedAnalyzeIsFieldIdenticalToLinearScan) {
  Rng rng(31);
  ScrollTracker::Params params;
  params.content_bounds = Rect{0, 0, 1440, 40'000};
  ScrollTracker tracker(params);
  std::vector<MediaObject> objects = random_page_objects(rng, 150, 40'000);
  ObjectIntervalIndex index(objects);

  for (int iter = 0; iter < 20; ++iter) {
    const double vy = rng.uniform(-9000, -800) * (rng.chance(0.15) ? -1 : 1);
    const Rect viewport{0, rng.uniform(0, 35'000), 1440, 2560};
    ScrollPrediction pred = tracker.predict(fling(vy), viewport);
    ScrollAnalysis linear = tracker.analyze(pred, objects);
    ScrollAnalysis indexed = tracker.analyze(pred, objects, index);
    ASSERT_EQ(indexed.coverages.size(), linear.coverages.size());
    for (std::size_t i = 0; i < linear.coverages.size(); ++i) {
      const ObjectCoverage& a = linear.coverages[i];
      const ObjectCoverage& b = indexed.coverages[i];
      EXPECT_EQ(b.object_index, a.object_index);
      EXPECT_EQ(b.involved, a.involved) << "object " << i;
      EXPECT_EQ(b.entry_time_ms, a.entry_time_ms);
      EXPECT_EQ(b.coverage_integral, a.coverage_integral);
      EXPECT_EQ(b.final_coverage, a.final_coverage);
      EXPECT_EQ(b.in_initial_viewport, a.in_initial_viewport);
      EXPECT_EQ(b.in_final_viewport, a.in_final_viewport);
    }
    EXPECT_EQ(indexed.involved_by_entry_time(), linear.involved_by_entry_time());
  }
}

TEST(IntervalIndex, StaleIndexIsRejected) {
  // Re-exec style: robust when earlier tests in this binary spawned threads
  // (and under ThreadSanitizer, which dislikes fork-after-threads).
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(37);
  ScrollTracker tracker({});
  std::vector<MediaObject> objects = random_page_objects(rng, 10, 10'000);
  ObjectIntervalIndex index(objects);
  objects.push_back(make_single_version_object("late", {0, 0, 10, 10}, 100, "u"));
  ScrollPrediction pred = tracker.predict(fling(-3000), {0, 0, 1440, 2560});
  EXPECT_DEATH(tracker.analyze(pred, objects, index), "stale");
}

// ---------- FlowController::replan ----------

TEST(Replan, BitIdenticalToOptimizeAcrossAGestureSequence) {
  Rng rng(41);
  ScrollTracker::Params tparams;
  tparams.content_bounds = Rect{0, 0, 1440, 30'000};
  ScrollTracker tracker(tparams);
  std::vector<MediaObject> objects = random_page_objects(rng, 60, 30'000);
  // Give objects multiple versions so the knapsack has real choices.
  for (MediaObject& obj : objects) {
    MediaVersion base = obj.versions.front();
    obj.versions = {{360, base.size / 3 + 1, base.url + "?s"},
                    {720, base.size, base.url},
                    {1080, base.size * 2, base.url + "?l"}};
  }
  BandwidthTrace bandwidth = BandwidthTrace::constant(2'000'000);

  FlowController::Params fparams;
  FlowController stateless(fparams);
  FlowController stateful(fparams);

  for (int iter = 0; iter < 12; ++iter) {
    const Rect viewport{0, rng.uniform(0, 27'000), 1440, 2560};
    ScrollPrediction pred =
        tracker.predict(fling(rng.uniform(-8000, -1000)), viewport);
    ScrollAnalysis analysis = tracker.analyze(pred, objects);
    DownloadPolicy a = stateless.optimize(analysis, objects, bandwidth);
    DownloadPolicy b = stateful.replan(analysis, objects, bandwidth);
    EXPECT_EQ(b.objective, a.objective);
    EXPECT_EQ(b.total_bytes, a.total_bytes);
    ASSERT_EQ(b.decisions.size(), a.decisions.size());
    for (std::size_t i = 0; i < a.decisions.size(); ++i) {
      EXPECT_EQ(b.decisions[i].object_index, a.decisions[i].object_index);
      EXPECT_EQ(b.decisions[i].version, a.decisions[i].version);
      EXPECT_EQ(b.decisions[i].qoe, a.decisions[i].qoe);
      EXPECT_EQ(b.decisions[i].value, a.decisions[i].value);
    }
  }
  EXPECT_EQ(stateful.replan_scratch().solves, 12u);
}

TEST(Replan, RepeatedIdenticalScrollHitsTheFullReusePath) {
  Rng rng(43);
  ScrollTracker tracker({});
  std::vector<MediaObject> objects = random_page_objects(rng, 30, 20'000);
  BandwidthTrace bandwidth = BandwidthTrace::constant(1'000'000);
  FlowController controller(FlowController::Params{});
  ScrollPrediction pred = tracker.predict(fling(-4000), {0, 0, 1440, 2560});
  ScrollAnalysis analysis = tracker.analyze(pred, objects);
  DownloadPolicy first = controller.replan(analysis, objects, bandwidth);
  DownloadPolicy second = controller.replan(analysis, objects, bandwidth);
  EXPECT_EQ(controller.replan_scratch().full_reuses, 1u);
  EXPECT_EQ(second.objective, first.objective);
  EXPECT_EQ(second.total_bytes, first.total_bytes);
}

// ---------- Sharded counters ----------

TEST(ShardedCounter, ExactTotalUnderConcurrentIncrement) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ShardedCounter, DeltasAndSnapshotsMerge) {
  obs::Counter counter;
  counter.inc(5);
  counter.inc(7);
  EXPECT_EQ(counter.value(), 12u);
}

// ---------- Multi-session shards ----------

TEST(MultiSessionShards, PerSessionMetricsSumToBatchTotals) {
  overload::MultiSessionConfig config;
  config.sessions = 12;
  config.horizon_ms = 2500;
  overload::MultiSessionResult result = run_multi_session(config);
  ASSERT_EQ(result.per_session.size(), 12u);
  std::size_t requests = 0, completed = 0, rejected = 0, failed = 0,
              stranded = 0, on_time = 0;
  for (std::size_t i = 0; i < result.per_session.size(); ++i) {
    const overload::SessionMetrics& s = result.per_session[i];
    EXPECT_EQ(s.session_id, static_cast<int>(i));  // id order, always
    requests += s.requests;
    completed += s.completed;
    rejected += s.rejected;
    failed += s.failed;
    stranded += s.stranded;
    on_time += s.on_time;
  }
  EXPECT_EQ(requests, result.requests);
  EXPECT_EQ(completed, result.completed);
  EXPECT_EQ(rejected, result.rejected + result.shed);  // shed split happens after
  EXPECT_EQ(failed, result.failed);
  EXPECT_EQ(stranded, result.stranded);
  EXPECT_EQ(on_time, result.on_time);
  EXPECT_EQ(stranded, 0u);
}

TEST(MultiSessionShards, RepeatRunIsByteIdentical) {
  overload::MultiSessionConfig config;
  config.sessions = 6;
  config.horizon_ms = 2000;
  const std::string first = run_multi_session(config).to_json();
  const std::string second = run_multi_session(config).to_json();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mfhttp
